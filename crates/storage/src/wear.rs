//! SSD endurance accounting for the hypervisor cache tiers.
//!
//! Real flash has a finite write budget; an exclusive second-chance
//! cache that admits every spilled page burns it on data that is often
//! touched once (ECI-Cache, ETICA — see PAPERS.md). This module holds
//! the *bookkeeping* half of the endurance plane: deterministic wear
//! counters the cache engines accrue on every SSD-tier slot write, a
//! per-pool ledger with per-slot resolution (slot wear survives
//! free-list reuse, exactly like physical cell wear survives logical
//! overwrite), and the aggregate [`WearCounters`] snapshot the report
//! JSON and the runtime auditor consume. The *policy* half (the ghost
//! admission filter and TTL demotion) lives in `ddc-hypercache` where
//! the pool index is defined.
//!
//! # Determinism and replay
//!
//! `ssd_pages_written` and `pages_admitted` are accrued exclusively at
//! points that also emit a journal `Put` record, so replaying a journal
//! prefix re-accrues exactly the wear the original run had accrued by
//! that record. Checkpoint compaction drops historical `Put` records;
//! the `WearTotals` journal record (kind 17) written at each checkpoint
//! carries the per-VM totals forward so wear never resets. Advisory
//! counters (ghost-filter decisions, TTL demotions) are not journaled
//! and restart at zero after recovery — they are diagnostics, not part
//! of the replay-exactness guarantee.

use crate::addr::PAGE_SIZE;

/// Aggregate wear totals for a VM or for the whole device, rendered
/// into `pool_stats`, the equivalence report and the wear baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WearCounters {
    /// Physical SSD-tier slot writes (puts landing on the SSD store,
    /// trickle-downs, rehomes). The quantity a finite write budget is
    /// spent in.
    pub ssd_pages_written: u64,
    /// Pages accepted into the cache (either tier) — the denominator of
    /// the write-amplification ratio.
    pub pages_admitted: u64,
    /// Mem→SSD spill attempts evaluated by the ghost admission filter.
    pub spill_attempts: u64,
    /// Spills the filter admitted (second access inside the window).
    pub spill_admits: u64,
    /// Spills the filter rejected (first access; fell through fail-open
    /// as a drop/miss).
    pub spill_rejects: u64,
    /// SSD-resident entries demoted by the per-VM TTL staleness sweep.
    pub ttl_demotions: u64,
}

impl WearCounters {
    /// Bytes physically written to the SSD tier.
    pub fn bytes_written(&self) -> u64 {
        self.ssd_pages_written * PAGE_SIZE
    }

    /// SSD writes per admitted page: how much of the flash budget each
    /// cached page costs. Below 1.0 means most admissions stayed in
    /// memory; rising above it means re-writes (trickle, rehome) are
    /// amplifying the device wear.
    pub fn write_amplification(&self) -> f64 {
        if self.pages_admitted == 0 {
            0.0
        } else {
            self.ssd_pages_written as f64 / self.pages_admitted as f64
        }
    }
}

ddc_metrics::counter_snapshot!(WearCounters, "wear", {
    ssd_pages_written,
    pages_admitted,
    spill_attempts,
    spill_admits,
    spill_rejects,
    ttl_demotions,
});

/// Per-pool wear ledger with per-slot resolution, owned by the pool's
/// slab arena. `slot_writes[i]` counts SSD writes into arena slot `i`
/// across every entry that ever occupied it (freeing a slot does not
/// clear its wear — the flash cell remembers); the scalar totals are
/// the running sums, so `pages_written == Σ slot_writes` at all times —
/// the auditor's per-pool wear invariant.
#[derive(Clone, Debug, Default)]
pub struct PoolWear {
    /// SSD-tier writes charged to this pool since creation/recovery.
    pub pages_written: u64,
    /// Pages this pool admitted into either tier since creation.
    pub pages_admitted: u64,
    /// Per-arena-slot SSD write counts (indexed by `SlotId`).
    pub slot_writes: Vec<u32>,
    /// Spill attempts the admission filter evaluated for this pool.
    pub spill_attempts: u64,
    /// Spills admitted.
    pub spill_admits: u64,
    /// Spills rejected.
    pub spill_rejects: u64,
    /// TTL demotions charged to this pool.
    pub ttl_demotions: u64,
}

impl PoolWear {
    /// Charges one admitted page, written to the SSD tier iff `ssd`.
    /// `slot` is the arena slot the page landed in.
    pub fn record_write(&mut self, slot: usize, ssd: bool) {
        self.pages_admitted += 1;
        if ssd {
            if self.slot_writes.len() <= slot {
                self.slot_writes.resize(slot + 1, 0);
            }
            self.slot_writes[slot] += 1;
            self.pages_written += 1;
        }
    }

    /// Aggregate snapshot of this pool's ledger.
    pub fn totals(&self) -> WearCounters {
        WearCounters {
            ssd_pages_written: self.pages_written,
            pages_admitted: self.pages_admitted,
            spill_attempts: self.spill_attempts,
            spill_admits: self.spill_admits,
            spill_rejects: self.spill_rejects,
            ttl_demotions: self.ttl_demotions,
        }
    }

    /// Retires the ledger (pool drain/destroy): returns the totals to
    /// fold into the owning VM's retired accumulator and resets the
    /// live counters so they are not counted twice.
    pub fn retire(&mut self) -> WearCounters {
        let totals = self.totals();
        *self = PoolWear::default();
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_metrics::CounterSnapshot;

    #[test]
    fn slot_wear_survives_reuse_and_sums_match() {
        let mut w = PoolWear::default();
        w.record_write(0, true);
        w.record_write(1, false);
        w.record_write(0, true); // reused slot keeps accumulating
        assert_eq!(w.slot_writes[0], 2);
        assert_eq!(w.pages_written, 2);
        assert_eq!(w.pages_admitted, 3);
        assert_eq!(
            w.pages_written,
            w.slot_writes.iter().map(|&c| u64::from(c)).sum::<u64>()
        );
    }

    #[test]
    fn retire_moves_totals_and_resets() {
        let mut w = PoolWear::default();
        w.record_write(3, true);
        w.spill_attempts = 5;
        w.spill_admits = 2;
        w.spill_rejects = 3;
        let t = w.retire();
        assert_eq!(t.ssd_pages_written, 1);
        assert_eq!(t.spill_rejects, 3);
        assert_eq!(w.pages_written, 0);
        assert!(w.slot_writes.is_empty());
    }

    #[test]
    fn amplification_and_bytes() {
        let c = WearCounters {
            ssd_pages_written: 6,
            pages_admitted: 4,
            ..WearCounters::default()
        };
        assert_eq!(c.bytes_written(), 6 * PAGE_SIZE);
        assert!((c.write_amplification() - 1.5).abs() < 1e-12);
        assert_eq!(WearCounters::default().write_amplification(), 0.0);
        let mut a = c;
        a.absorb(&c);
        assert_eq!(a.ssd_pages_written, 12);
        assert_eq!(a.pages_admitted, 8);
    }
}
