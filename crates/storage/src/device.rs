//! A storage device: a latency model, an FCFS queue, and sequentiality
//! tracking.

use ddc_sim::{FaultDecision, FaultSchedule, FxHashMap, MultiQueuedResource, SimDuration, SimTime};

use crate::{BlockAddr, FileId, LatencyModel};

/// Device class, used for reporting and store-type decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host RAM (memory cache store).
    Ram,
    /// Solid-state drive (SSD cache store).
    Ssd,
    /// Spinning disk (the backing virtual-disk store).
    Hdd,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceKind::Ram => "ram",
            DeviceKind::Ssd => "ssd",
            DeviceKind::Hdd => "hdd",
        };
        f.write_str(s)
    }
}

/// Completion record for one device IO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoCompletion {
    /// When the transfer finished; for synchronous IO the caller's virtual
    /// clock advances to this instant.
    pub finish: SimTime,
    /// Whether the access was serviced as part of a sequential stream.
    pub sequential: bool,
}

/// A failed device IO (injected via a [`FaultSchedule`]).
///
/// The device still *attempted* the transfer — the queue channel was
/// occupied and the caller discovers the failure only at `finish`, just
/// like a real drive returning a media error after the request was
/// serviced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoError {
    /// When the failure was reported to the caller.
    pub finish: SimTime,
    /// Whether the device is permanently dead (a [`ddc_sim::FaultKind::Death`]
    /// window) rather than transiently failing.
    pub permanent: bool,
}

/// A shared storage device.
///
/// The device remembers the last accessed block *per file* to classify
/// each request as sequential or random — modelling OS read-ahead plus
/// the drive's elevator/NCQ scheduling, which preserve per-stream
/// sequentiality even when several streams interleave. This is what makes
/// large streaming reads (the videoserver workload) cheap and small
/// scattered reads (webserver, mail) expensive on the HDD tier.
///
/// # Example
///
/// ```
/// use ddc_storage::{BlockAddr, Device, FileId};
/// use ddc_sim::SimTime;
///
/// let mut d = Device::hdd();
/// let first = d.read(SimTime::ZERO, BlockAddr::new(FileId(1), 0));
/// let second = d.read(first.finish, BlockAddr::new(FileId(1), 1));
/// assert!(second.sequential);
/// ```
#[derive(Clone, Debug)]
pub struct Device {
    kind: DeviceKind,
    model: LatencyModel,
    queue: MultiQueuedResource,
    last_block_by_file: FxHashMap<FileId, u64>,
    faults: Option<FaultSchedule>,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    io_errors: u64,
}

impl Device {
    /// Creates a device from a kind, latency model and service channel
    /// count (1 for a spindle; >1 for devices with internal parallelism).
    pub fn new(kind: DeviceKind, model: LatencyModel) -> Device {
        Device::with_channels(kind, model, 1)
    }

    /// Creates a device with `channels` parallel service channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn with_channels(kind: DeviceKind, model: LatencyModel, channels: usize) -> Device {
        Device {
            kind,
            model,
            queue: MultiQueuedResource::new(channels),
            last_block_by_file: FxHashMap::default(),
            faults: None,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            io_errors: 0,
        }
    }

    /// A 7200 rpm hard disk: one head assembly, one channel.
    pub fn hdd() -> Device {
        Device::new(DeviceKind::Hdd, LatencyModel::hdd())
    }

    /// A SATA consumer SSD (the paper's Kingston V300 class): modest
    /// internal parallelism behind the SATA link.
    pub fn ssd_sata() -> Device {
        Device::with_channels(DeviceKind::Ssd, LatencyModel::ssd_sata(), 2)
    }

    /// A host-RAM copy engine: memory copies proceed concurrently on the
    /// host's cores, bounded by aggregate bandwidth per channel.
    pub fn ram() -> Device {
        Device::with_channels(DeviceKind::Ram, LatencyModel::ram(), 16)
    }

    /// The device class.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Attaches (or clears) a fault schedule. Only the fallible
    /// [`try_read`](Device::try_read) / [`try_write`](Device::try_write)
    /// paths consult it; the infallible paths are unaffected.
    pub fn set_fault_schedule(&mut self, faults: Option<FaultSchedule>) {
        self.faults = faults;
    }

    /// Consults the fault schedule for one operation at `now`.
    fn fault_decision(&mut self, now: SimTime) -> FaultDecision {
        match &mut self.faults {
            Some(f) => f.decide(now),
            None => FaultDecision::Ok,
        }
    }

    /// Whether the attached fault schedule has declared the device
    /// permanently dead.
    pub fn is_dead(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_dead())
    }

    /// Synchronously reads one page; the caller waits until `finish`.
    pub fn read(&mut self, now: SimTime, addr: BlockAddr) -> IoCompletion {
        let sequential = self.note_access(addr);
        let grant = self.queue.access(now, self.model.read(sequential));
        self.reads += 1;
        self.bytes_read += crate::PAGE_SIZE;
        IoCompletion {
            finish: grant.finish,
            sequential,
        }
    }

    /// Synchronously writes one page.
    pub fn write(&mut self, now: SimTime, addr: BlockAddr) -> IoCompletion {
        let sequential = self.note_access(addr);
        let grant = self.queue.access(now, self.model.write(sequential));
        self.writes += 1;
        self.bytes_written += crate::PAGE_SIZE;
        IoCompletion {
            finish: grant.finish,
            sequential,
        }
    }

    /// Queues an asynchronous page write: the device is occupied, but the
    /// caller does not wait. Used for writeback and for the SSD cache
    /// store's asynchronous `put` path (paper §4.2).
    pub fn write_async(&mut self, now: SimTime, addr: BlockAddr) -> IoCompletion {
        self.write(now, addr)
    }

    /// Fallible read: like [`read`](Device::read), but consults the
    /// attached [`FaultSchedule`] first. A faulted request still occupies
    /// the queue (the device tried), and the error surfaces at `finish`.
    pub fn try_read(&mut self, now: SimTime, addr: BlockAddr) -> Result<IoCompletion, IoError> {
        let decision = self.fault_decision(now);
        let sequential = self.note_access(addr);
        let cost = match decision {
            // A stalled device hangs for the stall and then errors; with
            // no deadline concept here the caller just eats the hang.
            FaultDecision::Slow(extra) | FaultDecision::Stall(extra) => {
                self.model.read(sequential) + extra
            }
            _ => self.model.read(sequential),
        };
        let grant = self.queue.access(now, cost);
        self.reads += 1;
        if matches!(decision, FaultDecision::Error | FaultDecision::Stall(_)) {
            self.io_errors += 1;
            return Err(IoError {
                finish: grant.finish,
                permanent: self.is_dead(),
            });
        }
        self.bytes_read += crate::PAGE_SIZE;
        Ok(IoCompletion {
            finish: grant.finish,
            sequential,
        })
    }

    /// Fallible write; see [`try_read`](Device::try_read).
    pub fn try_write(&mut self, now: SimTime, addr: BlockAddr) -> Result<IoCompletion, IoError> {
        let decision = self.fault_decision(now);
        let sequential = self.note_access(addr);
        let cost = match decision {
            FaultDecision::Slow(extra) | FaultDecision::Stall(extra) => {
                self.model.write(sequential) + extra
            }
            _ => self.model.write(sequential),
        };
        let grant = self.queue.access(now, cost);
        self.writes += 1;
        if matches!(decision, FaultDecision::Error | FaultDecision::Stall(_)) {
            self.io_errors += 1;
            return Err(IoError {
                finish: grant.finish,
                permanent: self.is_dead(),
            });
        }
        self.bytes_written += crate::PAGE_SIZE;
        Ok(IoCompletion {
            finish: grant.finish,
            sequential,
        })
    }

    /// Fallible asynchronous write; see
    /// [`write_async`](Device::write_async). The caller does not wait,
    /// but an injected failure is reported immediately (modelling a
    /// rejected submission or an IO-completion error callback).
    pub fn try_write_async(
        &mut self,
        now: SimTime,
        addr: BlockAddr,
    ) -> Result<IoCompletion, IoError> {
        self.try_write(now, addr)
    }

    /// Whether `addr` continues its file's stream, updating the stream
    /// tracker. The tracker is bounded by evicting arbitrary entries once
    /// it grows past a large cap (streams are short-lived).
    fn note_access(&mut self, addr: BlockAddr) -> bool {
        let sequential = self
            .last_block_by_file
            .get(&addr.file)
            .is_some_and(|&last| addr.block == last + 1 || addr.block == last);
        if self.last_block_by_file.len() > 1 << 20 {
            self.last_block_by_file.clear();
        }
        self.last_block_by_file.insert(addr.file, addr.block);
        sequential
    }

    /// Completed read count (including failed attempts).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// IOs failed by the fault schedule.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Completed write count.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Time the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.queue.busy_until()
    }

    /// Device utilization over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.queue.utilization(now)
    }

    /// Aggregate service time consumed.
    pub fn busy_time(&self) -> SimDuration {
        self.queue.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileId;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    #[test]
    fn first_access_is_random() {
        let mut d = Device::hdd();
        let io = d.read(SimTime::ZERO, addr(1, 0));
        assert!(!io.sequential);
        assert!(io.finish.saturating_since(SimTime::ZERO) > SimDuration::from_millis(3));
    }

    #[test]
    fn stream_detection() {
        let mut d = Device::hdd();
        let a = d.read(SimTime::ZERO, addr(1, 0));
        let b = d.read(a.finish, addr(1, 1));
        assert!(b.sequential);
        // A different file starts its own (initially cold) stream.
        let c = d.read(b.finish, addr(2, 2));
        assert!(!c.sequential);
        // Re-reading the same block counts as sequential (no repositioning).
        let e = d.read(c.finish, addr(2, 2));
        assert!(e.sequential);
    }

    #[test]
    fn interleaved_streams_stay_sequential_per_file() {
        // Two interleaved sequential readers keep their per-stream
        // discount (read-ahead + elevator model).
        let mut d = Device::hdd();
        let mut now = SimTime::ZERO;
        let mut seq_count = 0;
        for i in 0..10 {
            let a = d.read(now, addr(1, i));
            let b = d.read(a.finish, addr(2, i));
            now = b.finish;
            seq_count += usize::from(a.sequential) + usize::from(b.sequential);
        }
        assert_eq!(seq_count, 18, "only the two first accesses reposition");
    }

    #[test]
    fn random_access_within_file_repositions() {
        let mut d = Device::hdd();
        let a = d.read(SimTime::ZERO, addr(1, 0));
        assert!(!a.sequential);
        let b = d.read(a.finish, addr(1, 7));
        assert!(!b.sequential, "a jump within the file repositions");
        let c = d.read(b.finish, addr(1, 8));
        assert!(c.sequential);
    }

    #[test]
    fn queueing_across_callers() {
        // The HDD has a single channel: concurrent requests serialize.
        let mut d = Device::hdd();
        let a = d.read(SimTime::ZERO, addr(1, 0));
        let b = d.read(SimTime::ZERO, addr(9, 0));
        assert!(b.finish > a.finish, "second request queues");
        // The SSD has parallel channels: a small burst proceeds together.
        let mut s = Device::ssd_sata();
        let a = s.read(SimTime::ZERO, addr(1, 0));
        let b = s.read(SimTime::ZERO, addr(9, 0));
        assert_eq!(a.finish, b.finish, "parallel channels");
    }

    #[test]
    fn counters_accumulate() {
        let mut d = Device::ram();
        d.read(SimTime::ZERO, addr(1, 0));
        d.write(SimTime::ZERO, addr(1, 1));
        d.write_async(SimTime::ZERO, addr(1, 2));
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 2);
        assert_eq!(d.bytes_read(), crate::PAGE_SIZE);
        assert_eq!(d.bytes_written(), 2 * crate::PAGE_SIZE);
        assert!(d.busy_time() > SimDuration::ZERO);
    }

    #[test]
    fn kind_and_display() {
        assert_eq!(Device::hdd().kind(), DeviceKind::Hdd);
        assert_eq!(Device::ssd_sata().kind(), DeviceKind::Ssd);
        assert_eq!(Device::ram().kind(), DeviceKind::Ram);
        assert_eq!(DeviceKind::Ssd.to_string(), "ssd");
    }

    #[test]
    fn try_paths_match_infallible_without_schedule() {
        let mut plain = Device::ssd_sata();
        let mut tried = Device::ssd_sata();
        for b in 0..8 {
            let a = plain.read(SimTime::ZERO, addr(1, b));
            let t = tried
                .try_read(SimTime::ZERO, addr(1, b))
                .expect("no faults");
            assert_eq!(a, t);
        }
        assert_eq!(plain.reads(), tried.reads());
        assert_eq!(tried.io_errors(), 0);
    }

    #[test]
    fn transient_errors_surface_and_occupy_queue() {
        use ddc_sim::{FaultKind, FaultSchedule};
        let mut d = Device::ssd_sata();
        d.set_fault_schedule(Some(FaultSchedule::new(1).with_window(
            SimTime::ZERO,
            None,
            FaultKind::TransientErrors { rate: 1.0 },
        )));
        let err = d.try_read(SimTime::ZERO, addr(1, 0)).unwrap_err();
        assert!(err.finish > SimTime::ZERO, "the attempt took device time");
        assert!(!err.permanent);
        assert_eq!(d.io_errors(), 1);
        assert_eq!(d.bytes_read(), 0, "failed transfers move no data");
        assert!(d.busy_time() > SimDuration::ZERO);
    }

    #[test]
    fn latency_spike_slows_but_succeeds() {
        use ddc_sim::{FaultKind, FaultSchedule};
        let mut slow = Device::ssd_sata();
        slow.set_fault_schedule(Some(FaultSchedule::new(1).with_window(
            SimTime::ZERO,
            None,
            FaultKind::LatencySpike {
                extra: SimDuration::from_millis(10),
            },
        )));
        let mut fast = Device::ssd_sata();
        let s = slow.try_read(SimTime::ZERO, addr(1, 0)).unwrap();
        let f = fast.try_read(SimTime::ZERO, addr(1, 0)).unwrap();
        assert_eq!(
            s.finish,
            f.finish + SimDuration::from_millis(10),
            "the spike adds exactly the configured extra"
        );
    }

    #[test]
    fn death_is_permanent_on_device() {
        use ddc_sim::{FaultKind, FaultSchedule};
        let mut d = Device::ssd_sata();
        d.set_fault_schedule(Some(FaultSchedule::new(1).with_window(
            SimTime::from_secs(1),
            None,
            FaultKind::Death,
        )));
        assert!(d.try_write(SimTime::ZERO, addr(1, 0)).is_ok());
        assert!(!d.is_dead());
        let err = d.try_write(SimTime::from_secs(2), addr(1, 1)).unwrap_err();
        assert!(err.permanent);
        assert!(d.is_dead());
        assert!(d.try_write(SimTime::from_secs(99), addr(1, 2)).is_err());
    }

    #[test]
    fn ram_faster_than_ssd_faster_than_hdd_end_to_end() {
        let mut ram = Device::ram();
        let mut ssd = Device::ssd_sata();
        let mut hdd = Device::hdd();
        let r = ram.read(SimTime::ZERO, addr(1, 0)).finish;
        let s = ssd.read(SimTime::ZERO, addr(1, 0)).finish;
        let h = hdd.read(SimTime::ZERO, addr(1, 0)).finish;
        assert!(r < s && s < h);
    }
}
