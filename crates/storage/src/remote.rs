//! Simulated remote chunk store and its fault-tolerance stack.
//!
//! The third tier of the hierarchy: a derivative cloud boots VMs from
//! pooled images held in an object store behind a CDN edge cache, read
//! over the network in fixed-size **chunks** of consecutive pages. A
//! [`ChunkStore`] models that backend's latency (per-request RTT split
//! by edge-cache hit/miss plus a per-page bandwidth term) and consults a
//! [`FaultSchedule`] through the *keyed* decision path, so fault fates
//! are a pure function of `(seed, chunk, attempt)` — identical across
//! thread counts and consultation orders.
//!
//! On top of the raw device sits the reusable fault-tolerance stack the
//! cache engines share, one [`RemoteBinding`] per bound pool:
//!
//! * **deadlines** — every fetch carries an absolute deadline; a request
//!   that cannot finish in time is abandoned, never awaited,
//! * **seeded retries** — failed attempts retry with exponential backoff
//!   and deterministic jitter drawn from [`ddc_sim::keyed_unit`],
//! * **hedged reads** — when the primary attempt's latency exceeds a
//!   threshold, a second request is launched and the first response
//!   wins (the loser is cancelled),
//! * **circuit breaking** — consecutive fetch failures open a shared
//!   [`CircuitBreaker`] ([`ddc_sim::CircuitBreaker`]); while open,
//!   fetches are skipped locally until the half-open probe,
//! * **bounded in-flight** — each binding caps outstanding fetches and
//!   sheds excess load to a miss,
//! * **fail-open degradation** — every failure mode above degrades to a
//!   cache miss. The remote can make the cache slower or emptier, never
//!   wrong: a block the guest has invalidated (flushed) is *localized*
//!   and never served from the remote again.
//!
//! All state lives per binding and is only ever touched by the bound
//! pool's owning VM, so the stack is deterministic under any thread
//! count — the byte-identical report contract extends to network faults.

use std::collections::VecDeque;
use std::sync::Arc;

use ddc_sim::{
    keyed_unit, BreakerConfig, CircuitBreaker, FaultDecision, FaultSchedule, SimDuration, SimTime,
};

use crate::{BlockAddr, FileId, PAGE_SIZE};

/// Identifier of one registered remote chunk store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RemoteId(pub u32);

impl std::fmt::Display for RemoteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "remote{}", self.0)
    }
}

/// Typed errors for remote registration and binding. The control plane
/// returns these instead of panicking so a misconfigured host degrades
/// to an error the caller can handle (matching the de-panicked
/// unknown-id handling elsewhere in the stack).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteError {
    /// The referenced remote id was never registered.
    UnknownRemote(RemoteId),
    /// A remote with this id is already registered.
    AlreadyRegistered(RemoteId),
    /// The referenced VM is unknown to the engine.
    UnknownVm(u32),
    /// The referenced pool is unknown to the engine.
    UnknownPool {
        /// Raw id of the VM the lookup used.
        vm: u32,
        /// Raw id of the pool that was not found.
        pool: u32,
    },
    /// The pool already has a remote binding.
    AlreadyBound {
        /// Raw id of the owning VM.
        vm: u32,
        /// Raw id of the already-bound pool.
        pool: u32,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::UnknownRemote(id) => write!(f, "unknown remote {id}"),
            RemoteError::AlreadyRegistered(id) => write!(f, "{id} is already registered"),
            RemoteError::UnknownVm(vm) => write!(f, "unknown vm {vm}"),
            RemoteError::UnknownPool { vm, pool } => write!(f, "unknown pool {pool} of vm {vm}"),
            RemoteError::AlreadyBound { vm, pool } => {
                write!(f, "pool {pool} of vm {vm} is already bound to a remote")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

/// One chunk of a backing image: `chunk_pages` consecutive pages of one
/// file, the remote's unit of transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkKey {
    /// Backing file the chunk belongs to.
    pub file: FileId,
    /// Chunk index within the file (`block / chunk_pages`).
    pub index: u64,
}

impl ChunkKey {
    /// The chunk containing `addr` at the given chunk size.
    pub fn of(addr: BlockAddr, chunk_pages: u64) -> ChunkKey {
        ChunkKey {
            file: addr.file,
            index: addr.block / chunk_pages,
        }
    }

    /// The page addresses the chunk covers, in ascending block order.
    pub fn pages(&self, chunk_pages: u64) -> impl Iterator<Item = BlockAddr> + '_ {
        let first = self.index * chunk_pages;
        let file = self.file;
        (first..first + chunk_pages).map(move |b| BlockAddr::new(file, b))
    }

    /// A stable 64-bit identity used for keyed fault decisions and edge
    /// placement; identical for every VM reading the same image chunk,
    /// which is what makes shared-prefix boot storms dedup at the edge.
    pub fn hash64(&self) -> u64 {
        self.file
            .0
            .rotate_left(32)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.index
    }
}

/// Latency and edge-cache parameters of a [`ChunkStore`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemoteConfig {
    /// Pages per chunk (the remote's range-read unit).
    pub chunk_pages: u64,
    /// Round trip to the CDN edge (request setup + first byte).
    pub edge_rtt: SimDuration,
    /// Round trip to the origin object store on an edge miss.
    pub origin_rtt: SimDuration,
    /// Per-page transfer time once streaming (bandwidth term).
    pub page_transfer: SimDuration,
    /// Probability a chunk is resident in the edge cache. Derived per
    /// chunk from the store seed, so every VM fetching the same image
    /// chunk sees the same placement (CDN dedup across tenants).
    pub edge_hit_rate: f64,
    /// Cost of serving a page out of a binding's readahead buffer.
    pub buffer_read: SimDuration,
    /// Chunks a binding's readahead buffer retains (FIFO).
    pub buffer_chunks: usize,
    /// Seed for keyed fault decisions and edge placement.
    pub seed: u64,
}

impl RemoteConfig {
    /// An object store behind a CDN: ~2 ms to the edge, ~40 ms to the
    /// origin, ~200 MB/s streaming, 64-page chunks, warm edge.
    pub fn cdn(seed: u64) -> RemoteConfig {
        RemoteConfig {
            chunk_pages: 64,
            edge_rtt: SimDuration::from_millis(2),
            origin_rtt: SimDuration::from_millis(40),
            page_transfer: SimDuration::from_nanos(PAGE_SIZE * 1_000_000_000 / 200_000_000),
            edge_hit_rate: 0.8,
            buffer_read: SimDuration::from_micros(5),
            buffer_chunks: 8,
            seed,
        }
    }
}

/// The fate of one network attempt against a [`ChunkStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The chunk arrives `latency` after the attempt was issued.
    Served {
        /// Time from issue to last byte.
        latency: SimDuration,
        /// Whether the edge cache served it (vs the origin).
        edge_hit: bool,
    },
    /// An error response arrives `after` the attempt was issued.
    Failed {
        /// Time from issue to the error response.
        after: SimDuration,
    },
    /// The request hangs for `after` and then fails — the shape that
    /// eats deadlines instead of failing fast.
    Stalled {
        /// Time from issue until the hang resolves into a failure.
        after: SimDuration,
    },
}

/// Salt space separating hedge attempts from primary attempts in the
/// keyed decision stream.
const HEDGE_SALT: u64 = 1 << 63;
/// Salt separating edge-placement draws from fault draws.
const EDGE_SALT: u64 = 0xED6E_CAC4_E000_0001;
/// Salt separating retry-jitter draws from fault draws.
const JITTER_SALT: u64 = 0x0115_7E55_0000_0002;

/// A simulated remote chunk store (object store behind a CDN edge).
///
/// The store is immutable once built — configuration, fault schedule and
/// edge placement are all evaluated through stateless keyed hashes — so
/// one `Arc<ChunkStore>` is safely shared by every binding and thread.
/// All mutable fault-tolerance state lives in the per-pool
/// [`RemoteBinding`].
#[derive(Clone, Debug)]
pub struct ChunkStore {
    id: RemoteId,
    config: RemoteConfig,
    faults: Option<FaultSchedule>,
}

impl ChunkStore {
    /// A store with the given id and parameters and no fault schedule.
    pub fn new(id: RemoteId, config: RemoteConfig) -> ChunkStore {
        ChunkStore {
            id,
            config,
            faults: None,
        }
    }

    /// Attaches a fault schedule (consulted via the keyed decision path).
    pub fn with_faults(mut self, faults: FaultSchedule) -> ChunkStore {
        self.faults = Some(faults);
        self
    }

    /// This store's id.
    pub fn id(&self) -> RemoteId {
        self.id
    }

    /// This store's parameters.
    pub fn config(&self) -> RemoteConfig {
        self.config
    }

    /// Whether `chunk` is resident in the edge cache — a pure function
    /// of `(store seed, chunk)`, shared across all tenants.
    pub fn edge_resident(&self, chunk: ChunkKey) -> bool {
        keyed_unit(self.config.seed ^ EDGE_SALT, chunk.hash64()) < self.config.edge_hit_rate
    }

    /// Full-chunk service time through the given path.
    fn chunk_latency(&self, edge_hit: bool) -> SimDuration {
        let rtt = if edge_hit {
            self.config.edge_rtt
        } else {
            self.config.origin_rtt
        };
        rtt + self.config.page_transfer * self.config.chunk_pages
    }

    /// Evaluates one network attempt for `chunk` issued at `at`. `salt`
    /// distinguishes retries and hedges of the same logical fetch so
    /// each attempt gets an independent (but deterministic) fate.
    pub fn attempt(&self, at: SimTime, chunk: ChunkKey, salt: u64) -> AttemptOutcome {
        let edge_hit = self.edge_resident(chunk);
        let decision = match &self.faults {
            Some(f) => f.decide_keyed(at, chunk.hash64().rotate_left(17) ^ salt),
            None => FaultDecision::Ok,
        };
        match decision {
            FaultDecision::Ok => AttemptOutcome::Served {
                latency: self.chunk_latency(edge_hit),
                edge_hit,
            },
            FaultDecision::Slow(extra) => AttemptOutcome::Served {
                latency: self.chunk_latency(edge_hit) + extra,
                edge_hit,
            },
            FaultDecision::EdgeMiss => AttemptOutcome::Served {
                latency: self.chunk_latency(false),
                edge_hit: false,
            },
            // Errors surface after one RTT on whichever path was tried.
            FaultDecision::Error => AttemptOutcome::Failed {
                after: if edge_hit {
                    self.config.edge_rtt
                } else {
                    self.config.origin_rtt
                },
            },
            FaultDecision::Stall(stall) => AttemptOutcome::Stalled { after: stall },
        }
    }
}

/// The registry of remote chunk stores a host serves images from.
#[derive(Clone, Debug, Default)]
pub struct RemoteRegistry {
    stores: Vec<Arc<ChunkStore>>,
}

impl RemoteRegistry {
    /// An empty registry.
    pub fn new() -> RemoteRegistry {
        RemoteRegistry::default()
    }

    /// Registers a store, rejecting duplicate ids with a typed error.
    pub fn register(&mut self, store: ChunkStore) -> Result<Arc<ChunkStore>, RemoteError> {
        if self.stores.iter().any(|s| s.id() == store.id()) {
            return Err(RemoteError::AlreadyRegistered(store.id()));
        }
        let store = Arc::new(store);
        self.stores.push(Arc::clone(&store));
        Ok(store)
    }

    /// Looks a store up by id.
    pub fn get(&self, id: RemoteId) -> Result<Arc<ChunkStore>, RemoteError> {
        self.stores
            .iter()
            .find(|s| s.id() == id)
            .cloned()
            .ok_or(RemoteError::UnknownRemote(id))
    }

    /// Number of registered stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether no store is registered.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }
}

/// Fault-tolerance parameters of a [`RemoteBinding`]'s fetch path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteFetchConfig {
    /// Absolute budget for one logical fetch, retries and hedges
    /// included; a fetch that cannot finish in time fails at the
    /// deadline (and degrades to a miss).
    pub deadline: SimDuration,
    /// Maximum primary attempts per fetch (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry (doubles per attempt).
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_max: SimDuration,
    /// Primary latency above which a hedged second request launches.
    pub hedge_after: SimDuration,
    /// Maximum fetches outstanding per binding; excess is shed to miss.
    pub inflight_cap: usize,
    /// Thresholds of the per-binding circuit breaker.
    pub breaker: BreakerConfig,
}

impl Default for RemoteFetchConfig {
    fn default() -> RemoteFetchConfig {
        RemoteFetchConfig {
            deadline: SimDuration::from_millis(250),
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(5),
            backoff_max: SimDuration::from_millis(40),
            hedge_after: SimDuration::from_millis(20),
            inflight_cap: 16,
            breaker: BreakerConfig {
                threshold: 3,
                initial_backoff: SimDuration::from_millis(50),
                max_backoff: SimDuration::from_secs(10),
            },
        }
    }
}

/// Counters kept by one [`RemoteBinding`] (aggregated into engine
/// totals; deterministic because each binding is single-owner).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteCounters {
    /// Logical fetches issued (before shedding/breaker short-circuits).
    pub fetches: u64,
    /// Fetches that served a chunk within the deadline.
    pub served: u64,
    /// Fetches that failed after retries/deadline (degraded to miss).
    pub failed: u64,
    /// Fetches shed because the in-flight cap was reached.
    pub shed: u64,
    /// Fetches skipped locally while the breaker was open.
    pub breaker_skipped: u64,
    /// Times the binding's breaker tripped open.
    pub breaker_trips: u64,
    /// Times an open breaker's probe fetch succeeded and closed it.
    pub breaker_recoveries: u64,
    /// Retry attempts issued after failed primaries.
    pub retries: u64,
    /// Fetches abandoned at their deadline.
    pub timeouts: u64,
    /// Hedged second requests launched.
    pub hedges: u64,
    /// Hedges whose response beat the primary (first-wins).
    pub hedge_wins: u64,
    /// Served fetches answered by the edge cache.
    pub edge_hits: u64,
    /// Served fetches that went to the origin.
    pub origin_fetches: u64,
    /// Pages served out of the readahead buffer.
    pub readahead_hits: u64,
}

ddc_metrics::counter_snapshot!(RemoteCounters, "remote", {
    fetches,
    served,
    failed,
    shed,
    breaker_skipped,
    breaker_trips,
    breaker_recoveries,
    retries,
    timeouts,
    hedges,
    hedge_wins,
    edge_hits,
    origin_fetches,
    readahead_hits,
});

/// One event on a fetch's timeline, for determinism property tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteTraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened (`"attempt"`, `"retry"`, `"hedge"`, `"served"`,
    /// `"failed"`, `"shed"`, `"breaker-open"`).
    pub kind: &'static str,
}

/// Result of one remote lookup through a binding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteLookup {
    /// The page is served (always the image's initial contents) and the
    /// data is available at `finish`.
    Served {
        /// When the page is available to the guest.
        finish: SimTime,
    },
    /// The remote cannot serve the page (localized, shed, breaker open,
    /// or the fetch failed) — fail-open, surfaces as a cache miss.
    Miss,
}

/// Per-pool remote binding: the fault-tolerance stack plus the
/// stale-safety bookkeeping that keeps the remote honest.
///
/// A binding serves only pages the guest has never invalidated. A
/// `flush` **localizes** its address — from then on the block belongs to
/// the guest's own disk and the remote never serves it again, which is
/// exactly the cleancache coherence rule (the kernel flushes a block
/// before writing its backing file).
#[derive(Clone, Debug)]
pub struct RemoteBinding {
    store: Arc<ChunkStore>,
    config: RemoteFetchConfig,
    breaker: CircuitBreaker,
    /// Finish times of outstanding fetches (small: bounded by the cap).
    inflight: Vec<SimTime>,
    /// Readahead buffer: pages of recently fetched chunks, FIFO by chunk.
    buffered: ddc_sim::FxHashSet<BlockAddr>,
    buffer_order: VecDeque<ChunkKey>,
    /// Blocks the guest has invalidated; never served from the remote.
    localized: ddc_sim::FxHashSet<BlockAddr>,
    /// Whole files the guest has invalidated (flush-on-truncate).
    localized_files: ddc_sim::FxHashSet<FileId>,
    counters: RemoteCounters,
}

impl RemoteBinding {
    /// Binds a pool to `store` with the given fetch parameters.
    pub fn new(store: Arc<ChunkStore>, config: RemoteFetchConfig) -> RemoteBinding {
        RemoteBinding {
            store,
            config,
            breaker: CircuitBreaker::new(config.breaker),
            inflight: Vec::new(),
            buffered: ddc_sim::FxHashSet::default(),
            buffer_order: VecDeque::new(),
            localized: ddc_sim::FxHashSet::default(),
            localized_files: ddc_sim::FxHashSet::default(),
            counters: RemoteCounters::default(),
        }
    }

    /// The store this binding fetches from.
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// The binding's fetch parameters.
    pub fn fetch_config(&self) -> RemoteFetchConfig {
        self.config
    }

    /// Accumulated counters.
    pub fn counters(&self) -> RemoteCounters {
        self.counters
    }

    /// The binding's circuit breaker (for audits and reports).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Outstanding fetches as of `now`.
    pub fn inflight(&self, now: SimTime) -> usize {
        self.inflight.iter().filter(|&&f| f > now).count()
    }

    /// Raw in-flight slots (including ones whose finish has passed but
    /// that no later lookup has pruned yet); never exceeds the cap.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Buffered pages that are also localized — always zero (`localize`
    /// purges the buffer); audited as the no-stale-data invariant.
    pub fn buffered_localized_overlap(&self) -> usize {
        self.buffered
            .iter()
            .filter(|&&a| self.is_localized(a))
            .count()
    }

    /// Pages currently staged in the readahead buffer.
    pub fn buffered_pages(&self) -> usize {
        self.buffered.len()
    }

    /// Number of localized (never-serve-again) blocks and files.
    pub fn localized_len(&self) -> (usize, usize) {
        (self.localized.len(), self.localized_files.len())
    }

    /// Whether the remote is forbidden from serving `addr`.
    pub fn is_localized(&self, addr: BlockAddr) -> bool {
        self.localized_files.contains(&addr.file) || self.localized.contains(&addr)
    }

    /// Marks `addr` guest-owned: the remote never serves it again and
    /// any staged copy is dropped. Called on every `flush`.
    pub fn localize(&mut self, addr: BlockAddr) {
        self.localized.insert(addr);
        self.buffered.remove(&addr);
    }

    /// Marks a whole file guest-owned (flush-on-truncate/delete).
    pub fn localize_file(&mut self, file: FileId) {
        self.localized_files.insert(file);
        self.buffered.retain(|a| a.file != file);
    }

    /// Seeds the localized sets from recovery replay (every flush the
    /// crashed instance acked is re-localized before the binding serves).
    pub fn preload_localized(
        &mut self,
        addrs: impl IntoIterator<Item = BlockAddr>,
        files: impl IntoIterator<Item = FileId>,
    ) {
        self.localized.extend(addrs);
        self.localized_files.extend(files);
    }

    /// Looks `addr` up through the fault-tolerance stack. See
    /// [`RemoteBinding::lookup_traced`].
    pub fn lookup(&mut self, now: SimTime, addr: BlockAddr) -> RemoteLookup {
        self.lookup_traced(now, addr, None)
    }

    /// Looks `addr` up, optionally recording the fetch timeline into
    /// `trace` (retry/hedge instants, for determinism tests).
    ///
    /// Order of degradation: localized blocks and buffer hits resolve
    /// without touching the network; then the in-flight cap sheds, the
    /// breaker short-circuits, and finally the deadline/retry/hedge
    /// loop runs the actual fetch.
    pub fn lookup_traced(
        &mut self,
        now: SimTime,
        addr: BlockAddr,
        mut trace: Option<&mut Vec<RemoteTraceEvent>>,
    ) -> RemoteLookup {
        let mut note = |at: SimTime, kind: &'static str| {
            if let Some(t) = trace.as_deref_mut() {
                t.push(RemoteTraceEvent { at, kind });
            }
        };
        if self.is_localized(addr) {
            return RemoteLookup::Miss;
        }
        if self.buffered.remove(&addr) {
            // Exclusive semantics, like the cache proper: a buffered page
            // is handed to the guest and leaves the buffer.
            self.counters.readahead_hits += 1;
            return RemoteLookup::Served {
                finish: now + self.store.config().buffer_read,
            };
        }
        self.counters.fetches += 1;
        self.inflight.retain(|&f| f > now);
        if self.inflight.len() >= self.config.inflight_cap {
            self.counters.shed += 1;
            note(now, "shed");
            return RemoteLookup::Miss;
        }
        if !self.breaker.allows(now) {
            self.counters.breaker_skipped += 1;
            note(now, "breaker-open");
            return RemoteLookup::Miss;
        }
        let chunk = ChunkKey::of(addr, self.store.config().chunk_pages);
        let deadline = now + self.config.deadline;
        let mut at = now;
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            note(at, if attempt == 1 { "attempt" } else { "retry" });
            match self.store.attempt(at, chunk, u64::from(attempt)) {
                AttemptOutcome::Served { latency, edge_hit } => {
                    let mut finish = at + latency;
                    let mut winner_edge = edge_hit;
                    if latency > self.config.hedge_after {
                        // Hedge: a second request launches once the
                        // primary is slower than the threshold; the
                        // first response wins and the loser is dropped.
                        let hedge_at = at + self.config.hedge_after;
                        self.counters.hedges += 1;
                        note(hedge_at, "hedge");
                        if let AttemptOutcome::Served { latency, edge_hit } =
                            self.store
                                .attempt(hedge_at, chunk, u64::from(attempt) | HEDGE_SALT)
                        {
                            let hedge_finish = hedge_at + latency;
                            if hedge_finish < finish {
                                finish = hedge_finish;
                                winner_edge = edge_hit;
                                self.counters.hedge_wins += 1;
                            }
                        }
                    }
                    if finish > deadline {
                        self.counters.timeouts += 1;
                        note(deadline, "failed");
                        return self.fail(deadline);
                    }
                    self.counters.served += 1;
                    if winner_edge {
                        self.counters.edge_hits += 1;
                    } else {
                        self.counters.origin_fetches += 1;
                    }
                    if self.breaker.note_success() {
                        self.counters.breaker_recoveries += 1;
                    }
                    self.inflight.push(finish);
                    self.stage_chunk(chunk, addr);
                    note(finish, "served");
                    return RemoteLookup::Served { finish };
                }
                AttemptOutcome::Failed { after } | AttemptOutcome::Stalled { after } => {
                    let failed_at = at + after;
                    if failed_at >= deadline {
                        // The stall or slow error ate the deadline; the
                        // caller abandoned the request at the deadline.
                        self.counters.timeouts += 1;
                        note(deadline, "failed");
                        return self.fail(deadline);
                    }
                    if attempt >= self.config.max_attempts {
                        note(failed_at, "failed");
                        return self.fail(failed_at);
                    }
                    // Seeded jittered exponential backoff: factor in
                    // [0.5, 1.5) drawn statelessly from (seed, chunk,
                    // attempt) so the retry schedule is identical across
                    // runs and thread counts.
                    let exp = self.config.backoff_base * 2u64.pow(attempt - 1);
                    let jitter = 0.5
                        + keyed_unit(
                            self.store.config().seed ^ JITTER_SALT,
                            chunk.hash64() ^ u64::from(attempt),
                        );
                    let backoff = (exp.min(self.config.backoff_max)) * jitter;
                    self.counters.retries += 1;
                    at = failed_at + backoff;
                    if at >= deadline {
                        self.counters.timeouts += 1;
                        note(deadline, "failed");
                        return self.fail(deadline);
                    }
                }
            }
        }
    }

    /// Records a final fetch failure at `finish`: feeds the breaker,
    /// occupies the in-flight slot until the failure resolved, and
    /// degrades to a miss.
    fn fail(&mut self, finish: SimTime) -> RemoteLookup {
        self.counters.failed += 1;
        if self.breaker.note_failure(finish) {
            self.counters.breaker_trips += 1;
        }
        self.inflight.push(finish);
        RemoteLookup::Miss
    }

    /// Stages the sibling pages of a fetched chunk in the readahead
    /// buffer (the whole range was transferred anyway), evicting the
    /// oldest staged chunk beyond the capacity. Localized pages and the
    /// page being served are skipped.
    fn stage_chunk(&mut self, chunk: ChunkKey, served: BlockAddr) {
        if self.store.config().buffer_chunks == 0 {
            return;
        }
        for page in chunk.pages(self.store.config().chunk_pages) {
            if page != served && !self.is_localized(page) {
                self.buffered.insert(page);
            }
        }
        self.buffer_order.push_back(chunk);
        if self.buffer_order.len() > self.store.config().buffer_chunks {
            if let Some(old) = self.buffer_order.pop_front() {
                // Chunks partition the address space, so dropping the
                // oldest chunk's pages cannot evict a newer chunk's.
                for page in old.pages(self.store.config().chunk_pages) {
                    self.buffered.remove(&page);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::FaultKind;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    fn store(seed: u64) -> ChunkStore {
        ChunkStore::new(RemoteId(0), RemoteConfig::cdn(seed))
    }

    fn binding(store: ChunkStore) -> RemoteBinding {
        RemoteBinding::new(Arc::new(store), RemoteFetchConfig::default())
    }

    #[test]
    fn chunk_key_partitions_files() {
        let k = ChunkKey::of(addr(3, 130), 64);
        assert_eq!(
            k,
            ChunkKey {
                file: FileId(3),
                index: 2
            }
        );
        let pages: Vec<BlockAddr> = k.pages(64).collect();
        assert_eq!(pages.len(), 64);
        assert_eq!(pages[0], addr(3, 128));
        assert_eq!(pages[63], addr(3, 191));
    }

    #[test]
    fn healthy_fetch_serves_and_stages_readahead() {
        let mut b = binding(store(1));
        let out = b.lookup(SimTime::ZERO, addr(1, 10));
        let RemoteLookup::Served { finish } = out else {
            panic!("healthy remote must serve: {out:?}");
        };
        assert!(finish > SimTime::ZERO);
        assert_eq!(b.counters().served, 1);
        // Sibling pages of the chunk are staged; serving one consumes it.
        assert_eq!(b.buffered_pages(), 63);
        let sibling = b.lookup(SimTime::ZERO, addr(1, 11));
        assert!(matches!(sibling, RemoteLookup::Served { .. }));
        assert_eq!(b.counters().readahead_hits, 1);
        assert_eq!(b.counters().fetches, 1, "buffer hit issues no fetch");
        assert_eq!(b.buffered_pages(), 62);
    }

    #[test]
    fn localized_blocks_are_never_served() {
        let mut b = binding(store(2));
        assert!(matches!(
            b.lookup(SimTime::ZERO, addr(1, 0)),
            RemoteLookup::Served { .. }
        ));
        // Guest invalidates a staged sibling: the staged copy dies too.
        b.localize(addr(1, 1));
        assert_eq!(b.lookup(SimTime::ZERO, addr(1, 1)), RemoteLookup::Miss);
        b.localize_file(FileId(1));
        assert_eq!(b.lookup(SimTime::ZERO, addr(1, 7)), RemoteLookup::Miss);
        assert_eq!(b.buffered_pages(), 0);
        // Other files still flow.
        assert!(matches!(
            b.lookup(SimTime::ZERO, addr(2, 0)),
            RemoteLookup::Served { .. }
        ));
    }

    #[test]
    fn partition_degrades_to_miss_and_trips_breaker() {
        let faults = FaultSchedule::new(3).with_window(
            SimTime::ZERO,
            Some(SimTime::from_secs(10)),
            FaultKind::Partition,
        );
        let mut b = binding(store(3).with_faults(faults));
        let mut t = SimTime::ZERO;
        // Every fetch inside the partition fails open to a miss; after
        // the breaker threshold they are skipped locally.
        for i in 0..10 {
            let out = b.lookup(t, addr(1, i * 64));
            assert_eq!(out, RemoteLookup::Miss, "fetch {i}");
            t += SimDuration::from_millis(1);
        }
        assert_eq!(b.counters().breaker_trips, 1);
        assert!(b.counters().breaker_skipped > 0);
        assert!(b.breaker().is_open());
        // After the window closes, the next probe recovers.
        let healed = SimTime::from_secs(11);
        let out = b.lookup(healed, addr(1, 640));
        assert!(matches!(out, RemoteLookup::Served { .. }));
        assert_eq!(b.counters().breaker_recoveries, 1);
    }

    #[test]
    fn retries_and_deadline_are_deterministic() {
        let faults = || {
            FaultSchedule::new(7).with_window(
                SimTime::ZERO,
                None,
                FaultKind::TransientErrors { rate: 0.6 },
            )
        };
        let run = || {
            let mut b = binding(store(7).with_faults(faults()));
            let mut trace = Vec::new();
            for i in 0..50 {
                let t = SimTime::from_nanos(i * 1_000_000);
                b.lookup_traced(t, addr(2, i * 64), Some(&mut trace));
            }
            (b.counters(), trace)
        };
        let (c1, t1) = run();
        let (c2, t2) = run();
        assert_eq!(c1, c2);
        assert_eq!(t1, t2);
        assert!(c1.retries > 0, "a 60% error rate must retry: {c1:?}");
    }

    #[test]
    fn stall_eats_deadline_and_counts_timeout() {
        let faults = FaultSchedule::new(11).with_window(
            SimTime::ZERO,
            None,
            FaultKind::RemoteBrownout {
                rate: 1.0,
                stall: SimDuration::from_secs(1),
            },
        );
        let mut b = binding(store(11).with_faults(faults));
        let out = b.lookup(SimTime::ZERO, addr(1, 0));
        assert_eq!(out, RemoteLookup::Miss);
        assert_eq!(b.counters().timeouts, 1);
        assert_eq!(b.counters().failed, 1);
        // The failure resolved exactly at the deadline.
        assert_eq!(b.inflight(SimTime::ZERO), 1);
        assert_eq!(
            b.inflight(SimTime::ZERO + RemoteFetchConfig::default().deadline),
            0
        );
    }

    #[test]
    fn slow_origin_fetch_hedges() {
        // Force origin-path latency above the hedge threshold via an
        // edge-cache flap window; origin RTT (40ms) > hedge_after (20ms).
        let faults = FaultSchedule::new(13).with_window(
            SimTime::ZERO,
            None,
            FaultKind::EdgeCacheFlap { rate: 1.0 },
        );
        let mut b = binding(store(13).with_faults(faults));
        let out = b.lookup(SimTime::ZERO, addr(1, 0));
        assert!(matches!(out, RemoteLookup::Served { .. }));
        assert_eq!(b.counters().hedges, 1);
    }

    #[test]
    fn inflight_cap_sheds() {
        let cfg = RemoteFetchConfig {
            inflight_cap: 2,
            ..RemoteFetchConfig::default()
        };
        let mut b = RemoteBinding::new(Arc::new(store(17)), cfg);
        // Three fetches at the same instant: the third is shed (the
        // first two are still in flight).
        assert!(matches!(
            b.lookup(SimTime::ZERO, addr(1, 0)),
            RemoteLookup::Served { .. }
        ));
        assert!(matches!(
            b.lookup(SimTime::ZERO, addr(1, 64)),
            RemoteLookup::Served { .. }
        ));
        assert_eq!(b.lookup(SimTime::ZERO, addr(1, 128)), RemoteLookup::Miss);
        assert_eq!(b.counters().shed, 1);
        // Once the transfers finish, capacity frees up.
        let later = SimTime::from_secs(1);
        assert!(matches!(
            b.lookup(later, addr(1, 128)),
            RemoteLookup::Served { .. }
        ));
    }

    #[test]
    fn registry_returns_typed_errors() {
        let mut reg = RemoteRegistry::new();
        reg.register(store(1)).unwrap();
        assert_eq!(
            reg.register(store(2)).unwrap_err(),
            RemoteError::AlreadyRegistered(RemoteId(0))
        );
        assert!(reg.get(RemoteId(0)).is_ok());
        assert_eq!(
            reg.get(RemoteId(9)).unwrap_err(),
            RemoteError::UnknownRemote(RemoteId(9))
        );
        assert_eq!(
            RemoteError::UnknownRemote(RemoteId(9)).to_string(),
            "unknown remote remote9"
        );
    }

    #[test]
    fn edge_placement_is_shared_across_bindings() {
        // Two tenants reading the same image chunk see the same edge
        // placement (CDN dedup), and placements are mixed overall.
        let s = Arc::new(store(23));
        let hits: Vec<bool> = (0..64)
            .map(|i| {
                s.edge_resident(ChunkKey {
                    file: FileId(1),
                    index: i,
                })
            })
            .collect();
        let again: Vec<bool> = (0..64)
            .map(|i| {
                s.edge_resident(ChunkKey {
                    file: FileId(1),
                    index: i,
                })
            })
            .collect();
        assert_eq!(hits, again);
        assert!(hits.iter().any(|&h| h));
        assert!(hits.iter().any(|&h| !h));
    }
}
