//! Write-ahead journal for the SSD-backed hypervisor cache store.
//!
//! DoubleDecker's clean-cache semantics (paper §3–4) make recovery after
//! a hypervisor crash unusually forgiving: every cached entry is a clean
//! second-chance copy whose authoritative version lives on the virtual
//! disk, so a recovered cache may *lose* entries freely — the only fatal
//! outcome is serving an entry older than the guest's latest put/flush.
//! The journal records enough to warm-restart the SSD store while making
//! that outcome impossible:
//!
//! * **append-only records** for every state transition (puts, exclusive
//!   gets, evictions, flushes, pool/VM control-plane changes), each
//!   carrying a monotonically increasing **generation number** and a
//!   CRC32 checksum;
//! * a **durability watermark** ([`Journal::sync`]): flush records are
//!   synced before the flush hypercall is acknowledged, so an acked
//!   flush is always at or below the watermark;
//! * **truncation-tolerant replay** ([`Journal::replay`]): replay
//!   consumes the longest valid prefix and reports — without panicking —
//!   whether it stopped at a torn final record (crash mid-append) or a
//!   checksum mismatch (bit rot).
//!
//! Identifier types from higher layers (VM and pool ids, page versions)
//! are stored as raw integers; this crate sits below `ddc-cleancache`
//! and cannot name them.

use std::fmt;

/// Byte length of the fixed record header: `[len u16][kind u8][gen u64]`.
const HEADER_LEN: usize = 2 + 1 + 8;

/// Byte length of the trailing CRC32.
const TRAILER_LEN: usize = 4;

/// Smallest well-formed record (header + empty payload + crc).
const MIN_RECORD_LEN: usize = HEADER_LEN + TRAILER_LEN;

use crate::addr::{BlockAddr, FileId};

/// One journal record — a state transition of the hypervisor cache.
///
/// `vm` and `pool` fields are the raw integer ids of the cleancache
/// layer's `VmId`/`PoolId`; `version` is the raw guest page version;
/// `store` and `mode` are the `StoreKind`/`PartitionMode` discriminants
/// as encoded by the hypercache layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// A VM joined the cache with per-store weights.
    AddVm {
        /// Raw VM id.
        vm: u32,
        /// Memory-store weight.
        mem_weight: u64,
        /// SSD-store weight.
        ssd_weight: u64,
    },
    /// A VM left the cache (all its pools drained).
    RemoveVm {
        /// Raw VM id.
        vm: u32,
    },
    /// A VM's per-store weights changed.
    SetVmWeights {
        /// Raw VM id.
        vm: u32,
        /// New memory-store weight.
        mem_weight: u64,
        /// New SSD-store weight.
        ssd_weight: u64,
    },
    /// A pool was created with a `<store, weight>` policy.
    CreatePool {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
        /// Store-kind discriminant of the pool policy.
        store: u8,
        /// Pool weight.
        weight: u32,
    },
    /// A pool was destroyed (all entries dropped).
    DestroyPool {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
    },
    /// A pool's policy changed (rehoming side effects are journaled
    /// separately as evictions and puts).
    SetPolicy {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
        /// New store-kind discriminant.
        store: u8,
        /// New pool weight.
        weight: u32,
    },
    /// A page version was stored (put, trickle-down, or rehome target).
    Put {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
        /// Block address of the entry.
        addr: BlockAddr,
        /// Raw guest page version stored.
        version: u64,
        /// Placement discriminant (memory or SSD store).
        placement: u8,
    },
    /// An entry left the cache through an exclusive get.
    Take {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
        /// Block address removed.
        addr: BlockAddr,
    },
    /// An entry was evicted (capacity pressure, rehome, or drain).
    Evict {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
        /// Block address evicted.
        addr: BlockAddr,
    },
    /// A single-page flush (guest overwrote or invalidated the page).
    /// Synced before the hypercall is acknowledged.
    Flush {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
        /// Block address flushed.
        addr: BlockAddr,
    },
    /// A whole-file flush. Synced before the hypercall is acknowledged.
    FlushFile {
        /// Raw VM id.
        vm: u32,
        /// Raw pool id.
        pool: u32,
        /// File whose pages were flushed.
        file: FileId,
    },
    /// An epoch marker: the generation of this record is a flush epoch
    /// the named VM may have observed (written by checkpoints).
    Epoch {
        /// Raw VM id.
        vm: u32,
    },
    /// The memory store was resized.
    SetMemCapacity {
        /// New capacity in pages.
        pages: u64,
    },
    /// The SSD store was resized.
    SetSsdCapacity {
        /// New capacity in pages.
        pages: u64,
    },
    /// The partition mode changed.
    SetMode {
        /// Partition-mode discriminant.
        mode: u8,
    },
    /// The SSD tier was quarantined and fully drained.
    SsdDrain,
    /// Per-VM SSD wear totals at a checkpoint. Compaction drops the
    /// historical `Put` records wear was accrued from; this record
    /// carries the totals forward so replay restores them exactly
    /// (wear never decreases across a recovery).
    WearTotals {
        /// Raw VM id the totals belong to.
        vm: u32,
        /// Lifetime SSD-tier page writes charged to the VM.
        ssd_pages_written: u64,
        /// Lifetime pages the VM admitted into either tier.
        pages_admitted: u64,
    },
}

impl JournalRecord {
    /// The record-kind discriminant used on the wire.
    fn kind(&self) -> u8 {
        match self {
            JournalRecord::AddVm { .. } => 1,
            JournalRecord::RemoveVm { .. } => 2,
            JournalRecord::SetVmWeights { .. } => 3,
            JournalRecord::CreatePool { .. } => 4,
            JournalRecord::DestroyPool { .. } => 5,
            JournalRecord::SetPolicy { .. } => 6,
            JournalRecord::Put { .. } => 7,
            JournalRecord::Take { .. } => 8,
            JournalRecord::Evict { .. } => 9,
            JournalRecord::Flush { .. } => 10,
            JournalRecord::FlushFile { .. } => 11,
            JournalRecord::Epoch { .. } => 12,
            JournalRecord::SetMemCapacity { .. } => 13,
            JournalRecord::SetSsdCapacity { .. } => 14,
            JournalRecord::SetMode { .. } => 15,
            JournalRecord::SsdDrain => 16,
            JournalRecord::WearTotals { .. } => 17,
        }
    }

    /// Appends the payload bytes (everything after the header).
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match *self {
            JournalRecord::AddVm {
                vm,
                mem_weight,
                ssd_weight,
            }
            | JournalRecord::SetVmWeights {
                vm,
                mem_weight,
                ssd_weight,
            } => {
                put_u32(out, vm);
                put_u64(out, mem_weight);
                put_u64(out, ssd_weight);
            }
            JournalRecord::RemoveVm { vm } | JournalRecord::Epoch { vm } => put_u32(out, vm),
            JournalRecord::CreatePool {
                vm,
                pool,
                store,
                weight,
            }
            | JournalRecord::SetPolicy {
                vm,
                pool,
                store,
                weight,
            } => {
                put_u32(out, vm);
                put_u32(out, pool);
                out.push(store);
                put_u32(out, weight);
            }
            JournalRecord::DestroyPool { vm, pool } => {
                put_u32(out, vm);
                put_u32(out, pool);
            }
            JournalRecord::Put {
                vm,
                pool,
                addr,
                version,
                placement,
            } => {
                put_u32(out, vm);
                put_u32(out, pool);
                put_u64(out, addr.file.0);
                put_u64(out, addr.block);
                put_u64(out, version);
                out.push(placement);
            }
            JournalRecord::Take { vm, pool, addr }
            | JournalRecord::Evict { vm, pool, addr }
            | JournalRecord::Flush { vm, pool, addr } => {
                put_u32(out, vm);
                put_u32(out, pool);
                put_u64(out, addr.file.0);
                put_u64(out, addr.block);
            }
            JournalRecord::FlushFile { vm, pool, file } => {
                put_u32(out, vm);
                put_u32(out, pool);
                put_u64(out, file.0);
            }
            JournalRecord::SetMemCapacity { pages } | JournalRecord::SetSsdCapacity { pages } => {
                put_u64(out, pages)
            }
            JournalRecord::SetMode { mode } => out.push(mode),
            JournalRecord::SsdDrain => {}
            JournalRecord::WearTotals {
                vm,
                ssd_pages_written,
                pages_admitted,
            } => {
                put_u32(out, vm);
                put_u64(out, ssd_pages_written);
                put_u64(out, pages_admitted);
            }
        }
    }

    /// Decodes a payload for `kind`, or `None` if malformed.
    fn decode_payload(kind: u8, payload: &[u8]) -> Option<JournalRecord> {
        let mut c = Cursor::new(payload);
        let rec = match kind {
            1 => JournalRecord::AddVm {
                vm: c.u32()?,
                mem_weight: c.u64()?,
                ssd_weight: c.u64()?,
            },
            2 => JournalRecord::RemoveVm { vm: c.u32()? },
            3 => JournalRecord::SetVmWeights {
                vm: c.u32()?,
                mem_weight: c.u64()?,
                ssd_weight: c.u64()?,
            },
            4 => JournalRecord::CreatePool {
                vm: c.u32()?,
                pool: c.u32()?,
                store: c.u8()?,
                weight: c.u32()?,
            },
            5 => JournalRecord::DestroyPool {
                vm: c.u32()?,
                pool: c.u32()?,
            },
            6 => JournalRecord::SetPolicy {
                vm: c.u32()?,
                pool: c.u32()?,
                store: c.u8()?,
                weight: c.u32()?,
            },
            7 => JournalRecord::Put {
                vm: c.u32()?,
                pool: c.u32()?,
                addr: BlockAddr::new(FileId(c.u64()?), c.u64()?),
                version: c.u64()?,
                placement: c.u8()?,
            },
            8 => JournalRecord::Take {
                vm: c.u32()?,
                pool: c.u32()?,
                addr: BlockAddr::new(FileId(c.u64()?), c.u64()?),
            },
            9 => JournalRecord::Evict {
                vm: c.u32()?,
                pool: c.u32()?,
                addr: BlockAddr::new(FileId(c.u64()?), c.u64()?),
            },
            10 => JournalRecord::Flush {
                vm: c.u32()?,
                pool: c.u32()?,
                addr: BlockAddr::new(FileId(c.u64()?), c.u64()?),
            },
            11 => JournalRecord::FlushFile {
                vm: c.u32()?,
                pool: c.u32()?,
                file: FileId(c.u64()?),
            },
            12 => JournalRecord::Epoch { vm: c.u32()? },
            13 => JournalRecord::SetMemCapacity { pages: c.u64()? },
            14 => JournalRecord::SetSsdCapacity { pages: c.u64()? },
            15 => JournalRecord::SetMode { mode: c.u8()? },
            16 => JournalRecord::SsdDrain,
            17 => JournalRecord::WearTotals {
                vm: c.u32()?,
                ssd_pages_written: c.u64()?,
                pages_admitted: c.u64()?,
            },
            _ => return None,
        };
        if c.at_end() {
            Some(rec)
        } else {
            None
        }
    }
}

/// How replay of a journal image terminated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Number of valid records consumed.
    pub records: u64,
    /// Bytes of the image consumed by valid records.
    pub bytes_consumed: usize,
    /// Replay stopped at a torn final record (length overruns the image).
    pub torn_tail: bool,
    /// Replay stopped at a corrupt record (checksum or framing failure).
    pub corrupt: bool,
}

impl fmt::Display for ReplayStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records / {} bytes{}{}",
            self.records,
            self.bytes_consumed,
            if self.torn_tail { ", torn tail" } else { "" },
            if self.corrupt { ", corrupt" } else { "" },
        )
    }
}

/// An in-memory append-only journal with an explicit durability
/// watermark standing in for `fsync`.
///
/// # Example
///
/// ```
/// use ddc_storage::{BlockAddr, FileId, Journal, JournalRecord};
///
/// let mut j = Journal::new();
/// let gen = j.append(&JournalRecord::Flush {
///     vm: 1,
///     pool: 2,
///     addr: BlockAddr::new(FileId(7), 3),
/// });
/// j.sync();
/// assert_eq!(gen, 1);
/// let (records, stats) = Journal::replay(j.bytes());
/// assert_eq!(records.len(), 1);
/// assert!(!stats.torn_tail && !stats.corrupt);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Journal {
    buf: Vec<u8>,
    durable: usize,
    next_gen: u64,
    records: u64,
}

impl Journal {
    /// An empty journal whose first record gets generation 1.
    pub fn new() -> Journal {
        Journal::with_start_gen(1)
    }

    /// An empty journal whose first record gets generation `start_gen` —
    /// used by recovery checkpoints so generations stay monotone across
    /// restarts.
    pub fn with_start_gen(start_gen: u64) -> Journal {
        Journal {
            buf: Vec::new(),
            durable: 0,
            next_gen: start_gen.max(1),
            records: 0,
        }
    }

    /// Appends a record and returns its generation number. The record is
    /// *not* durable until the next [`Journal::sync`].
    pub fn append(&mut self, rec: &JournalRecord) -> u64 {
        let gen = self.next_gen;
        self.append_with_gen(rec, gen);
        gen
    }

    /// Appends a record carrying an explicitly assigned generation.
    /// The sharded serving plane draws generations from one cache-global
    /// cell and fans records out across per-shard segments; the segments
    /// then interleave back into a single dense generation sequence at
    /// recovery. The journal's own counter advances past `gen`, so mixed
    /// use with [`Journal::append`] stays monotone. Wire-identical
    /// framing to [`Journal::append`].
    pub fn append_with_gen(&mut self, rec: &JournalRecord, gen: u64) {
        self.next_gen = self.next_gen.max(gen + 1);
        let start = self.buf.len();
        self.buf.extend_from_slice(&[0, 0]); // length backpatched below
        self.buf.push(rec.kind());
        put_u64(&mut self.buf, gen);
        rec.encode_payload(&mut self.buf);
        let len = (self.buf.len() - start + TRAILER_LEN) as u16;
        self.buf[start..start + 2].copy_from_slice(&len.to_le_bytes());
        let crc = crc32(&self.buf[start..]);
        put_u32(&mut self.buf, crc);
        self.records += 1;
    }

    /// Appends a batch of records in order, returning the generation of
    /// the last one (0 for an empty batch). Wire-identical to calling
    /// [`Journal::append`] per record; one buffer reservation covers the
    /// batch's framing so checkpoint writers don't regrow the image per
    /// record.
    pub fn append_all<'a>(&mut self, recs: impl IntoIterator<Item = &'a JournalRecord>) -> u64 {
        let recs = recs.into_iter();
        let (lower, _) = recs.size_hint();
        self.buf.reserve(lower * MIN_RECORD_LEN);
        let mut last = 0;
        for rec in recs {
            last = self.append(rec);
        }
        last
    }

    /// Appends a batch of records carrying a contiguous, explicitly
    /// claimed generation run: record `i` gets `start_gen + i`. The
    /// sharded serving plane claims the run from its cache-global
    /// generation cell in a single `fetch_add(n)` and lands the whole
    /// group in one segment append instead of `n` per-record calls.
    /// Wire-identical to looping [`Journal::append_with_gen`] over
    /// `start_gen..start_gen + n`; one buffer reservation covers the
    /// batch's framing. Returns the generation of the last record
    /// (`start_gen` when `recs` is empty, i.e. nothing was appended).
    pub fn append_run(&mut self, recs: &[JournalRecord], start_gen: u64) -> u64 {
        self.buf.reserve(recs.len() * MIN_RECORD_LEN);
        let mut gen = start_gen;
        for rec in recs {
            self.append_with_gen(rec, gen);
            gen += 1;
        }
        gen.saturating_sub(1).max(start_gen)
    }

    /// Makes everything appended so far durable (the `fsync` stand-in).
    /// Flush records must be synced before the hypercall returns; puts
    /// and evictions may remain above the watermark and be lost.
    pub fn sync(&mut self) {
        self.durable = self.buf.len();
    }

    /// The full journal image, including unsynced bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes guaranteed durable (at or below the last [`Journal::sync`]).
    pub fn durable_len(&self) -> usize {
        self.durable
    }

    /// Total bytes appended.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The generation the next appended record will receive.
    pub fn next_gen(&self) -> u64 {
        self.next_gen
    }

    /// Number of records appended to this journal. Live compaction in
    /// the hypercache layer compares this against the live entry count
    /// to decide when the journal is worth checkpointing.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Byte offsets of record boundaries in `bytes` (the end offset of
    /// each well-formed record, in order). Crash harnesses use this to
    /// cut a journal image at clean record boundaries.
    pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut off = 0;
        while bytes.len() - off >= MIN_RECORD_LEN {
            let len = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
            if len < MIN_RECORD_LEN || off + len > bytes.len() {
                break;
            }
            off += len;
            out.push(off);
        }
        out
    }

    /// Decodes the longest valid prefix of a journal image.
    ///
    /// Returns the `(generation, record)` pairs in append order plus
    /// [`ReplayStats`] describing how decoding terminated. A short or
    /// overrunning final record is reported as a torn tail; a checksum
    /// or framing failure as corruption. Neither panics — crash recovery
    /// must accept any byte image.
    pub fn replay(bytes: &[u8]) -> (Vec<(u64, JournalRecord)>, ReplayStats) {
        let mut records = Vec::new();
        let mut stats = ReplayStats::default();
        let mut off = 0;
        loop {
            let remaining = bytes.len() - off;
            if remaining == 0 {
                break;
            }
            if remaining < MIN_RECORD_LEN {
                stats.torn_tail = true;
                break;
            }
            let len = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
            if len < MIN_RECORD_LEN {
                stats.corrupt = true;
                break;
            }
            if off + len > bytes.len() {
                stats.torn_tail = true;
                break;
            }
            let rec_bytes = &bytes[off..off + len];
            let body = &rec_bytes[..len - TRAILER_LEN];
            let stored_crc = u32::from_le_bytes(
                rec_bytes[len - TRAILER_LEN..]
                    .try_into()
                    .expect("trailer is 4 bytes"),
            );
            if crc32(body) != stored_crc {
                stats.corrupt = true;
                break;
            }
            let kind = rec_bytes[2];
            let gen = u64::from_le_bytes(rec_bytes[3..11].try_into().expect("header gen"));
            match JournalRecord::decode_payload(kind, &body[HEADER_LEN..]) {
                Some(rec) => records.push((gen, rec)),
                None => {
                    stats.corrupt = true;
                    break;
                }
            }
            off += len;
            stats.records += 1;
        }
        stats.bytes_consumed = off;
        (records, stats)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian payload reader.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, off: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.off)?;
        self.off += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.off..self.off + 4)?;
        self.off += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.off..self.off + 8)?;
        self.off += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }

    fn at_end(&self) -> bool {
        self.off == self.bytes.len()
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise.
/// Journal records are tens of bytes; table-driven speed is not needed.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::AddVm {
                vm: 1,
                mem_weight: 60,
                ssd_weight: 40,
            },
            JournalRecord::CreatePool {
                vm: 1,
                pool: 1,
                store: 0,
                weight: 100,
            },
            JournalRecord::Put {
                vm: 1,
                pool: 1,
                addr: BlockAddr::new(FileId(7), 3),
                version: 9,
                placement: 1,
            },
            JournalRecord::Take {
                vm: 1,
                pool: 1,
                addr: BlockAddr::new(FileId(7), 3),
            },
            JournalRecord::Evict {
                vm: 1,
                pool: 1,
                addr: BlockAddr::new(FileId(7), 4),
            },
            JournalRecord::Flush {
                vm: 1,
                pool: 1,
                addr: BlockAddr::new(FileId(7), 5),
            },
            JournalRecord::FlushFile {
                vm: 1,
                pool: 1,
                file: FileId(7),
            },
            JournalRecord::Epoch { vm: 1 },
            JournalRecord::SetVmWeights {
                vm: 1,
                mem_weight: 50,
                ssd_weight: 50,
            },
            JournalRecord::SetPolicy {
                vm: 1,
                pool: 1,
                store: 2,
                weight: 30,
            },
            JournalRecord::SetMemCapacity { pages: 4096 },
            JournalRecord::SetSsdCapacity { pages: 65536 },
            JournalRecord::SetMode { mode: 1 },
            JournalRecord::SsdDrain,
            JournalRecord::WearTotals {
                vm: 1,
                ssd_pages_written: 12345,
                pages_admitted: 67890,
            },
            JournalRecord::DestroyPool { vm: 1, pool: 1 },
            JournalRecord::RemoveVm { vm: 1 },
        ]
    }

    #[test]
    fn append_all_is_wire_identical_to_sequential_appends() {
        let recs = sample_records();
        let mut one_by_one = Journal::new();
        let mut last = 0;
        for r in &recs {
            last = one_by_one.append(r);
        }
        let mut batched = Journal::new();
        assert_eq!(batched.append_all(&recs), last);
        assert_eq!(batched.bytes(), one_by_one.bytes());
        assert_eq!(batched.records(), one_by_one.records());
        assert_eq!(batched.next_gen(), one_by_one.next_gen());
        assert_eq!(Journal::new().append_all(&[]), 0, "empty batch");
    }

    #[test]
    fn append_run_is_wire_identical_to_explicit_gen_appends() {
        let recs = sample_records();
        for start_gen in [1u64, 17, 4_000_000_000] {
            let mut one_by_one = Journal::with_start_gen(start_gen);
            for (i, r) in recs.iter().enumerate() {
                one_by_one.append_with_gen(r, start_gen + i as u64);
            }
            let mut batched = Journal::with_start_gen(start_gen);
            let last = batched.append_run(&recs, start_gen);
            assert_eq!(last, start_gen + recs.len() as u64 - 1);
            assert_eq!(batched.bytes(), one_by_one.bytes());
            assert_eq!(batched.records(), one_by_one.records());
            assert_eq!(batched.next_gen(), one_by_one.next_gen());
        }
        let mut empty = Journal::new();
        assert_eq!(empty.append_run(&[], 9), 9, "empty run appends nothing");
        assert!(empty.is_empty());
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let mut j = Journal::new();
        let recs = sample_records();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(j.append(r), i as u64 + 1, "generations are sequential");
        }
        let (replayed, stats) = Journal::replay(j.bytes());
        assert_eq!(stats.records, recs.len() as u64);
        assert!(!stats.torn_tail && !stats.corrupt);
        assert_eq!(stats.bytes_consumed, j.len());
        for (i, (gen, rec)) in replayed.iter().enumerate() {
            assert_eq!(*gen, i as u64 + 1);
            assert_eq!(*rec, recs[i]);
        }
    }

    #[test]
    fn sync_advances_watermark() {
        let mut j = Journal::new();
        assert_eq!(j.durable_len(), 0);
        j.append(&JournalRecord::SsdDrain);
        assert_eq!(j.durable_len(), 0, "append alone is not durable");
        j.sync();
        assert_eq!(j.durable_len(), j.len());
        j.append(&JournalRecord::SsdDrain);
        assert!(j.durable_len() < j.len());
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r);
        }
        let boundaries = Journal::record_boundaries(j.bytes());
        assert_eq!(*boundaries.last().unwrap(), j.len());
        // Cut mid-record: everything before the cut replays, the tail is
        // reported torn.
        let cut = boundaries[2] + 3;
        let (replayed, stats) = Journal::replay(&j.bytes()[..cut]);
        assert_eq!(replayed.len(), 3);
        assert!(stats.torn_tail);
        assert!(!stats.corrupt);
        assert_eq!(stats.bytes_consumed, boundaries[2]);
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r);
        }
        let boundaries = Journal::record_boundaries(j.bytes());
        // Flip one payload bit in the 4th record.
        let mut img = j.bytes().to_vec();
        img[boundaries[2] + HEADER_LEN] ^= 0x40;
        let (replayed, stats) = Journal::replay(&img);
        assert_eq!(replayed.len(), 3, "replay stops at the corrupt record");
        assert!(stats.corrupt);
        assert!(!stats.torn_tail);
    }

    #[test]
    fn length_corruption_is_detected() {
        let mut j = Journal::new();
        j.append(&JournalRecord::SsdDrain);
        j.append(&JournalRecord::SsdDrain);
        let mut img = j.bytes().to_vec();
        img[0] = 3; // shorter than any valid record
        let (replayed, stats) = Journal::replay(&img);
        assert!(replayed.is_empty());
        assert!(stats.corrupt);
        // Overrunning length: reported as a torn tail (indistinguishable
        // from a crash mid-append).
        let mut img = j.bytes().to_vec();
        img[0] = 200;
        let (replayed, stats) = Journal::replay(&img);
        assert!(replayed.is_empty());
        assert!(stats.torn_tail);
    }

    #[test]
    fn unknown_kind_is_corrupt() {
        let mut j = Journal::new();
        j.append(&JournalRecord::SsdDrain);
        let mut img = j.bytes().to_vec();
        img[2] = 99;
        // Fix the CRC so only the kind is bad.
        let body_len = img.len() - TRAILER_LEN;
        let crc = crc32(&img[..body_len]);
        img.truncate(body_len);
        put_u32(&mut img, crc);
        let (replayed, stats) = Journal::replay(&img);
        assert!(replayed.is_empty());
        assert!(stats.corrupt);
    }

    #[test]
    fn start_gen_is_honoured() {
        let mut j = Journal::with_start_gen(100);
        assert_eq!(j.append(&JournalRecord::SsdDrain), 100);
        assert_eq!(j.next_gen(), 101);
        // with_start_gen(0) still produces valid generations (>= 1).
        let mut j0 = Journal::with_start_gen(0);
        assert_eq!(j0.append(&JournalRecord::SsdDrain), 1);
    }

    #[test]
    fn explicit_generations_are_wire_identical_and_replayable() {
        // A segment receiving a sparse slice of the global generation
        // sequence must frame records exactly like the serial path and
        // replay them with the generations it was handed.
        let recs = sample_records();
        let gens = [
            3u64, 4, 9, 10, 11, 20, 21, 22, 23, 30, 31, 40, 41, 50, 51, 52, 53,
        ];
        let mut seg = Journal::new();
        for (r, &g) in recs.iter().zip(&gens) {
            seg.append_with_gen(r, g);
        }
        assert_eq!(seg.records(), recs.len() as u64);
        assert_eq!(seg.next_gen(), 54, "counter advanced past the max gen");
        let (replayed, stats) = Journal::replay(seg.bytes());
        assert!(!stats.torn_tail && !stats.corrupt);
        for (i, (gen, rec)) in replayed.iter().enumerate() {
            assert_eq!(*gen, gens[i]);
            assert_eq!(*rec, recs[i]);
        }
        // Same record, same gen => same bytes as the implicit path.
        let mut a = Journal::with_start_gen(7);
        a.append(&JournalRecord::SsdDrain);
        let mut b = Journal::new();
        b.append_with_gen(&JournalRecord::SsdDrain, 7);
        assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn empty_image_replays_clean() {
        let (replayed, stats) = Journal::replay(&[]);
        assert!(replayed.is_empty());
        assert_eq!(stats, ReplayStats::default());
        assert!(Journal::new().is_empty());
    }
}
