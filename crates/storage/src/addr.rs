//! Block addressing.
//!
//! Both the guest page cache and the hypervisor cache index file data at
//! page granularity by `(file, block-offset)` — exactly the key the Linux
//! cleancache interface passes down (`inode number`, `page index`).

use std::fmt;

/// The unit of caching, in bytes.
///
/// The paper's implementation caches 4 KiB pages; this reproduction uses a
/// 64 KiB block as the accounting unit so that gigabyte-scale,
/// thousand-second experiments stay tractable (16× fewer simulation
/// events). Every derived quantity — device transfer times, store
/// capacities, throughput — is computed from this constant, so the choice
/// scales the resolution of the model, not its behaviour.
pub const PAGE_SIZE: u64 = 64 * 1024;

/// A file identifier — stands in for the guest inode number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inode{}", self.0)
    }
}

/// The address of one cached page: a file and a page-granularity offset
/// within it.
///
/// # Example
///
/// ```
/// use ddc_storage::{BlockAddr, FileId, PAGE_SIZE};
///
/// let a = BlockAddr::new(FileId(7), 3);
/// assert_eq!(a.byte_offset(), 3 * PAGE_SIZE);
/// assert_eq!(a.next(), BlockAddr::new(FileId(7), 4));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr {
    /// Owning file.
    pub file: FileId,
    /// Page index within the file.
    pub block: u64,
}

impl BlockAddr {
    /// Creates an address from a file and page index.
    pub const fn new(file: FileId, block: u64) -> BlockAddr {
        BlockAddr { file, block }
    }

    /// The byte offset of the page within the file.
    pub const fn byte_offset(self) -> u64 {
        self.block * PAGE_SIZE
    }

    /// The next sequential page of the same file.
    pub const fn next(self) -> BlockAddr {
        BlockAddr {
            file: self.file,
            block: self.block + 1,
        }
    }

    /// Whether `other` is the page immediately following `self` in the same
    /// file — used by devices to detect sequential streams.
    pub fn is_successor_of(self, other: BlockAddr) -> bool {
        self.file == other.file && self.block == other.block + 1
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.block)
    }
}

/// Number of whole pages needed to hold `bytes` bytes.
pub fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_offset_is_page_multiple() {
        let a = BlockAddr::new(FileId(1), 10);
        assert_eq!(a.byte_offset(), 10 * PAGE_SIZE);
    }

    #[test]
    fn next_advances_block_only() {
        let a = BlockAddr::new(FileId(5), 0);
        let b = a.next();
        assert_eq!(b.file, FileId(5));
        assert_eq!(b.block, 1);
        assert!(b.is_successor_of(a));
        assert!(!a.is_successor_of(b));
    }

    #[test]
    fn successor_requires_same_file() {
        let a = BlockAddr::new(FileId(1), 0);
        let b = BlockAddr::new(FileId(2), 1);
        assert!(!b.is_successor_of(a));
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockAddr::new(FileId(3), 9).to_string(), "inode3:9");
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for_bytes(10 * PAGE_SIZE), 10);
    }

    #[test]
    fn ordering_is_file_then_block() {
        let mut v = vec![
            BlockAddr::new(FileId(2), 0),
            BlockAddr::new(FileId(1), 9),
            BlockAddr::new(FileId(1), 2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                BlockAddr::new(FileId(1), 2),
                BlockAddr::new(FileId(1), 9),
                BlockAddr::new(FileId(2), 0),
            ]
        );
    }
}
