//! Per-device service-time models.
//!
//! Service time for one page transfer is `positioning + PAGE_SIZE /
//! bandwidth`, where positioning is charged only on non-sequential access
//! (seek + rotational delay for disks, channel setup for flash, nothing for
//! RAM). Values are calibrated against published device characteristics:
//!
//! * HDD: 7200 rpm SATA — ~8 ms average positioning, ~150 MB/s media rate.
//! * SSD: Kingston SSDNow V300-class SATA — ~90 µs random-read service,
//!   ~450 MB/s sequential read, ~130 µs program (write) latency.
//! * RAM: block copy over the memory bus at ~8 GB/s, no positioning cost.

use ddc_sim::SimDuration;

use crate::PAGE_SIZE;

/// Service-time parameters for a device class.
///
/// # Example
///
/// ```
/// use ddc_storage::LatencyModel;
///
/// let m = LatencyModel::hdd();
/// // A random read pays positioning; a sequential one does not.
/// assert!(m.read(false) > m.read(true));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Positioning cost charged on non-sequential reads.
    pub read_positioning: SimDuration,
    /// Positioning cost charged on non-sequential writes.
    pub write_positioning: SimDuration,
    /// Per-page transfer time for reads.
    pub read_transfer: SimDuration,
    /// Per-page transfer time for writes.
    pub write_transfer: SimDuration,
}

impl LatencyModel {
    /// 7200 rpm SATA hard disk. Positioning reflects short scheduled
    /// seeks under an elevator/NCQ queue (~4 ms), not full-stroke seeks.
    pub fn hdd() -> LatencyModel {
        LatencyModel {
            read_positioning: SimDuration::from_micros(4_000),
            write_positioning: SimDuration::from_micros(4_000),
            read_transfer: transfer_time(150),
            write_transfer: transfer_time(140),
        }
    }

    /// SATA-3 consumer SSD (Kingston SSDNow V300 class, per the paper's
    /// testbed). Per-channel transfer is half the ~500 MB/s SATA link so
    /// that the device's two channels together saturate the link.
    pub fn ssd_sata() -> LatencyModel {
        LatencyModel {
            read_positioning: SimDuration::from_micros(85),
            write_positioning: SimDuration::from_micros(60),
            read_transfer: transfer_time(250),
            write_transfer: transfer_time(230),
        }
    }

    /// Host-RAM page copies (hypervisor memory cache store).
    pub fn ram() -> LatencyModel {
        LatencyModel {
            read_positioning: SimDuration::ZERO,
            write_positioning: SimDuration::ZERO,
            read_transfer: transfer_time(8_000),
            write_transfer: transfer_time(8_000),
        }
    }

    /// Service time for reading one page.
    pub fn read(&self, sequential: bool) -> SimDuration {
        if sequential {
            self.read_transfer
        } else {
            self.read_positioning + self.read_transfer
        }
    }

    /// Service time for writing one page.
    pub fn write(&self, sequential: bool) -> SimDuration {
        if sequential {
            self.write_transfer
        } else {
            self.write_positioning + self.write_transfer
        }
    }
}

/// Per-page transfer time at the given bandwidth in MB/s.
fn transfer_time(mb_per_s: u64) -> SimDuration {
    let bytes_per_s = mb_per_s * 1_000_000;
    SimDuration::from_nanos(PAGE_SIZE * 1_000_000_000 / bytes_per_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_random_reads() {
        let ram = LatencyModel::ram().read(false);
        let ssd = LatencyModel::ssd_sata().read(false);
        let hdd = LatencyModel::hdd().read(false);
        assert!(ram < ssd, "RAM must beat SSD");
        assert!(ssd < hdd, "SSD must beat HDD");
        // The orders of magnitude must be right, not just the ordering.
        assert!(hdd.as_micros() / ssd.as_micros() > 10);
        assert!(ssd.as_nanos() / ram.as_nanos() > 10);
    }

    #[test]
    fn sequential_hdd_reads_avoid_seek() {
        let m = LatencyModel::hdd();
        let random = m.read(false);
        let seq = m.read(true);
        assert!(random.as_micros() > 4_000);
        assert!(seq.as_micros() < 1000);
    }

    #[test]
    fn writes_follow_same_shape() {
        for m in [LatencyModel::hdd(), LatencyModel::ssd_sata()] {
            assert!(m.write(false) > m.write(true));
        }
        let ram = LatencyModel::ram();
        assert_eq!(ram.write(false), ram.write(true));
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // PAGE_SIZE bytes at 100 MB/s.
        let expect = PAGE_SIZE * 1_000_000_000 / 100_000_000;
        assert_eq!(transfer_time(100), SimDuration::from_nanos(expect));
    }

    #[test]
    fn hdd_sequential_throughput_near_media_rate() {
        // Sequential page reads back-to-back should sustain ~150 MB/s.
        let per_page = LatencyModel::hdd().read(true);
        let pages_per_sec = 1e9 / per_page.as_nanos() as f64;
        let mb_per_sec = pages_per_sec * PAGE_SIZE as f64 / 1e6;
        assert!((mb_per_sec - 150.0).abs() < 5.0, "got {mb_per_sec} MB/s");
    }
}
