//! Storage-device models for the DoubleDecker reproduction.
//!
//! The paper's testbed has three storage tiers in the disk-IO path:
//! host RAM (the memory-backed hypervisor cache), a SATA SSD (the SSD-backed
//! hypervisor cache — a 240 GB Kingston SSDNow V300), and a spinning disk
//! behind the virtual disks. This crate models each tier as a service-time
//! distribution in front of an FCFS queue ([`ddc_sim::QueuedResource`]),
//! which is what determines the *relative* performance shapes the paper
//! reports (RAM ≪ SSD ≪ HDD, and contention effects between containers).
//!
//! * [`BlockAddr`] / [`PAGE_SIZE`] — 4 KiB-page block addressing shared by
//!   the guest page cache and the hypervisor cache index,
//! * [`LatencyModel`] — per-device service times for sequential/random
//!   reads and writes,
//! * [`Device`] — a latency model combined with queueing and sequentiality
//!   tracking,
//! * presets: [`Device::hdd`], [`Device::ssd_sata`], [`Device::ram`],
//! * [`Journal`] — a checksummed write-ahead journal for warm-restarting
//!   the SSD-backed hypervisor cache after a crash,
//! * [`ChunkStore`] / [`RemoteBinding`] — a simulated remote chunk store
//!   (object store behind a CDN edge) plus the fault-tolerance stack
//!   (deadlines, seeded retries, hedged reads, circuit breaking, bounded
//!   in-flight with shed-to-miss) the cache engines mount on their miss
//!   path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod device;
mod journal;
mod latency;
mod remote;
pub mod wear;

pub use addr::{pages_for_bytes, BlockAddr, FileId, PAGE_SIZE};
pub use device::{Device, DeviceKind, IoCompletion, IoError};
pub use journal::{Journal, JournalRecord, ReplayStats};
pub use latency::LatencyModel;
pub use remote::{
    AttemptOutcome, ChunkKey, ChunkStore, RemoteBinding, RemoteConfig, RemoteCounters, RemoteError,
    RemoteFetchConfig, RemoteId, RemoteLookup, RemoteRegistry, RemoteTraceEvent,
};
pub use wear::{PoolWear, WearCounters};
