//! Trace capture and replay.
//!
//! Production cache studies are usually driven by block traces rather
//! than synthetic generators. This module defines a simple, serializable
//! trace format ([`Trace`], [`TraceRecord`]) and a [`TraceReplayer`]
//! workload thread that plays a trace against a container, either paced
//! by the recorded timestamps (open loop) or back-to-back (closed loop).
//!
//! Traces use container-local file ids; the replayer maps them into the
//! target VM's namespace, so one trace can drive containers in different
//! VMs.

use ddc_cleancache::VmId;
use ddc_guest::CgroupId;
use ddc_hypervisor::{vm_file, Host};
use ddc_json::{Json, JsonError};
use ddc_metrics::OpsRecorder;
use ddc_sim::{SimDuration, SimTime};
use ddc_storage::{BlockAddr, PAGE_SIZE};

/// One traced operation (container-local file ids).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Read one block of a file.
    Read {
        /// Container-local file id.
        file: u64,
        /// Block index within the file.
        block: u64,
    },
    /// Write one block of a file.
    Write {
        /// Container-local file id.
        file: u64,
        /// Block index within the file.
        block: u64,
    },
    /// Fsync a file.
    Fsync {
        /// Container-local file id.
        file: u64,
    },
    /// Delete a file.
    Delete {
        /// Container-local file id.
        file: u64,
    },
    /// Touch one anonymous page.
    AnonTouch {
        /// Page index within the container's anonymous reservation.
        page: u64,
    },
}

/// One timestamped trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Microseconds since trace start.
    pub at_micros: u64,
    /// The operation.
    pub op: TraceOp,
}

/// How the replayer schedules records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayPacing {
    /// Honour the recorded inter-arrival gaps (open loop). If the system
    /// falls behind, records are issued as fast as possible until caught
    /// up (no coordinated omission).
    Timestamped,
    /// Ignore timestamps: issue each record as soon as the previous one
    /// completes (closed loop).
    ClosedLoop,
}

/// A replayable operation trace.
///
/// # Example
///
/// ```
/// use ddc_workloads::{Trace, TraceOp, TraceRecord};
///
/// let mut trace = Trace::new();
/// trace.push(0, TraceOp::Read { file: 1, block: 0 });
/// trace.push(100, TraceOp::Write { file: 1, block: 0 });
/// let json = trace.to_json();
/// let back = Trace::from_json(&json).unwrap();
/// assert_eq!(back.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a record. Timestamps must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at_micros` goes backwards.
    pub fn push(&mut self, at_micros: u64, op: TraceOp) {
        debug_assert!(
            self.records.last().is_none_or(|r| r.at_micros <= at_micros),
            "trace records must be time-ordered"
        );
        self.records.push(TraceRecord { at_micros, op });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Largest anonymous page index referenced (for sizing the
    /// container's anonymous reservation before replay).
    pub fn max_anon_page(&self) -> Option<u64> {
        self.records
            .iter()
            .filter_map(|r| match r.op {
                TraceOp::AnonTouch { page } => Some(page),
                _ => None,
            })
            .max()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        let records = self
            .records
            .iter()
            .map(|r| {
                let (kind, fields) = match r.op {
                    TraceOp::Read { file, block } => {
                        ("read", vec![("file", file), ("block", block)])
                    }
                    TraceOp::Write { file, block } => {
                        ("write", vec![("file", file), ("block", block)])
                    }
                    TraceOp::Fsync { file } => ("fsync", vec![("file", file)]),
                    TraceOp::Delete { file } => ("delete", vec![("file", file)]),
                    TraceOp::AnonTouch { page } => ("anon_touch", vec![("page", page)]),
                };
                let mut rec = Json::object();
                rec.set("at_micros", r.at_micros);
                rec.set("op", kind);
                for (name, value) in fields {
                    rec.set(name, value);
                }
                rec
            })
            .collect();
        let mut root = Json::object();
        root.set("records", Json::Arr(records));
        root.to_string_compact()
    }

    /// Parses a JSON trace.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Trace, JsonError> {
        let bad = |message: &str| JsonError {
            message: message.to_owned(),
            offset: 0,
        };
        let root = Json::parse(json)?;
        let records = root
            .get("records")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("expected top-level \"records\" array"))?;
        let mut trace = Trace::new();
        for rec in records {
            let field = |name: &str| {
                rec.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(&format!("record needs integer {name:?}")))
            };
            let op = match rec.get("op").and_then(Json::as_str) {
                Some("read") => TraceOp::Read {
                    file: field("file")?,
                    block: field("block")?,
                },
                Some("write") => TraceOp::Write {
                    file: field("file")?,
                    block: field("block")?,
                },
                Some("fsync") => TraceOp::Fsync {
                    file: field("file")?,
                },
                Some("delete") => TraceOp::Delete {
                    file: field("file")?,
                },
                Some("anon_touch") => TraceOp::AnonTouch {
                    page: field("page")?,
                },
                _ => return Err(bad("record needs a known \"op\" kind")),
            };
            trace.records.push(TraceRecord {
                at_micros: field("at_micros")?,
                op,
            });
        }
        Ok(trace)
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Trace {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

/// A workload thread that replays a [`Trace`] against one container.
#[derive(Debug)]
pub struct TraceReplayer {
    label: String,
    vm: VmId,
    cg: CgroupId,
    trace: Trace,
    pacing: ReplayPacing,
    /// Offset applied to container-local file ids before vm_file mapping.
    file_base: u64,
    next: usize,
    started_at: Option<SimTime>,
    recorder: OpsRecorder,
}

impl TraceReplayer {
    /// Creates a replayer for `trace` bound to a container.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        trace: Trace,
        pacing: ReplayPacing,
    ) -> TraceReplayer {
        TraceReplayer {
            label: label.into(),
            vm,
            cg,
            trace,
            pacing,
            file_base: 1 + (cg.0 as u64) * 1_000_000,
            next: 0,
            started_at: None,
            recorder: OpsRecorder::new(),
        }
    }

    /// Records already replayed.
    pub fn replayed(&self) -> usize {
        self.next
    }

    /// Whether the whole trace has been replayed.
    pub fn is_done(&self) -> bool {
        self.next >= self.trace.len()
    }

    fn addr(&self, file: u64, block: u64) -> BlockAddr {
        BlockAddr::new(vm_file(self.vm, self.file_base + file), block)
    }
}

impl crate::WorkloadThread for TraceReplayer {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        let Some(record) = self.trace.records().get(self.next).copied() else {
            // Trace exhausted: park the thread far in the future.
            return SimTime::MAX;
        };
        let started = *self.started_at.get_or_insert(now);

        // Open-loop pacing: wait for the record's due time if it is still
        // ahead of us.
        if self.pacing == ReplayPacing::Timestamped {
            let due = started + SimDuration::from_micros(record.at_micros);
            if due > now {
                return due;
            }
        }

        self.next += 1;
        let t0 = now;
        let (finish, bytes) = match record.op {
            TraceOp::Read { file, block } => (
                host.read(t0, self.vm, self.cg, self.addr(file, block))
                    .finish,
                PAGE_SIZE,
            ),
            TraceOp::Write { file, block } => (
                host.write(t0, self.vm, self.cg, self.addr(file, block))
                    .finish,
                PAGE_SIZE,
            ),
            TraceOp::Fsync { file } => (
                host.fsync(
                    t0,
                    self.vm,
                    self.cg,
                    vm_file(self.vm, self.file_base + file),
                ),
                0,
            ),
            TraceOp::Delete { file } => {
                host.delete_file(self.vm, self.cg, vm_file(self.vm, self.file_base + file));
                (t0 + SimDuration::from_micros(2), 0)
            }
            TraceOp::AnonTouch { page } => (host.anon_touch(t0, self.vm, self.cg, page), PAGE_SIZE),
        };
        self.recorder.record(finish, bytes, finish - t0);
        finish
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadThread;
    use ddc_cleancache::CachePolicy;
    use ddc_hypercache::CacheConfig;
    use ddc_hypervisor::HostConfig;

    fn setup() -> (Host, VmId, CgroupId) {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
        let vm = host.boot_vm(16, 100);
        let cg = host.create_container(vm, "t", 128, CachePolicy::mem(100));
        (host, vm, cg)
    }

    fn small_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..8u64 {
            t.push(i * 1000, TraceOp::Read { file: 1, block: i });
        }
        t.push(8000, TraceOp::Write { file: 1, block: 0 });
        t.push(9000, TraceOp::Fsync { file: 1 });
        t.push(10_000, TraceOp::Delete { file: 1 });
        t
    }

    #[test]
    fn json_roundtrip() {
        let t = small_trace();
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.len(), 11);
        assert!(!back.is_empty());
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn closed_loop_replays_everything() {
        let (mut host, vm, cg) = setup();
        let mut r = TraceReplayer::new("r", vm, cg, small_trace(), ReplayPacing::ClosedLoop);
        let mut now = SimTime::ZERO;
        while !r.is_done() {
            now = r.step(&mut host, now);
        }
        assert_eq!(r.replayed(), 11);
        assert_eq!(r.recorder().ops(), 11);
        // Exhausted trace parks the thread.
        assert_eq!(r.step(&mut host, now), SimTime::MAX);
    }

    #[test]
    fn timestamped_replay_honours_gaps() {
        let (mut host, vm, cg) = setup();
        let mut trace = Trace::new();
        trace.push(0, TraceOp::Read { file: 1, block: 0 });
        trace.push(500_000, TraceOp::Read { file: 1, block: 0 }); // +0.5 s
        let mut r = TraceReplayer::new("r", vm, cg, trace, ReplayPacing::Timestamped);
        let mut now = SimTime::ZERO;
        // First step issues record 0; second step returns the due time of
        // record 1; third step issues it.
        now = r.step(&mut host, now);
        let due = r.step(&mut host, now);
        assert_eq!(due, SimTime::ZERO + SimDuration::from_micros(500_000));
        let fin = r.step(&mut host, due);
        assert!(fin >= due);
        assert!(r.is_done());
    }

    #[test]
    fn anon_records_drive_anonymous_memory() {
        let (mut host, vm, cg) = setup();
        let mut trace = Trace::new();
        for p in 0..16u64 {
            trace.push(p, TraceOp::AnonTouch { page: p });
        }
        host.anon_reserve(vm, cg, trace.max_anon_page().unwrap() + 1);
        let mut r = TraceReplayer::new("r", vm, cg, trace, ReplayPacing::ClosedLoop);
        let mut now = SimTime::ZERO;
        while !r.is_done() {
            now = r.step(&mut host, now);
        }
        assert_eq!(host.container_mem_stats(vm, cg).anon_resident_pages, 16);
    }

    #[test]
    fn same_trace_two_containers_identical_behaviour() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
        let vm = host.boot_vm(32, 100);
        let c1 = host.create_container(vm, "a", 128, CachePolicy::mem(50));
        let c2 = host.create_container(vm, "b", 128, CachePolicy::mem(50));
        let t = small_trace();
        let mut r1 = TraceReplayer::new("a", vm, c1, t.clone(), ReplayPacing::ClosedLoop);
        let mut r2 = TraceReplayer::new("b", vm, c2, t, ReplayPacing::ClosedLoop);
        let mut n1 = SimTime::ZERO;
        while !r1.is_done() {
            n1 = r1.step(&mut host, n1);
        }
        let mut n2 = SimTime::ZERO;
        while !r2.is_done() {
            n2 = r2.step(&mut host, n2);
        }
        assert_eq!(r1.recorder().ops(), r2.recorder().ops());
        // The second replay benefits from a warmed shared disk/caches of
        // its own container only: both containers hold their own copies.
        let s1 = host.container_mem_stats(vm, c1);
        let s2 = host.container_mem_stats(vm, c2);
        assert_eq!(s1.page_cache_pages, s2.page_cache_pages);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = (0..4u64)
            .map(|i| TraceRecord {
                at_micros: i,
                op: TraceOp::Read { file: 0, block: i },
            })
            .collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.max_anon_page(), None);
    }
}
