//! The workload-thread abstraction and shared IO helpers.

use ddc_cleancache::VmId;
use ddc_guest::CgroupId;
use ddc_hypervisor::Host;
use ddc_metrics::OpsRecorder;
use ddc_sim::SimTime;
use ddc_storage::{FileId, PAGE_SIZE};

use crate::FileSet;

/// One closed-loop workload thread.
///
/// The experiment runner repeatedly calls [`step`](Self::step) on the
/// thread whose return time is earliest, which yields a deterministic
/// discrete-event interleaving of all threads on the host.
pub trait WorkloadThread {
    /// Display label, e.g. `"web/vm1/t0"`.
    fn label(&self) -> &str;

    /// The VM this thread runs in.
    fn vm(&self) -> VmId;

    /// The container (cgroup) this thread is charged to.
    fn cgroup(&self) -> CgroupId;

    /// Performs one application operation beginning at `now`; returns the
    /// instant the thread is next runnable (the operation's completion
    /// plus any think time).
    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime;

    /// Completed-operation metrics.
    fn recorder(&self) -> &OpsRecorder;

    /// Mutable access to the metrics recorder (for opening measurement
    /// windows after warm-up).
    fn recorder_mut(&mut self) -> &mut OpsRecorder;
}

/// Reads a whole file sequentially; returns the finish time.
pub(crate) fn read_whole_file(
    host: &mut Host,
    vm: VmId,
    cg: CgroupId,
    fs: &FileSet,
    index: usize,
    now: SimTime,
) -> SimTime {
    let mut t = now;
    for addr in fs.blocks(index) {
        t = host.read(t, vm, cg, addr).finish;
    }
    t
}

/// Writes a whole file sequentially (no fsync); returns the finish time.
pub(crate) fn write_whole_file(
    host: &mut Host,
    vm: VmId,
    cg: CgroupId,
    fs: &FileSet,
    index: usize,
    now: SimTime,
) -> SimTime {
    let mut t = now;
    for addr in fs.blocks(index) {
        t = host.write(t, vm, cg, addr).finish;
    }
    t
}

/// Appends `blocks` blocks to a (conceptually growing) log file; returns
/// the finish time. The log wraps at 64 blocks (4 MiB) so its cache
/// footprint stays bounded, like a rotated log.
pub(crate) fn append_log(
    host: &mut Host,
    vm: VmId,
    cg: CgroupId,
    log: FileId,
    cursor: &mut u64,
    blocks: u64,
    now: SimTime,
) -> SimTime {
    let mut t = now;
    for _ in 0..blocks {
        let addr = ddc_storage::BlockAddr::new(log, *cursor % 64);
        *cursor += 1;
        t = host.write(t, vm, cg, addr).finish;
    }
    t
}

/// Bytes moved by `blocks` blocks.
pub(crate) fn blocks_to_bytes(blocks: u64) -> u64 {
    blocks * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::CachePolicy;
    use ddc_hypercache::CacheConfig;
    use ddc_hypervisor::{vm_file, HostConfig};
    use ddc_sim::SimRng;

    fn setup() -> (Host, VmId, CgroupId) {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(1024)));
        let vm = host.boot_vm(16, 100);
        let cg = host.create_container(vm, "t", 128, CachePolicy::mem(100));
        (host, vm, cg)
    }

    #[test]
    fn read_whole_file_advances_time() {
        let (mut host, vm, cg) = setup();
        let mut rng = SimRng::new(1);
        let fs = FileSet::generate(vm, 0, 4, 4, &mut rng);
        let fin = read_whole_file(&mut host, vm, cg, &fs, 0, SimTime::ZERO);
        assert!(fin > SimTime::ZERO);
        // Second read of the same file is page-cache fast.
        let fin2 = read_whole_file(&mut host, vm, cg, &fs, 0, fin);
        assert!(fin2 - fin < fin - SimTime::ZERO);
    }

    #[test]
    fn write_then_read_hits_cache() {
        let (mut host, vm, cg) = setup();
        let mut rng = SimRng::new(2);
        let fs = FileSet::generate(vm, 0, 2, 3, &mut rng);
        let fin = write_whole_file(&mut host, vm, cg, &fs, 1, SimTime::ZERO);
        let fin2 = read_whole_file(&mut host, vm, cg, &fs, 1, fin);
        // All page-cache hits: microseconds, not milliseconds.
        assert!((fin2 - fin).as_micros() < 1000);
    }

    #[test]
    fn append_log_wraps_cursor() {
        let (mut host, vm, cg) = setup();
        let log = vm_file(vm, 999);
        let mut cursor = 63;
        let fin = append_log(&mut host, vm, cg, log, &mut cursor, 2, SimTime::ZERO);
        assert_eq!(cursor, 65);
        assert!(fin > SimTime::ZERO);
    }

    #[test]
    fn blocks_to_bytes_scales() {
        assert_eq!(blocks_to_bytes(2), 2 * PAGE_SIZE);
    }
}
