//! Zipfian sampling for skewed popularity distributions.

use ddc_sim::SimRng;

/// A Zipf(θ) sampler over `0..n` using a precomputed CDF and binary
/// search. θ = 0 degenerates to uniform; θ ≈ 0.99 is the YCSB default.
///
/// # Example
///
/// ```
/// use ddc_workloads::Zipf;
/// use ddc_sim::SimRng;
///
/// let z = Zipf::new(100, 0.99);
/// let mut rng = SimRng::new(1);
/// let v = z.sample(&mut rng);
/// assert!(v < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "zipf skew must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one sample in `0..n` (0 is the most popular rank).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_domain() {
        let z = Zipf::new(10, 0.99);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
        assert_eq!(z.n(), 10);
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::new(5);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 of Zipf(1.0, n=100) has probability ~1/H(100) ≈ 0.19.
        let p0 = counts[0] as f64 / 20_000.0;
        assert!((p0 - 0.19).abs() < 0.03, "p0={p0}");
    }

    #[test]
    fn zero_theta_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SimRng::new(7);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            let p = c as f64 / 40_000.0;
            assert!((p - 0.25).abs() < 0.02, "p={p}");
        }
    }

    #[test]
    fn single_element_domain() {
        let z = Zipf::new(1, 0.99);
        let mut rng = SimRng::new(9);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
