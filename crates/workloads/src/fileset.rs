//! File sets: the collections of files a Filebench personality operates
//! over.

use ddc_cleancache::VmId;
use ddc_hypervisor::vm_file;
use ddc_sim::SimRng;
use ddc_storage::{BlockAddr, FileId};

/// A set of files with per-file sizes (in blocks), namespaced to a VM.
///
/// File sizes are drawn from a gamma-ish distribution around the mean
/// (Filebench uses a gamma with shape 1.5 by default); here each size is
/// `max(1, mean/2 + U(0, mean))` which preserves the mean and spread
/// without heavy machinery.
///
/// # Example
///
/// ```
/// use ddc_workloads::FileSet;
/// use ddc_cleancache::VmId;
/// use ddc_sim::SimRng;
///
/// let mut rng = SimRng::new(1);
/// let fs = FileSet::generate(VmId(0), 100, 10, 4, &mut rng);
/// assert_eq!(fs.len(), 10);
/// assert!(fs.total_blocks() >= 10);
/// ```
#[derive(Clone, Debug)]
pub struct FileSet {
    vm: VmId,
    base_inode: u64,
    sizes: Vec<u32>,
    /// Per-slot inode override after a replace (delete-and-recreate).
    overrides: Vec<Option<u64>>,
    next_inode: u64,
}

impl FileSet {
    /// Generates `count` files starting at inode `base_inode` with mean
    /// size `mean_blocks`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_blocks` is zero.
    pub fn generate(
        vm: VmId,
        base_inode: u64,
        count: usize,
        mean_blocks: u32,
        rng: &mut SimRng,
    ) -> FileSet {
        assert!(mean_blocks > 0, "files must have at least one block");
        let sizes = (0..count)
            .map(|_| Self::draw_size(mean_blocks, rng))
            .collect();
        FileSet {
            vm,
            base_inode,
            overrides: vec![None; count],
            sizes,
            next_inode: count as u64,
        }
    }

    fn draw_size(mean_blocks: u32, rng: &mut SimRng) -> u32 {
        if mean_blocks == 1 {
            return 1;
        }
        let lo = (mean_blocks / 2).max(1) as u64;
        let hi = lo + mean_blocks as u64;
        rng.range_u64(lo, hi) as u32
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Total size across all files, in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.sizes.iter().map(|&s| s as u64).sum()
    }

    /// The [`FileId`] of the file at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn file(&self, index: usize) -> FileId {
        assert!(index < self.sizes.len(), "file index out of range");
        vm_file(self.vm, self.base_inode + self.inode_slot(index))
    }

    /// Size of the file at `index`, in blocks.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn size_blocks(&self, index: usize) -> u32 {
        self.sizes[index]
    }

    /// Addresses of every block of the file at `index`, in order.
    pub fn blocks(&self, index: usize) -> impl Iterator<Item = BlockAddr> + '_ {
        let file = self.file(index);
        (0..self.sizes[index] as u64).map(move |b| BlockAddr::new(file, b))
    }

    /// A uniformly random file index.
    pub fn pick_uniform(&self, rng: &mut SimRng) -> usize {
        rng.range_usize(0, self.sizes.len())
    }

    /// Replaces the file at `index` with a fresh one (new inode, new
    /// size), modelling delete-and-recreate. Returns the *old* [`FileId`]
    /// so the caller can invalidate it.
    pub fn replace(&mut self, index: usize, mean_blocks: u32, rng: &mut SimRng) -> FileId {
        let old = self.file(index);
        self.sizes[index] = Self::draw_size(mean_blocks, rng);
        // Give the slot a fresh inode by remembering a per-slot override.
        self.overrides[index] = Some(self.next_inode);
        self.next_inode += 1;
        old
    }

    fn inode_slot(&self, index: usize) -> u64 {
        match self.overrides.get(index).copied().flatten() {
            Some(inode) => inode,
            None => index as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn generate_respects_count_and_mean() {
        let mut r = rng();
        let fs = FileSet::generate(VmId(1), 0, 200, 8, &mut r);
        assert_eq!(fs.len(), 200);
        let mean = fs.total_blocks() as f64 / 200.0;
        assert!((mean - 8.0).abs() < 1.5, "mean {mean} should be near 8");
        for i in 0..200 {
            assert!(fs.size_blocks(i) >= 1);
        }
    }

    #[test]
    fn mean_one_gives_single_block_files() {
        let mut r = rng();
        let fs = FileSet::generate(VmId(1), 0, 50, 1, &mut r);
        assert_eq!(fs.total_blocks(), 50);
    }

    #[test]
    fn file_ids_unique_and_namespaced() {
        let mut r = rng();
        let fs1 = FileSet::generate(VmId(1), 0, 10, 2, &mut r);
        let fs2 = FileSet::generate(VmId(2), 0, 10, 2, &mut r);
        assert_ne!(fs1.file(0), fs2.file(0), "different VMs never alias");
        assert_ne!(fs1.file(0), fs1.file(1));
    }

    #[test]
    fn blocks_iterate_in_order() {
        let mut r = rng();
        let fs = FileSet::generate(VmId(1), 5, 3, 4, &mut r);
        let blocks: Vec<BlockAddr> = fs.blocks(0).collect();
        assert_eq!(blocks.len(), fs.size_blocks(0) as usize);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.block, i as u64);
            assert_eq!(b.file, fs.file(0));
        }
    }

    #[test]
    fn replace_changes_inode() {
        let mut r = rng();
        let mut fs = FileSet::generate(VmId(1), 0, 5, 4, &mut r);
        let before = fs.file(2);
        let old = fs.replace(2, 4, &mut r);
        assert_eq!(old, before);
        assert_ne!(fs.file(2), before, "slot gets a fresh inode");
        // Other slots unaffected.
        assert_eq!(fs.file(1), fs.file(1));
        // Replacing again yields yet another inode.
        let second = fs.file(2);
        fs.replace(2, 4, &mut r);
        assert_ne!(fs.file(2), second);
    }

    #[test]
    fn pick_uniform_in_range() {
        let mut r = rng();
        let fs = FileSet::generate(VmId(1), 0, 7, 2, &mut r);
        for _ in 0..100 {
            assert!(fs.pick_uniform(&mut r) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn file_index_out_of_range() {
        let mut r = rng();
        let fs = FileSet::generate(VmId(1), 0, 3, 2, &mut r);
        fs.file(3);
    }
}
