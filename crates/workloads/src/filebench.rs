//! Filebench-personality workload threads.
//!
//! Each model reproduces the *flowlet* of the corresponding Filebench
//! personality (the per-thread operation loop), parameterized like the
//! `.f` profiles: fileset size, mean file size, operations per loop.
//! Defaults are scaled so that gigabyte-scale paper scenarios map onto
//! the 64 KiB-block simulation (see DESIGN.md).

use ddc_cleancache::VmId;
use ddc_guest::CgroupId;
use ddc_hypervisor::{vm_file, Host};
use ddc_metrics::OpsRecorder;
use ddc_sim::{SimDuration, SimRng, SimTime};
use ddc_storage::FileId;

use crate::thread::{append_log, blocks_to_bytes, read_whole_file, write_whole_file};
use crate::{FileSet, WorkloadThread, Zipf};

/// Inode-space layout for one container's filesets, so profiles never
/// collide within a VM.
fn base_inode(cg: CgroupId) -> u64 {
    1 + (cg.0 as u64) * 1_000_000
}

// ---------------------------------------------------------------------
// Webserver
// ---------------------------------------------------------------------

/// Configuration of the [`Webserver`] personality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WebConfig {
    /// Number of files served.
    pub files: usize,
    /// Mean file size in blocks.
    pub mean_file_blocks: u32,
    /// Whole files read per loop iteration (Filebench default: 10).
    pub reads_per_loop: u32,
    /// Popularity skew across files (0 = uniform).
    pub zipf_theta: f64,
    /// Client think time between loop iterations (models the network
    /// round trips of the served requests).
    pub think_time: SimDuration,
}

impl Default for WebConfig {
    fn default() -> WebConfig {
        WebConfig {
            files: 1000,
            mean_file_blocks: 2,
            reads_per_loop: 10,
            zipf_theta: 0.7,
            think_time: SimDuration::from_millis(1),
        }
    }
}

/// The Filebench *webserver* personality: each loop serves 10 whole-file
/// reads (Zipf-popular) and appends one block to the access log.
#[derive(Debug)]
pub struct Webserver {
    label: String,
    vm: VmId,
    cg: CgroupId,
    config: WebConfig,
    fileset: FileSet,
    zipf: Zipf,
    log: FileId,
    log_cursor: u64,
    rng: SimRng,
    recorder: OpsRecorder,
}

impl Webserver {
    /// Creates one webserver thread. The fileset is derived
    /// deterministically from `(vm, cg, config)`, so all threads of the
    /// same container share the same files; `seed` only drives the
    /// thread's own access pattern.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        config: WebConfig,
        seed: u64,
    ) -> Webserver {
        let mut set_rng = SimRng::new(0x5745_4253_4554 ^ ((vm.0 as u64) << 32) ^ cg.0 as u64);
        let fileset = FileSet::generate(
            vm,
            base_inode(cg),
            config.files,
            config.mean_file_blocks,
            &mut set_rng,
        );
        Webserver {
            label: label.into(),
            vm,
            cg,
            zipf: Zipf::new(config.files, config.zipf_theta),
            fileset,
            log: vm_file(vm, base_inode(cg) + 900_000),
            log_cursor: 0,
            rng: SimRng::new(seed),
            recorder: OpsRecorder::new(),
            config,
        }
    }
}

impl WorkloadThread for Webserver {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        let mut t = now;
        let mut blocks = 0u64;
        for _ in 0..self.config.reads_per_loop {
            let idx = self.zipf.sample(&mut self.rng);
            t = read_whole_file(host, self.vm, self.cg, &self.fileset, idx, t);
            blocks += self.fileset.size_blocks(idx) as u64;
        }
        t = append_log(host, self.vm, self.cg, self.log, &mut self.log_cursor, 1, t);
        blocks += 1;
        self.recorder.record(t, blocks_to_bytes(blocks), t - now);
        t + self.config.think_time
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

// ---------------------------------------------------------------------
// Proxycache
// ---------------------------------------------------------------------

/// Configuration of the [`Proxycache`] personality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProxyConfig {
    /// Number of cached objects (files).
    pub files: usize,
    /// Mean object size in blocks.
    pub mean_file_blocks: u32,
    /// Whole-file reads per loop (Filebench webproxy: 5).
    pub reads_per_loop: u32,
    /// One in `turnover_period` loops replaces an object (cache miss at
    /// the proxy → fetch from origin).
    pub turnover_period: u32,
    /// Client think time between loop iterations.
    pub think_time: SimDuration,
}

impl Default for ProxyConfig {
    fn default() -> ProxyConfig {
        ProxyConfig {
            files: 1000,
            mean_file_blocks: 2,
            reads_per_loop: 5,
            turnover_period: 8,
            think_time: SimDuration::from_millis(10),
        }
    }
}

/// The Filebench *webproxy* personality: each loop replaces one cached
/// object (delete + create + write) and reads five others, plus a log
/// append — a bounded cache with turnover.
#[derive(Debug)]
pub struct Proxycache {
    label: String,
    vm: VmId,
    cg: CgroupId,
    config: ProxyConfig,
    fileset: FileSet,
    log: FileId,
    log_cursor: u64,
    loops: u64,
    rng: SimRng,
    recorder: OpsRecorder,
}

impl Proxycache {
    /// Creates one proxycache thread.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        config: ProxyConfig,
        seed: u64,
    ) -> Proxycache {
        let mut set_rng = SimRng::new(0x50_524f_5859 ^ ((vm.0 as u64) << 32) ^ cg.0 as u64);
        let fileset = FileSet::generate(
            vm,
            base_inode(cg),
            config.files,
            config.mean_file_blocks,
            &mut set_rng,
        );
        Proxycache {
            label: label.into(),
            vm,
            cg,
            fileset,
            log: vm_file(vm, base_inode(cg) + 900_000),
            log_cursor: 0,
            loops: 0,
            rng: SimRng::new(seed),
            recorder: OpsRecorder::new(),
            config,
        }
    }
}

impl WorkloadThread for Proxycache {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        let mut t = now;
        let mut blocks = 0u64;
        self.loops += 1;
        // Object turnover (proxy cache miss): delete one object, fetch a
        // fresh copy from the origin (write it).
        if self
            .loops
            .is_multiple_of(self.config.turnover_period as u64)
        {
            let victim = self.fileset.pick_uniform(&mut self.rng);
            let old = self
                .fileset
                .replace(victim, self.config.mean_file_blocks, &mut self.rng);
            host.delete_file(self.vm, self.cg, old);
            t = write_whole_file(host, self.vm, self.cg, &self.fileset, victim, t);
            blocks += self.fileset.size_blocks(victim) as u64;
        }
        // Serve cached objects.
        for _ in 0..self.config.reads_per_loop {
            let idx = self.fileset.pick_uniform(&mut self.rng);
            t = read_whole_file(host, self.vm, self.cg, &self.fileset, idx, t);
            blocks += self.fileset.size_blocks(idx) as u64;
        }
        t = append_log(host, self.vm, self.cg, self.log, &mut self.log_cursor, 1, t);
        blocks += 1;
        self.recorder.record(t, blocks_to_bytes(blocks), t - now);
        t + self.config.think_time
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

// ---------------------------------------------------------------------
// Mail server (varmail)
// ---------------------------------------------------------------------

/// Configuration of the [`MailServer`] personality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MailConfig {
    /// Number of mail files.
    pub files: usize,
    /// Mean mail size in blocks.
    pub mean_file_blocks: u32,
}

impl Default for MailConfig {
    fn default() -> MailConfig {
        MailConfig {
            files: 1000,
            mean_file_blocks: 1,
        }
    }
}

/// The Filebench *varmail* personality: delete / create-write-**fsync** /
/// read / append-**fsync** / read — small files and frequent synchronous
/// durability, so the disk (not the cache) dominates.
#[derive(Debug)]
pub struct MailServer {
    label: String,
    vm: VmId,
    cg: CgroupId,
    config: MailConfig,
    fileset: FileSet,
    rng: SimRng,
    recorder: OpsRecorder,
}

impl MailServer {
    /// Creates one mail-server thread.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        config: MailConfig,
        seed: u64,
    ) -> MailServer {
        let mut set_rng = SimRng::new(0x4d41_494c ^ ((vm.0 as u64) << 32) ^ cg.0 as u64);
        let fileset = FileSet::generate(
            vm,
            base_inode(cg),
            config.files,
            config.mean_file_blocks,
            &mut set_rng,
        );
        MailServer {
            label: label.into(),
            vm,
            cg,
            fileset,
            rng: SimRng::new(seed),
            recorder: OpsRecorder::new(),
            config,
        }
    }
}

impl WorkloadThread for MailServer {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        let mut t = now;
        let mut blocks = 0u64;
        // Delete one mail.
        let victim = self.fileset.pick_uniform(&mut self.rng);
        let old = self
            .fileset
            .replace(victim, self.config.mean_file_blocks, &mut self.rng);
        host.delete_file(self.vm, self.cg, old);
        // Deliver a new mail: write + fsync.
        t = write_whole_file(host, self.vm, self.cg, &self.fileset, victim, t);
        t = host.fsync(t, self.vm, self.cg, self.fileset.file(victim));
        blocks += self.fileset.size_blocks(victim) as u64;
        // Read a mail.
        let idx = self.fileset.pick_uniform(&mut self.rng);
        t = read_whole_file(host, self.vm, self.cg, &self.fileset, idx, t);
        blocks += self.fileset.size_blocks(idx) as u64;
        // Append to another mail + fsync (e.g. flag update).
        let idx2 = self.fileset.pick_uniform(&mut self.rng);
        let addr = ddc_storage::BlockAddr::new(self.fileset.file(idx2), 0);
        t = host.write(t, self.vm, self.cg, addr).finish;
        t = host.fsync(t, self.vm, self.cg, self.fileset.file(idx2));
        blocks += 1;
        // Read another mail.
        let idx3 = self.fileset.pick_uniform(&mut self.rng);
        t = read_whole_file(host, self.vm, self.cg, &self.fileset, idx3, t);
        blocks += self.fileset.size_blocks(idx3) as u64;
        self.recorder.record(t, blocks_to_bytes(blocks), t - now);
        t
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

// ---------------------------------------------------------------------
// Videoserver
// ---------------------------------------------------------------------

/// Configuration of the [`VideoServer`] personality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VideoConfig {
    /// Number of videos in the actively-served set.
    pub active_videos: usize,
    /// Mean video size in blocks (large: sequential streams).
    pub mean_video_blocks: u32,
    /// One in `writer_period` loops writes a new video instead of serving
    /// one (the Filebench profile has a slow writer thread).
    pub writer_period: u32,
    /// Popularity skew across the active set.
    pub zipf_theta: f64,
}

impl Default for VideoConfig {
    fn default() -> VideoConfig {
        VideoConfig {
            active_videos: 32,
            mean_video_blocks: 128, // 8 MiB videos
            writer_period: 64,
            zipf_theta: 0.8,
        }
    }
}

/// The Filebench *videoserver* personality: large sequential whole-file
/// reads over a small hot set (plus occasional ingest of a new video) —
/// the cache-dominating, high-rate workload of the paper's Fig. 8/9.
///
/// Videos are streamed in read-ahead-sized chunks (one chunk per
/// scheduler step), so device occupancy interleaves with other workload
/// threads at realistic granularity instead of holding the device queue
/// for a whole multi-hundred-millisecond video.
#[derive(Debug)]
pub struct VideoServer {
    label: String,
    vm: VmId,
    cg: CgroupId,
    config: VideoConfig,
    fileset: FileSet,
    zipf: Zipf,
    loops: u64,
    /// In-progress stream: (file index, next block, stream start, bytes).
    stream: Option<(usize, u64, SimTime)>,
    rng: SimRng,
    recorder: OpsRecorder,
}

/// Blocks streamed per scheduler step (a 512 KiB read-ahead burst).
const VIDEO_CHUNK_BLOCKS: u64 = 8;

impl VideoServer {
    /// Creates one videoserver thread.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        config: VideoConfig,
        seed: u64,
    ) -> VideoServer {
        let mut set_rng = SimRng::new(0x0056_4944_454f ^ ((vm.0 as u64) << 32) ^ cg.0 as u64);
        let fileset = FileSet::generate(
            vm,
            base_inode(cg),
            config.active_videos,
            config.mean_video_blocks,
            &mut set_rng,
        );
        VideoServer {
            label: label.into(),
            vm,
            cg,
            zipf: Zipf::new(config.active_videos, config.zipf_theta),
            fileset,
            loops: 0,
            stream: None,
            rng: SimRng::new(seed),
            recorder: OpsRecorder::new(),
            config,
        }
    }
}

impl WorkloadThread for VideoServer {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        // Continue an in-progress stream, one read-ahead chunk per step.
        if let Some((idx, next_block, started)) = self.stream.take() {
            let file = self.fileset.file(idx);
            let size = self.fileset.size_blocks(idx) as u64;
            let chunk_end = (next_block + VIDEO_CHUNK_BLOCKS).min(size);
            let mut t = now;
            for b in next_block..chunk_end {
                t = host
                    .read(t, self.vm, self.cg, ddc_storage::BlockAddr::new(file, b))
                    .finish;
            }
            if chunk_end < size {
                self.stream = Some((idx, chunk_end, started));
            } else {
                // Video complete: one served operation.
                self.recorder.record(t, blocks_to_bytes(size), t - started);
            }
            return t;
        }

        self.loops += 1;
        if self.loops.is_multiple_of(self.config.writer_period as u64) {
            // Ingest: replace one video with fresh content (page-cache
            // writes; writeback is asynchronous).
            let t0 = now;
            let victim = self.fileset.pick_uniform(&mut self.rng);
            let old = self
                .fileset
                .replace(victim, self.config.mean_video_blocks, &mut self.rng);
            host.delete_file(self.vm, self.cg, old);
            let t = write_whole_file(host, self.vm, self.cg, &self.fileset, victim, t0);
            let blocks = self.fileset.size_blocks(victim) as u64;
            self.recorder.record(t, blocks_to_bytes(blocks), t - t0);
            t
        } else {
            // Start serving a new video; the chunks run on later steps.
            let idx = self.zipf.sample(&mut self.rng);
            self.stream = Some((idx, 0, now));
            now + SimDuration::from_micros(10) // request setup
        }
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::CachePolicy;
    use ddc_hypercache::CacheConfig;
    use ddc_hypervisor::HostConfig;

    fn host() -> Host {
        Host::new(HostConfig::new(CacheConfig::mem_only(4096)))
    }

    fn run_thread(t: &mut dyn WorkloadThread, host: &mut Host, steps: u32) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now = t.step(host, now);
        }
        now
    }

    #[test]
    fn webserver_makes_progress_and_records() {
        let mut h = host();
        let vm = h.boot_vm(64, 100);
        let cg = h.create_container(vm, "web", 512, CachePolicy::mem(100));
        let config = WebConfig {
            files: 50,
            ..WebConfig::default()
        };
        let mut web = Webserver::new("web/t0", vm, cg, config, 1);
        let fin = run_thread(&mut web, &mut h, 20);
        assert!(fin > SimTime::ZERO);
        assert_eq!(web.recorder().ops(), 20);
        assert!(web.recorder().bytes() > 0);
        assert_eq!(web.vm(), vm);
        assert_eq!(web.cgroup(), cg);
        assert_eq!(web.label(), "web/t0");
    }

    #[test]
    fn webserver_same_seed_same_behaviour() {
        let mut h1 = host();
        let vm1 = h1.boot_vm(64, 100);
        let cg1 = h1.create_container(vm1, "w", 512, CachePolicy::mem(100));
        let mut h2 = host();
        let vm2 = h2.boot_vm(64, 100);
        let cg2 = h2.create_container(vm2, "w", 512, CachePolicy::mem(100));
        let config = WebConfig {
            files: 20,
            ..WebConfig::default()
        };
        let mut a = Webserver::new("a", vm1, cg1, config, 7);
        let mut b = Webserver::new("b", vm2, cg2, config, 7);
        let fa = run_thread(&mut a, &mut h1, 10);
        let fb = run_thread(&mut b, &mut h2, 10);
        assert_eq!(fa, fb, "same seed must give identical virtual time");
    }

    #[test]
    fn proxycache_turns_over_objects() {
        let mut h = host();
        let vm = h.boot_vm(64, 100);
        let cg = h.create_container(vm, "proxy", 512, CachePolicy::mem(100));
        let config = ProxyConfig {
            files: 20,
            ..ProxyConfig::default()
        };
        let mut proxy = Proxycache::new("proxy/t0", vm, cg, config, 2);
        run_thread(&mut proxy, &mut h, 30);
        assert_eq!(proxy.recorder().ops(), 30);
        // Turnover means some dirty data was produced.
        assert!(h.container_mem_stats(vm, cg).page_cache_pages > 0);
    }

    #[test]
    fn mail_fsyncs_dominate_latency() {
        let mut h = host();
        let vm = h.boot_vm(64, 100);
        let cg = h.create_container(vm, "mail", 512, CachePolicy::mem(100));
        let config = MailConfig {
            files: 50,
            ..MailConfig::default()
        };
        let mut mail = MailServer::new("mail/t0", vm, cg, config, 3);
        run_thread(&mut mail, &mut h, 20);
        // fsync forces synchronous disk writes: mean latency must be in
        // disk territory (milliseconds).
        let mean = mail.recorder().latency().mean();
        assert!(
            mean.as_millis_f64() > 1.0,
            "varmail must pay disk latency, got {mean}"
        );
        assert_eq!(h.container_mem_stats(vm, cg).dirty_pages, 0, "all synced");
    }

    #[test]
    fn videoserver_is_sequential_and_fast_when_cached() {
        let mut h = host();
        let vm = h.boot_vm(512, 100); // plenty of guest RAM
        let cg = h.create_container(vm, "video", 8192, CachePolicy::mem(100));
        let config = VideoConfig {
            active_videos: 4,
            mean_video_blocks: 16,
            ..VideoConfig::default()
        };
        let mut video = VideoServer::new("video/t0", vm, cg, config, 4);
        // Warm up (each step is one read-ahead chunk), then measure the
        // steady-state serving rate over a window.
        let t1 = run_thread(&mut video, &mut h, 100);
        video.recorder_mut().mark(t1);
        let mut now = t1;
        for _ in 0..200 {
            now = video.step(&mut h, now);
        }
        let rep = video.recorder().window_report(now);
        assert!(
            rep.mb_per_sec > 500.0,
            "warm videoserver should exceed 500 MB/s, got {:.1}",
            rep.mb_per_sec
        );
    }

    #[test]
    fn video_writer_replaces_content() {
        let mut h = host();
        let vm = h.boot_vm(64, 100);
        let cg = h.create_container(vm, "video", 512, CachePolicy::mem(100));
        let config = VideoConfig {
            active_videos: 4,
            mean_video_blocks: 4,
            writer_period: 2, // write every other loop
            ..VideoConfig::default()
        };
        let mut video = VideoServer::new("video/t0", vm, cg, config, 5);
        run_thread(&mut video, &mut h, 10);
        assert!(h.container_mem_stats(vm, cg).dirty_pages > 0 || video.recorder().ops() == 10);
    }
}
