//! Workload generators for the DoubleDecker reproduction.
//!
//! The paper evaluates with the Filebench suite (webserver, proxycache,
//! mail/varmail, videoserver personalities) and YCSB clients driving
//! Redis, MongoDB and MySQL data stores. Neither tool runs in this
//! environment, so this crate reimplements the *access-pattern classes*
//! each represents, as closed-loop workload threads against the
//! [`ddc_hypervisor::Host`] data path:
//!
//! | Paper workload | Model here | Pattern class |
//! |---|---|---|
//! | Filebench webserver   | [`Webserver`]   | many small whole-file random reads + log append |
//! | Filebench proxycache  | [`Proxycache`]  | mixed read/create/delete over a bounded fileset |
//! | Filebench mail        | [`MailServer`]  | small files, fsync-heavy create/read/delete |
//! | Filebench videoserver | [`VideoServer`] | large sequential whole-file reads + writer |
//! | YCSB + Redis          | [`YcsbClient`] + [`StoreModel::RedisLike`] | anonymous-memory working set only |
//! | YCSB + MongoDB        | [`YcsbClient`] + [`StoreModel::MongoLike`] | file-backed records (page-cache friendly) |
//! | YCSB + MySQL          | [`YcsbClient`] + [`StoreModel::MySqlLike`] | anonymous buffer pool + redo log fsync |
//!
//! Every thread implements [`WorkloadThread`]: a `step` that performs one
//! application operation on the host and returns when the thread is next
//! runnable, plus an [`OpsRecorder`] for throughput/latency reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filebench;
mod filebench_extra;
mod fileset;
mod thread;
mod trace;
mod ycsb;
mod zipf;

pub use filebench::{
    MailConfig, MailServer, ProxyConfig, Proxycache, VideoConfig, VideoServer, WebConfig, Webserver,
};
pub use filebench_extra::{FileServer, FileServerConfig, Oltp, OltpConfig};
pub use fileset::FileSet;
pub use thread::WorkloadThread;
pub use trace::{ReplayPacing, Trace, TraceOp, TraceRecord, TraceReplayer};
pub use ycsb::{StoreModel, YcsbClient, YcsbConfig};
pub use zipf::Zipf;
