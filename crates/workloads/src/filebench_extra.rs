//! Additional Filebench personalities beyond the four the paper
//! evaluates: *fileserver* (metadata- and write-heavy mixed IO) and
//! *oltp* (database-style reads plus a synchronous log writer). Useful
//! for exercising the framework on workloads the paper's intro motivates
//! but does not measure.

use ddc_cleancache::VmId;
use ddc_guest::CgroupId;
use ddc_hypervisor::{vm_file, Host};
use ddc_metrics::OpsRecorder;
use ddc_sim::{SimDuration, SimRng, SimTime};
use ddc_storage::{BlockAddr, FileId};

use crate::thread::{blocks_to_bytes, read_whole_file, write_whole_file};
use crate::{FileSet, WorkloadThread, Zipf};

fn base_inode(cg: CgroupId) -> u64 {
    1 + (cg.0 as u64) * 1_000_000
}

// ---------------------------------------------------------------------
// Fileserver
// ---------------------------------------------------------------------

/// Configuration of the [`FileServer`] personality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FileServerConfig {
    /// Number of files in the share.
    pub files: usize,
    /// Mean file size in blocks.
    pub mean_file_blocks: u32,
    /// Client think time between loop iterations.
    pub think_time: SimDuration,
}

impl Default for FileServerConfig {
    fn default() -> FileServerConfig {
        FileServerConfig {
            files: 1000,
            mean_file_blocks: 2,
            think_time: SimDuration::from_millis(2),
        }
    }
}

/// The Filebench *fileserver* personality: each loop creates a file
/// (write whole), reads a file, appends to a file, and deletes a file —
/// a homedir-style share with churn in both data and metadata.
#[derive(Debug)]
pub struct FileServer {
    label: String,
    vm: VmId,
    cg: CgroupId,
    config: FileServerConfig,
    fileset: FileSet,
    rng: SimRng,
    recorder: OpsRecorder,
}

impl FileServer {
    /// Creates one fileserver thread. The fileset derives from
    /// `(vm, cg)`, shared across threads of the container.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        config: FileServerConfig,
        seed: u64,
    ) -> FileServer {
        let mut set_rng = SimRng::new(0x4649_4c45_5352 ^ ((vm.0 as u64) << 32) ^ cg.0 as u64);
        let fileset = FileSet::generate(
            vm,
            base_inode(cg),
            config.files,
            config.mean_file_blocks,
            &mut set_rng,
        );
        FileServer {
            label: label.into(),
            vm,
            cg,
            fileset,
            rng: SimRng::new(seed),
            recorder: OpsRecorder::new(),
            config,
        }
    }
}

impl WorkloadThread for FileServer {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        let mut t = now;
        let mut blocks = 0u64;
        // createfile + writewholefile
        let created = self.fileset.pick_uniform(&mut self.rng);
        let old = self
            .fileset
            .replace(created, self.config.mean_file_blocks, &mut self.rng);
        host.delete_file(self.vm, self.cg, old);
        t = write_whole_file(host, self.vm, self.cg, &self.fileset, created, t);
        blocks += self.fileset.size_blocks(created) as u64;
        // readwholefile
        let read = self.fileset.pick_uniform(&mut self.rng);
        t = read_whole_file(host, self.vm, self.cg, &self.fileset, read, t);
        blocks += self.fileset.size_blocks(read) as u64;
        // appendfile (one block at the end of a random file)
        let appended = self.fileset.pick_uniform(&mut self.rng);
        let end = self.fileset.size_blocks(appended) as u64;
        let addr = BlockAddr::new(self.fileset.file(appended), end.saturating_sub(1));
        t = host.write(t, self.vm, self.cg, addr).finish;
        blocks += 1;
        // deletefile
        let deleted = self.fileset.pick_uniform(&mut self.rng);
        let gone = self
            .fileset
            .replace(deleted, self.config.mean_file_blocks, &mut self.rng);
        host.delete_file(self.vm, self.cg, gone);
        self.recorder.record(t, blocks_to_bytes(blocks), t - now);
        t + self.config.think_time
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

// ---------------------------------------------------------------------
// OLTP
// ---------------------------------------------------------------------

/// Configuration of the [`Oltp`] personality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OltpConfig {
    /// Database size in blocks (one large data file).
    pub data_blocks: u64,
    /// Fraction of transactions that write (and log).
    pub write_fraction: f64,
    /// Zipf skew over data blocks.
    pub zipf_theta: f64,
    /// Transactions per group commit (log fsync).
    pub group_commit: u32,
    /// Client think time per transaction.
    pub think_time: SimDuration,
}

impl Default for OltpConfig {
    fn default() -> OltpConfig {
        OltpConfig {
            data_blocks: 4096,
            write_fraction: 0.3,
            zipf_theta: 0.9,
            group_commit: 8,
            think_time: SimDuration::from_micros(200),
        }
    }
}

/// The Filebench *oltp* personality: random block reads on one large
/// data file (the table space) with a fraction of writing transactions
/// that append to a redo log and group-commit fsync it.
#[derive(Debug)]
pub struct Oltp {
    label: String,
    vm: VmId,
    cg: CgroupId,
    config: OltpConfig,
    data: FileId,
    log: FileId,
    zipf: Zipf,
    log_cursor: u64,
    since_commit: u32,
    rng: SimRng,
    recorder: OpsRecorder,
}

impl Oltp {
    /// Creates one OLTP client thread.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        config: OltpConfig,
        seed: u64,
    ) -> Oltp {
        let base = base_inode(cg) + 800_000;
        Oltp {
            label: label.into(),
            vm,
            cg,
            data: vm_file(vm, base),
            log: vm_file(vm, base + 1),
            zipf: Zipf::new(config.data_blocks.max(1) as usize, config.zipf_theta),
            log_cursor: 0,
            since_commit: 0,
            rng: SimRng::new(seed),
            recorder: OpsRecorder::new(),
            config,
        }
    }
}

impl WorkloadThread for Oltp {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        let mut t = now;
        let block = self.zipf.sample(&mut self.rng) as u64;
        let addr = BlockAddr::new(self.data, block);
        let is_write = self.rng.chance(self.config.write_fraction);
        if is_write {
            // Read-modify-write of the data block + redo append.
            t = host.read(t, self.vm, self.cg, addr).finish;
            t = host.write(t, self.vm, self.cg, addr).finish;
            let log_addr = BlockAddr::new(self.log, self.log_cursor % 64);
            self.log_cursor += 1;
            t = host.write(t, self.vm, self.cg, log_addr).finish;
            self.since_commit += 1;
            if self.since_commit >= self.config.group_commit {
                self.since_commit = 0;
                t = host.fsync(t, self.vm, self.cg, self.log);
            }
        } else {
            t = host.read(t, self.vm, self.cg, addr).finish;
        }
        self.recorder
            .record(t, blocks_to_bytes(if is_write { 3 } else { 1 }), t - now);
        t + self.config.think_time
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::CachePolicy;
    use ddc_hypercache::CacheConfig;
    use ddc_hypervisor::HostConfig;

    fn host() -> Host {
        Host::new(HostConfig::new(CacheConfig::mem_only(4096)))
    }

    fn run(t: &mut dyn WorkloadThread, host: &mut Host, steps: u32) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now = t.step(host, now);
        }
        now
    }

    #[test]
    fn fileserver_churns_and_records() {
        let mut h = host();
        let vm = h.boot_vm(64, 100);
        let cg = h.create_container(vm, "fs", 512, CachePolicy::mem(100));
        let cfg = FileServerConfig {
            files: 50,
            ..FileServerConfig::default()
        };
        let mut fs = FileServer::new("fs/t0", vm, cg, cfg, 1);
        run(&mut fs, &mut h, 25);
        assert_eq!(fs.recorder().ops(), 25);
        assert!(fs.recorder().bytes() > 0);
        assert_eq!(fs.label(), "fs/t0");
        assert_eq!(fs.vm(), vm);
        assert_eq!(fs.cgroup(), cg);
    }

    #[test]
    fn fileserver_deterministic() {
        let mk = || {
            let mut h = host();
            let vm = h.boot_vm(64, 100);
            let cg = h.create_container(vm, "fs", 512, CachePolicy::mem(100));
            let cfg = FileServerConfig {
                files: 30,
                ..FileServerConfig::default()
            };
            let mut fs = FileServer::new("fs/t0", vm, cg, cfg, 7);
            run(&mut fs, &mut h, 15)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn oltp_reads_hit_cache_and_commits_hit_disk() {
        let mut h = host();
        let vm = h.boot_vm(64, 100);
        let cg = h.create_container(vm, "db", 512, CachePolicy::mem(100));
        let cfg = OltpConfig {
            data_blocks: 256,
            ..OltpConfig::default()
        };
        let mut db = Oltp::new("db/t0", vm, cg, cfg, 2);
        run(&mut db, &mut h, 200);
        assert_eq!(db.recorder().ops(), 200);
        // Group commits force synchronous disk writes.
        assert!(h.guest(vm).counters().writebacks > 0);
        // Hot zipf head should be mostly cached: p50 well under disk time.
        let p50 = db.recorder().latency().quantile(0.5);
        assert!(
            p50 < SimDuration::from_millis(4),
            "median transaction should avoid the disk, got {p50}"
        );
    }

    #[test]
    fn oltp_read_only_never_syncs() {
        let mut h = host();
        let vm = h.boot_vm(64, 100);
        let cg = h.create_container(vm, "db", 512, CachePolicy::mem(100));
        let cfg = OltpConfig {
            data_blocks: 128,
            write_fraction: 0.0,
            ..OltpConfig::default()
        };
        let mut db = Oltp::new("db/t0", vm, cg, cfg, 3);
        run(&mut db, &mut h, 100);
        assert_eq!(h.guest(vm).counters().writebacks, 0);
    }
}
