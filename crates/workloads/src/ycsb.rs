//! A YCSB-like key-value client over three data-store models.
//!
//! The paper drives Redis, MongoDB and MySQL backends with YCSB clients
//! (Fig. 5, Table 1, Table 4). What matters to DoubleDecker is each
//! store's *memory shape*:
//!
//! * **Redis** keeps the whole dataset in anonymous memory — the
//!   hypervisor cache cannot help it, and squeezing it causes swap storms
//!   (Table 1: 996 MB swapped, 18.5 MB hypervisor cache).
//! * **MongoDB** (mmap era) is file-backed — its working set lives in the
//!   page cache and extends gracefully into the hypervisor cache
//!   (Table 1: 0 swap, 1023 MB hypervisor cache).
//! * **MySQL/InnoDB** keeps a large anonymous buffer pool plus a redo log
//!   with periodic fsync — mostly anonymous with a trickle of file IO
//!   (Table 1: 879 MB swap, 34 MB hypervisor cache).

use ddc_cleancache::VmId;
use ddc_guest::CgroupId;
use ddc_hypervisor::{vm_file, Host};
use ddc_metrics::OpsRecorder;
use ddc_sim::{SimDuration, SimRng, SimTime};
use ddc_storage::{BlockAddr, FileId, PAGE_SIZE};

use crate::{WorkloadThread, Zipf};

/// Which data store the YCSB client talks to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreModel {
    /// In-memory store: every record access touches anonymous memory.
    RedisLike,
    /// File-backed store: every record access reads a file block.
    MongoLike,
    /// Anonymous buffer pool + redo log with group fsync.
    MySqlLike,
}

impl std::fmt::Display for StoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StoreModel::RedisLike => "redis",
            StoreModel::MongoLike => "mongodb",
            StoreModel::MySqlLike => "mysql",
        };
        f.write_str(s)
    }
}

/// YCSB client configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YcsbConfig {
    /// The store model under test.
    pub store: StoreModel,
    /// Dataset size in blocks (records are block-granular here; one block
    /// holds many records, and accesses are block-level like the page
    /// cache sees them).
    pub dataset_blocks: u64,
    /// Fraction of operations that are updates (YCSB-A: 0.5, YCSB-B: 0.05).
    pub update_fraction: f64,
    /// Zipf skew over blocks (YCSB default 0.99).
    pub zipf_theta: f64,
    /// Operations per step batch (amortizes scheduling).
    pub ops_per_step: u32,
    /// Client think time per operation (models the YCSB client's network
    /// round trip; caps in-memory stores at realistic service rates).
    pub think_time: SimDuration,
}

impl YcsbConfig {
    /// A YCSB-B-like read-mostly workload over the given store.
    pub fn read_mostly(store: StoreModel, dataset_blocks: u64) -> YcsbConfig {
        YcsbConfig {
            store,
            dataset_blocks,
            update_fraction: 0.05,
            zipf_theta: 0.99,
            ops_per_step: 8,
            think_time: SimDuration::from_micros(50),
        }
    }
}

/// A closed-loop YCSB-like client thread bound to one container.
#[derive(Debug)]
pub struct YcsbClient {
    label: String,
    vm: VmId,
    cg: CgroupId,
    config: YcsbConfig,
    zipf: Zipf,
    data_file: FileId,
    log_file: FileId,
    log_cursor: u64,
    updates_since_fsync: u32,
    rng: SimRng,
    recorder: OpsRecorder,
    reserved: bool,
}

/// MySQL-like stores fsync their redo log every this many updates (group
/// commit).
const MYSQL_GROUP_COMMIT: u32 = 8;

/// MongoDB-like stores fsync their journal every this many updates.
const MONGO_JOURNAL_COMMIT: u32 = 32;

impl YcsbClient {
    /// Creates a client. The anonymous working set (for Redis/MySQL
    /// models) is reserved lazily on the first step so construction does
    /// not need host access.
    pub fn new(
        label: impl Into<String>,
        vm: VmId,
        cg: CgroupId,
        config: YcsbConfig,
        seed: u64,
    ) -> YcsbClient {
        let base = 500_000 + (cg.0 as u64) * 1_000_000;
        YcsbClient {
            label: label.into(),
            vm,
            cg,
            zipf: Zipf::new(config.dataset_blocks.max(1) as usize, config.zipf_theta),
            data_file: vm_file(vm, base),
            log_file: vm_file(vm, base + 1),
            log_cursor: 0,
            updates_since_fsync: 0,
            rng: SimRng::new(seed),
            recorder: OpsRecorder::new(),
            reserved: false,
            config,
        }
    }

    /// Anonymous footprint of the store model, in blocks.
    fn anon_blocks(&self) -> u64 {
        match self.config.store {
            StoreModel::RedisLike => self.config.dataset_blocks,
            // InnoDB buffer pool sized at ~80% of the dataset.
            StoreModel::MySqlLike => self.config.dataset_blocks * 8 / 10,
            // Mongo keeps small index/heap state: ~10%.
            StoreModel::MongoLike => (self.config.dataset_blocks / 10).max(1),
        }
    }

    fn ensure_reserved(&mut self, host: &mut Host) {
        if !self.reserved {
            host.anon_reserve(self.vm, self.cg, self.anon_blocks());
            self.reserved = true;
        }
    }

    /// One key-value operation; returns its finish time.
    fn one_op(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        let block = self.zipf.sample(&mut self.rng) as u64;
        let is_update = self.rng.chance(self.config.update_fraction);
        let mut t = now;
        match self.config.store {
            StoreModel::RedisLike => {
                // Pure anonymous access; updates also append to the AOF
                // (buffered, no fsync by default).
                t = host.anon_touch(t, self.vm, self.cg, block);
                if is_update {
                    let addr = BlockAddr::new(self.log_file, self.log_cursor % 64);
                    self.log_cursor += 1;
                    t = host.write(t, self.vm, self.cg, addr).finish;
                }
            }
            StoreModel::MongoLike => {
                // File-backed record access through the page cache, plus a
                // small anonymous index touch.
                let anon = block % self.anon_blocks();
                t = host.anon_touch(t, self.vm, self.cg, anon);
                let addr = BlockAddr::new(self.data_file, block);
                if is_update {
                    t = host.write(t, self.vm, self.cg, addr).finish;
                    self.updates_since_fsync += 1;
                    if self.updates_since_fsync >= MONGO_JOURNAL_COMMIT {
                        self.updates_since_fsync = 0;
                        t = host.fsync(t, self.vm, self.cg, self.data_file);
                    }
                } else {
                    t = host.read(t, self.vm, self.cg, addr).finish;
                }
            }
            StoreModel::MySqlLike => {
                // Buffer-pool hit if the block maps into the pool;
                // otherwise a data-file read. Updates append redo and
                // group-commit fsync.
                let pool = self.anon_blocks();
                if block < pool {
                    t = host.anon_touch(t, self.vm, self.cg, block);
                } else {
                    let addr = BlockAddr::new(self.data_file, block);
                    t = host.read(t, self.vm, self.cg, addr).finish;
                }
                if is_update {
                    let addr = BlockAddr::new(self.log_file, self.log_cursor % 64);
                    self.log_cursor += 1;
                    t = host.write(t, self.vm, self.cg, addr).finish;
                    self.updates_since_fsync += 1;
                    if self.updates_since_fsync >= MYSQL_GROUP_COMMIT {
                        self.updates_since_fsync = 0;
                        t = host.fsync(t, self.vm, self.cg, self.log_file);
                    }
                }
            }
        }
        t
    }
}

impl WorkloadThread for YcsbClient {
    fn label(&self) -> &str {
        &self.label
    }

    fn vm(&self) -> VmId {
        self.vm
    }

    fn cgroup(&self) -> CgroupId {
        self.cg
    }

    fn step(&mut self, host: &mut Host, now: SimTime) -> SimTime {
        self.ensure_reserved(host);
        let mut t = now;
        for _ in 0..self.config.ops_per_step {
            let start = t;
            t = self.one_op(host, t);
            self.recorder.record(t, PAGE_SIZE, t - start);
            t += self.config.think_time;
        }
        t
    }

    fn recorder(&self) -> &OpsRecorder {
        &self.recorder
    }

    fn recorder_mut(&mut self) -> &mut OpsRecorder {
        &mut self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::CachePolicy;
    use ddc_hypercache::CacheConfig;
    use ddc_hypervisor::HostConfig;

    fn setup(guest_mb: u64, cg_limit: u64, cache_blocks: u64) -> (Host, VmId, CgroupId) {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(cache_blocks)));
        let vm = host.boot_vm(guest_mb, 100);
        let cg = host.create_container(vm, "db", cg_limit, CachePolicy::mem(100));
        (host, vm, cg)
    }

    fn run(client: &mut YcsbClient, host: &mut Host, steps: u32) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now = client.step(host, now);
        }
        now
    }

    #[test]
    fn redis_fits_in_memory_is_fast() {
        let (mut host, vm, cg) = setup(64, 1024, 1024); // 64 MiB = 1024 blocks
        let config = YcsbConfig::read_mostly(StoreModel::RedisLike, 256);
        let mut client = YcsbClient::new("redis", vm, cg, config, 1);
        let fin = run(&mut client, &mut host, 50);
        let rep = client.recorder().report(fin);
        assert!(
            rep.mean_latency.as_millis_f64() < 0.5,
            "in-memory store must be sub-millisecond, got {}",
            rep.mean_latency
        );
        assert_eq!(host.container_mem_stats(vm, cg).swap_out_total, 0);
    }

    #[test]
    fn redis_squeezed_below_working_set_swaps() {
        // Guest RAM 2 MiB = 32 blocks; dataset 128 blocks of anon.
        let (mut host, vm, cg) = setup(2, 1024, 1024);
        let config = YcsbConfig {
            update_fraction: 0.0, // read-only: no AOF appends
            ..YcsbConfig::read_mostly(StoreModel::RedisLike, 128)
        };
        let mut client = YcsbClient::new("redis", vm, cg, config, 2);
        run(&mut client, &mut host, 100);
        let stats = host.container_mem_stats(vm, cg);
        assert!(stats.swap_out_total > 0, "squeezed Redis must swap");
        // And the hypervisor cache cannot absorb anonymous pressure.
        let hc = host.container_cache_stats(vm, cg).unwrap();
        assert_eq!(hc.mem_pages, 0, "no file pages for the cache to hold");
    }

    #[test]
    fn mongo_overflow_lands_in_hypervisor_cache() {
        // Guest 4 MiB (64 blocks), dataset 256 blocks, big hypervisor cache.
        let (mut host, vm, cg) = setup(4, 2048, 4096);
        let config = YcsbConfig::read_mostly(StoreModel::MongoLike, 256);
        let mut client = YcsbClient::new("mongo", vm, cg, config, 3);
        run(&mut client, &mut host, 400);
        let hc = host.container_cache_stats(vm, cg).unwrap();
        assert!(
            hc.mem_pages > 0,
            "file-backed store should overflow into the hypervisor cache"
        );
        assert!(hc.hits > 0, "and read back from it");
    }

    #[test]
    fn mysql_mixes_anon_and_log_fsync() {
        let (mut host, vm, cg) = setup(16, 1024, 1024);
        let config = YcsbConfig {
            store: StoreModel::MySqlLike,
            dataset_blocks: 128,
            update_fraction: 0.5,
            zipf_theta: 0.99,
            ops_per_step: 8,
            think_time: SimDuration::from_micros(50),
        };
        let mut client = YcsbClient::new("mysql", vm, cg, config, 4);
        run(&mut client, &mut host, 50);
        let stats = host.container_mem_stats(vm, cg);
        assert!(stats.anon_resident_pages > 0, "buffer pool is anonymous");
        assert!(
            host.guest(vm).counters().writebacks > 0,
            "group commit must hit the disk"
        );
    }

    #[test]
    fn store_model_display() {
        assert_eq!(StoreModel::RedisLike.to_string(), "redis");
        assert_eq!(StoreModel::MongoLike.to_string(), "mongodb");
        assert_eq!(StoreModel::MySqlLike.to_string(), "mysql");
    }

    #[test]
    fn recorder_counts_every_op() {
        let (mut host, vm, cg) = setup(64, 1024, 1024);
        let config = YcsbConfig::read_mostly(StoreModel::MongoLike, 64);
        let mut client = YcsbClient::new("m", vm, cg, config, 5);
        run(&mut client, &mut host, 10);
        assert_eq!(client.recorder().ops(), 10 * 8);
    }
}
