//! Cross-shard invariant auditor for [`ShardedCache`].
//!
//! Locks the registry and every shard (the crate's lock-all discipline),
//! then cross-checks the sharded assembly the same way
//! `ddc_hypercache::audit` checks the serial engine:
//!
//! 1. **Ledger accounting** — each store's atomic used-page ledger
//!    equals the sum of per-pool usage across all shards and never
//!    exceeds capacity. This is the invariant the CAS allocation loop
//!    exists to protect; a mismatch means pages leaked or
//!    double-freed across threads.
//! 2. **Shard map** — every pool sits in the shard its key hashes to,
//!    and the registry's pool set matches the union of the shards' pool
//!    sets (a divergence would make hypercalls route to a shard that
//!    doesn't hold the pool).
//! 3. **Pool coherence** — index coherence, FIFO coverage and order,
//!    the exclusive-cache property and sequence monotonicity, via
//!    [`ddc_hypercache::audit_pool_slice`] over the flattened pools.
//! 4. **Shard-FIFO tombstones** — per shard and store, the dead-entry
//!    count in the eviction FIFO must not exceed the shard's tombstone
//!    counter. (The counter may legitimately over-count: trickled-down
//!    objects carry no FIFO entry, so their later removal bumps the
//!    counter without creating a tombstone — same slack as the serial
//!    engine. Over-counting only makes compaction more eager; an
//!    *under*-count would starve it, so that direction is flagged.)
//! 5. **Entitlement sums** — per store, VM entitlements sum to at most
//!    capacity and pool entitlements to at most the VM share
//!    (normalized shares, paper §4.2), computed from a fresh share
//!    table over the locked usage.
//! 6. **Mirror accuracy** — each pool's atomic usage mirror (the
//!    lock-free snapshot source for two-phase eviction) equals the
//!    pool's exact usage under lock-all quiescence. A drift here means
//!    phase-1 victim selection is working from corrupt data.
//!
//! 7. **Journal health** — when the plane journals (DESIGN.md §14),
//!    every live shard segment must replay clean end-to-end under
//!    quiescence (the auditor holds every lock, and we wrote every
//!    byte ourselves — a torn or corrupt frame here means the
//!    group-commit path emits records a crash would mangle), with
//!    strictly increasing generations per segment, no generation
//!    claimed twice across segments, and the record counter exact.
//! 8. **Read-plane coherence** (DESIGN.md §15) — every shard's seqlock
//!    sequence word is even at rest (an odd value means a writer died
//!    mid-publish and readers would spin forever); unless the plane
//!    latched its overflow flag, its membership equals the exact union
//!    of live `(vm, pool, addr)` keys homed on the shard (a missing key
//!    is a wrong lock-free miss — the one lie the design must never
//!    tell); every still-valid hot-replica entry on the auditing handle
//!    is genuinely absent from its home shard; and — in Global mode,
//!    the only mode that maintains or consults them — each tournament
//!    tree's leaves equal their shards' FIFO front sequences with the
//!    stored root agreeing with a from-scratch recomputation.
//!
//! Arena-shape invariants (free-list disjoint from the live set, every
//! live slot covered by exactly one FIFO entry or tombstone) ride along
//! via [`ddc_hypercache::audit_pool_slice`] in step 3.

use ddc_cleancache::{PoolId, VmId};
use ddc_hypercache::index::{Placement, Pool};
use ddc_hypercache::{audit_pool_slice, audit_remote_bindings, AuditFinding};
use ddc_storage::{BlockAddr, Journal, RemoteBinding};

use crate::fronts::EMPTY_FRONT;
use crate::sharded::ShardedCache;

fn placements() -> [Placement; 2] {
    [Placement::Mem, Placement::Ssd]
}

fn store_name(placement: Placement) -> &'static str {
    match placement {
        Placement::Mem => "mem",
        Placement::Ssd => "ssd",
    }
}

/// Audits every cross-shard invariant of `cache`, returning one finding
/// per violation (empty = healthy). Takes the lock-all path, so call it
/// between phases, not on the hot path.
pub fn audit(cache: &ShardedCache) -> Vec<AuditFinding> {
    cache.with_all_locked(|reg, shards, mem, ssd, next_seq| {
        let mut findings = Vec::new();

        // 1. Ledger accounting.
        for placement in placements() {
            let ledger = match placement {
                Placement::Mem => mem,
                Placement::Ssd => ssd,
            };
            let pooled: u64 = shards
                .iter()
                .flat_map(|s| s.pools.values())
                .map(|p| p.used(placement))
                .sum();
            if ledger.used_pages() != pooled {
                findings.push(AuditFinding {
                    invariant: "ledger-accounting",
                    detail: format!(
                        "{} ledger counts {} used pages but pools hold {pooled}",
                        store_name(placement),
                        ledger.used_pages()
                    ),
                });
            }
            if ledger.used_pages() > ledger.capacity_pages() {
                findings.push(AuditFinding {
                    invariant: "ledger-accounting",
                    detail: format!(
                        "{} ledger uses {} pages over its capacity of {}",
                        store_name(placement),
                        ledger.used_pages(),
                        ledger.capacity_pages()
                    ),
                });
            }
        }

        // 2. Shard map: placement by hash, and registry ↔ shard agreement.
        let mut shard_keys: Vec<(VmId, PoolId)> = Vec::new();
        for (si, shard) in shards.iter().enumerate() {
            for &(vm, pid) in shard.pools.keys() {
                shard_keys.push((vm, pid));
                let home = cache.shard_of(vm, pid);
                if home != si {
                    findings.push(AuditFinding {
                        invariant: "shard-map",
                        detail: format!("{vm} {pid} sits in shard {si} but hashes to shard {home}"),
                    });
                }
            }
        }
        shard_keys.sort_unstable();
        let mut registry_keys: Vec<(VmId, PoolId)> = Vec::new();
        for (&vm, meta) in &reg.vms {
            for &(pid, _, _) in &meta.pools {
                registry_keys.push((vm, pid));
            }
        }
        registry_keys.sort_unstable();
        if shard_keys != registry_keys {
            findings.push(AuditFinding {
                invariant: "shard-map",
                detail: format!(
                    "registry lists {} pools but the shards hold {} \
                     (routing and storage disagree)",
                    registry_keys.len(),
                    shard_keys.len()
                ),
            });
        }

        // 3. Pool coherence, in registry order like the serial engine.
        let mut flat: Vec<(VmId, PoolId, &Pool)> = Vec::new();
        for (&vm, meta) in &reg.vms {
            for &(pid, _, _) in &meta.pools {
                if let Some(pool) = shards[cache.shard_of(vm, pid)].pools.get(&(vm, pid)) {
                    flat.push((vm, pid, pool));
                }
            }
        }
        findings.extend(audit_pool_slice(&flat, next_seq));

        // 4. Shard-FIFO tombstones: dead entries must not outnumber the
        // counter (see the module docs for why over-counting is benign).
        for (si, shard) in shards.iter().enumerate() {
            for placement in placements() {
                let dead = shard
                    .fifo_ref(placement)
                    .iter()
                    .filter(|&&(vm, pool, sid, seq)| {
                        shard
                            .pools
                            .get(&(vm, pool))
                            .and_then(|p| p.fifo_probe(sid, seq, placement))
                            .is_none()
                    })
                    .count() as u64;
                let stale = shard.stale(placement);
                if dead > stale {
                    findings.push(AuditFinding {
                        invariant: "shard-fifo-tombstones",
                        detail: format!(
                            "shard {si} {} FIFO has {dead} dead entries but the \
                             tombstone counter says {stale} (compaction would starve)",
                            store_name(placement)
                        ),
                    });
                }
            }
        }

        // 5. Entitlement sums from a fresh share table.
        for placement in placements() {
            let ledger = match placement {
                Placement::Mem => mem,
                Placement::Ssd => ssd,
            };
            let (vm_rows, pool_rows) = cache.build_share_table(reg, shards, placement);
            let capacity = ledger.capacity_pages();
            let vm_sum: u64 = vm_rows.iter().map(|r| r.1).sum();
            if vm_sum > capacity {
                findings.push(AuditFinding {
                    invariant: "entitlement-sums",
                    detail: format!(
                        "{} store: VM entitlements sum to {vm_sum}, over the \
                         capacity of {capacity} pages",
                        store_name(placement)
                    ),
                });
            }
            for (i, &(vm, vm_share, _)) in vm_rows.iter().enumerate() {
                let pool_sum: u64 = pool_rows[i].iter().map(|r| r.1).sum();
                if pool_sum > vm_share {
                    findings.push(AuditFinding {
                        invariant: "entitlement-sums",
                        detail: format!(
                            "{} store: {vm} pool entitlements sum to {pool_sum}, \
                             over the VM's entitlement of {vm_share}",
                            store_name(placement)
                        ),
                    });
                }
            }
        }

        // 6. Mirror accuracy: the two-phase snapshot source must match
        // the exact usage while everything is locked.
        for (&vm, meta) in &reg.vms {
            for (pid, _, mirror) in &meta.pools {
                let Some(pool) = shards[cache.shard_of(vm, *pid)].pools.get(&(vm, *pid)) else {
                    continue;
                };
                for placement in placements() {
                    let mirrored = mirror.pages(placement);
                    let exact = pool.used(placement);
                    if mirrored != exact {
                        findings.push(AuditFinding {
                            invariant: "mirror-accuracy",
                            detail: format!(
                                "{vm} {pid} {} mirror reads {mirrored} pages but the \
                                 pool holds {exact}",
                                store_name(placement)
                            ),
                        });
                    }
                }
            }
        }

        // 6b. Remote bindings: the shared invariant-10 checks (outcome
        // accounting, breaker agreement, in-flight cap, no stale staged
        // pages), plus the routing flag — a pool is marked remote-bound
        // on its mirror iff its home shard holds a binding; a flag
        // without a binding would still be safe (locked path, plain
        // miss) but a binding without the flag lets the lock-free plane
        // answer misses the remote should have served.
        let mut bindings: Vec<(VmId, PoolId, &RemoteBinding)> = Vec::new();
        for shard in shards.iter() {
            for (&(vm, pid), b) in &shard.remote_bindings {
                bindings.push((vm, pid, b));
            }
        }
        bindings.sort_unstable_by_key(|&(vm, pid, _)| (vm, pid));
        findings.extend(audit_remote_bindings(&bindings));
        for &(vm, pid, _) in &bindings {
            let flagged = reg
                .vms
                .get(&vm)
                .and_then(|meta| meta.mirror_of(pid))
                .is_some_and(|m| m.remote_bound());
            if !flagged {
                findings.push(AuditFinding {
                    invariant: "remote-consistency",
                    detail: format!(
                        "{vm} {pid} has a remote binding but its mirror is not \
                         marked remote-bound (lock-free misses bypass the remote)"
                    ),
                });
            }
        }

        // 7. Journal health (only when the plane journals).
        if let Some(expected_records) = cache.journal_records() {
            let mut all_gens: Vec<u64> = Vec::new();
            for (si, shard) in shards.iter().enumerate() {
                let Some(journal) = shard.journal.as_ref() else {
                    findings.push(AuditFinding {
                        invariant: "journal-health",
                        detail: format!("journaling is on but shard {si} has no segment"),
                    });
                    continue;
                };
                let (records, stats) = Journal::replay(journal.bytes());
                if stats.torn_tail || stats.corrupt {
                    findings.push(AuditFinding {
                        invariant: "journal-health",
                        detail: format!(
                            "shard {si} segment does not replay clean at rest \
                             (torn_tail={} corrupt={} after {} records)",
                            stats.torn_tail,
                            stats.corrupt,
                            records.len()
                        ),
                    });
                }
                let mut prev = 0u64;
                for &(gen, _) in &records {
                    if gen <= prev {
                        findings.push(AuditFinding {
                            invariant: "journal-health",
                            detail: format!(
                                "shard {si} segment generations are not strictly \
                                 increasing ({gen} follows {prev})"
                            ),
                        });
                    }
                    prev = gen;
                    all_gens.push(gen);
                }
            }
            all_gens.sort_unstable();
            if all_gens.windows(2).any(|w| w[0] == w[1]) {
                findings.push(AuditFinding {
                    invariant: "journal-health",
                    detail: "a record generation was claimed by two segments".to_owned(),
                });
            }
            if all_gens.len() as u64 != expected_records {
                findings.push(AuditFinding {
                    invariant: "journal-health",
                    detail: format!(
                        "segments hold {} records but the counter says {expected_records}",
                        all_gens.len()
                    ),
                });
            }
        }

        // 8a. Read planes: seq word even at rest; membership exactly the
        // live key union of the shard (unless the plane overflowed and
        // lock-free reads are already disabled there).
        for (si, shard) in shards.iter().enumerate() {
            let plane = cache.read_plane(si);
            if !plane.seq().is_multiple_of(2) {
                findings.push(AuditFinding {
                    invariant: "read-plane",
                    detail: format!(
                        "shard {si} seqlock word is odd ({}) at rest — a write \
                         never completed",
                        plane.seq()
                    ),
                });
            }
            if plane.overflowed() {
                continue;
            }
            let mut live: Vec<(VmId, PoolId, BlockAddr)> = shard
                .pools
                .iter()
                .flat_map(|(&(vm, pid), pool)| pool.iter().map(move |(addr, _)| (vm, pid, addr)))
                .collect();
            live.sort_unstable();
            let mut published = plane.entries();
            published.sort_unstable();
            if live != published {
                findings.push(AuditFinding {
                    invariant: "read-plane",
                    detail: format!(
                        "shard {si} read plane publishes {} keys but the shard \
                         holds {} live keys (lock-free misses would lie)",
                        published.len(),
                        live.len()
                    ),
                });
            }
        }

        // 8b. Hot replicas (this handle's): an entry whose stamp still
        // matches the home plane must describe a genuinely absent key.
        for h in cache.local_hot() {
            let si = cache.shard_of(h.vm, h.pool);
            if cache.read_plane(si).seq() != h.stamp {
                continue; // stale entry, will be discarded on next probe
            }
            let present = shards[si]
                .pools
                .get(&(h.vm, h.pool))
                .is_some_and(|p| p.peek(h.addr).is_some());
            if present {
                findings.push(AuditFinding {
                    invariant: "hot-replica",
                    detail: format!(
                        "{} {} {:?} is cached as a valid miss but the home shard \
                         holds it",
                        h.vm, h.pool, h.addr
                    ),
                });
            }
        }

        // 8c. Tournament trees: leaves mirror the raw FIFO fronts (dead
        // or live), and the stored root is the recomputed minimum.
        // Global mode only — the other modes never consult the tree and
        // skip its maintenance, so their leaves are legitimately stale.
        for placement in placements()
            .into_iter()
            .filter(|_| matches!(cache.mode(), ddc_hypercache::PartitionMode::Global))
        {
            let tree = cache.front_tree(placement);
            for (si, shard) in shards.iter().enumerate() {
                let want = shard
                    .fifo_ref(placement)
                    .front()
                    .map(|&(_, _, _, seq)| seq)
                    .unwrap_or(EMPTY_FRONT);
                let got = tree.leaf(si);
                if got != want {
                    findings.push(AuditFinding {
                        invariant: "front-tree",
                        detail: format!(
                            "shard {si} {} leaf holds seq {got} but the FIFO front \
                             is {want}",
                            store_name(placement)
                        ),
                    });
                }
            }
            if tree.winner() != tree.recompute_winner() {
                findings.push(AuditFinding {
                    invariant: "front-tree",
                    detail: format!(
                        "{} tree root nominates {:?} but the leaves say {:?}",
                        store_name(placement),
                        tree.winner(),
                        tree.recompute_winner()
                    ),
                });
            }
        }

        findings
    })
}
