//! Multi-threaded VM driver for the sharded serving plane.
//!
//! Each guest VM drives its hypercall stream — batched writes
//! (`flush_many`), stores (`put_many`) and lookups (`get_many`) on a
//! [`HypercallChannel`] — from its own deterministic seeded RNG. The
//! driver runs in two modes:
//!
//! * **Equivalence mode** ([`run_equivalence`]) — single-threaded,
//!   round-robin across VMs, against either the serial
//!   [`DoubleDeckerCache`] or the sharded [`ShardedCache`]. Both runs
//!   see the *identical* hypercall stream (each VM's RNG is a
//!   deterministic fork of the config seed), so the resulting
//!   [`EquivalenceReport`] JSON must be byte-identical — this is the
//!   crate's determinism contract, enforced by the workspace property
//!   tests and `repro stress`.
//! * **Stress mode** ([`run_stress`]) — `threads` OS threads share one
//!   [`ShardedCache`], each owning a disjoint subset of the VMs. After
//!   the join the run is gated on the cross-shard auditor
//!   ([`crate::audit`]) returning zero findings and on the stale-read
//!   oracle counting zero violations.
//!
//! # Stale-read oracle
//!
//! Every VM keeps an authoritative model of its disk: a per-pool map
//! `addr → version` bumped on each simulated write (which also flushes
//! the cached copy, like a real guest invalidating a clean page). A
//! cache hit must return exactly the modeled version. The oracle stays
//! valid under concurrency because pools are VM-private: other threads
//! only ever *remove* this VM's entries (cross-shard eviction) or
//! re-insert them with the same version (hybrid trickle-down), so any
//! hit still carries the last version this VM put — a mismatch is a
//! genuine coherence bug, never a false positive.

use std::time::Duration;

use ddc_cleancache::{
    CachePolicy, GetOutcome, HypercallChannel, PageVersion, PoolId, SecondChanceCache, VmId,
};
use ddc_hypercache::{AuditFinding, CacheConfig, DoubleDeckerCache, PartitionMode};
use ddc_json::Json;
use ddc_sim::{BreakerConfig, FaultSchedule, FxHashMap, SimDuration, SimRng, SimTime};
use ddc_storage::{
    BlockAddr, ChunkStore, FileId, RemoteConfig, RemoteCounters, RemoteFetchConfig, RemoteId,
    WearCounters,
};

use crate::audit;
use crate::sharded::{ShardedCache, ShardedRecoveryReport};

/// Which cache engine an equivalence run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The serial reference engine (`ddc-hypercache`).
    Serial,
    /// The sharded concurrent engine with the given shard count.
    Sharded {
        /// Number of index shards.
        shards: usize,
    },
}

/// Remote chunk-store attachment for a driver run: one simulated store
/// shared by every pool, bound under the full fault-tolerance stack.
/// Cold misses (blocks the guests never wrote) are then served by the
/// remote instead of falling through.
#[derive(Clone, Debug)]
pub struct RemoteSetup {
    /// Latency and edge-placement model of the store.
    pub config: RemoteConfig,
    /// Fault schedule installed on the store (partitions, brownouts,
    /// edge-cache flaps). `None` = healthy network.
    pub faults: Option<FaultSchedule>,
    /// Fault-tolerance parameters every binding runs under.
    pub fetch: RemoteFetchConfig,
}

impl RemoteSetup {
    /// A store tuned to the driver's microsecond tick scale (ticks are
    /// 1µs apart, so CDN-scale millisecond RTTs would pin every fetch
    /// in flight forever and shed the whole run). Latencies are
    /// nanosecond-scale; the fault-tolerance stack keeps the same
    /// shape as the CDN defaults (3 attempts, hedging, breaker).
    pub fn for_driver(seed: u64) -> RemoteSetup {
        RemoteSetup {
            config: RemoteConfig {
                chunk_pages: 16,
                edge_rtt: SimDuration::from_nanos(300),
                origin_rtt: SimDuration::from_nanos(4_000),
                page_transfer: SimDuration::from_nanos(20),
                edge_hit_rate: 0.8,
                buffer_read: SimDuration::from_nanos(50),
                buffer_chunks: 8,
                seed,
            },
            faults: None,
            fetch: RemoteFetchConfig {
                deadline: SimDuration::from_nanos(12_000),
                max_attempts: 3,
                backoff_base: SimDuration::from_nanos(500),
                backoff_max: SimDuration::from_nanos(4_000),
                hedge_after: SimDuration::from_nanos(2_000),
                inflight_cap: 64,
                breaker: BreakerConfig {
                    threshold: 3,
                    initial_backoff: SimDuration::from_nanos(10_000),
                    max_backoff: SimDuration::from_nanos(1_000_000),
                },
            },
        }
    }

    /// Installs a fault schedule on the store.
    pub fn with_faults(mut self, faults: FaultSchedule) -> RemoteSetup {
        self.faults = Some(faults);
        self
    }
}

/// Workload shape for the driver (both modes).
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Guest VMs (one OS thread each in stress mode at `threads >=
    /// vms`; otherwise VMs are distributed round-robin over threads).
    pub vms: u32,
    /// Cleancache pools per VM (policies cycle mem/ssd/hybrid).
    pub pools_per_vm: u32,
    /// Ticks per VM; each tick issues one write+put+get batch trio
    /// against the pool `tick % pools_per_vm`.
    pub ticks: u64,
    /// Distinct block addresses per pool.
    pub working_set: u64,
    /// Simulated guest writes (version bump + `flush_many`) per tick.
    pub writes_per_tick: u64,
    /// Page stores (`put_many`) per tick.
    pub puts_per_tick: u64,
    /// Page lookups (`get_many`) per tick.
    pub gets_per_tick: u64,
    /// Capacity and partition mode of the cache under test.
    pub cache: CacheConfig,
    /// Shard count for the sharded engine.
    pub shards: usize,
    /// Root seed; every VM forks a private deterministic stream.
    pub seed: u64,
    /// Journal both engines (per-shard segments + group commit on the
    /// sharded plane, the WAL on the serial plane). With this on,
    /// `flush`/`flush_many` return real durability epochs and the
    /// equivalence contract extends to the per-VM flush-epoch
    /// watermarks. Presets leave it off (the volatile plane).
    pub journal: bool,
    /// Remote chunk store every pool is bound to (`None` = no remote
    /// tier; cold misses stay misses).
    pub remote: Option<RemoteSetup>,
}

impl StressConfig {
    /// A small configuration for CI smoke runs (a few thousand ops).
    pub fn smoke(seed: u64) -> StressConfig {
        StressConfig {
            vms: 4,
            pools_per_vm: 2,
            ticks: 200,
            working_set: 128,
            writes_per_tick: 2,
            puts_per_tick: 6,
            gets_per_tick: 6,
            cache: CacheConfig::mem_and_ssd(512, 1024),
            shards: 8,
            seed,
            journal: false,
            remote: None,
        }
    }

    /// A put-heavy storm against a deliberately undersized store: most
    /// puts force an eviction, so the run spends its time in the
    /// two-phase eviction path under thread contention. Used by the
    /// `evict_contention_threads_*` perf cells.
    pub fn eviction_storm(seed: u64) -> StressConfig {
        StressConfig {
            vms: 8,
            pools_per_vm: 2,
            ticks: 500,
            working_set: 512,
            writes_per_tick: 2,
            puts_per_tick: 16,
            gets_per_tick: 4,
            cache: CacheConfig::mem_and_ssd(256, 512),
            shards: 16,
            seed,
            journal: false,
            remote: None,
        }
    }

    /// A 95/5 read-heavy mix (19 gets per put): the workload the
    /// lock-free read plane exists for. Exclusive semantics keep the
    /// steady-state hit rate low, so nearly every get is a definitive
    /// miss the seqlock table answers without a lock. Used by the
    /// `read_scaling_threads_*` perf cells.
    pub fn read_heavy(seed: u64) -> StressConfig {
        StressConfig {
            vms: 8,
            pools_per_vm: 2,
            ticks: 1_000,
            working_set: 256,
            writes_per_tick: 1,
            puts_per_tick: 1,
            gets_per_tick: 19,
            cache: CacheConfig::mem_and_ssd(4_096, 8_192),
            shards: 16,
            seed,
            journal: false,
            remote: None,
        }
    }

    /// The read-heavy mix squeezed onto a tiny working set: every
    /// thread hammers the same handful of blocks, so the same keys are
    /// looked up over and over — the case the per-handle hot-miss
    /// replicas short-circuit. Used by the
    /// `hot_block_contention_threads_*` perf cells.
    pub fn hot_blocks(seed: u64) -> StressConfig {
        StressConfig {
            working_set: 8,
            ..StressConfig::read_heavy(seed)
        }
    }

    /// The full stress configuration used by `repro stress`.
    pub fn standard(seed: u64) -> StressConfig {
        StressConfig {
            vms: 8,
            pools_per_vm: 3,
            ticks: 2_000,
            working_set: 512,
            writes_per_tick: 4,
            puts_per_tick: 12,
            gets_per_tick: 12,
            cache: CacheConfig::mem_and_ssd(4_096, 8_192),
            shards: 16,
            seed,
            journal: false,
            remote: None,
        }
    }

    /// A put-dominant mix with large per-tick batches: the workload the
    /// batched write plane exists for. Most of each tick is one big
    /// `put_many` group, so throughput tracks ops-per-lock-acquisition
    /// rather than per-op dispatch. Capacity comfortably covers the
    /// aggregate working set: the cell prices batching itself
    /// (grouping, amortized journaling, the reservation path), not the
    /// eviction storm `eviction_storm` already measures. Used by the
    /// `batched_put_threads_*` and `mixed_write_scaling_threads_*`
    /// perf cells and the ci.sh write-heavy stress smoke.
    pub fn write_heavy(seed: u64) -> StressConfig {
        StressConfig {
            vms: 8,
            pools_per_vm: 2,
            ticks: 500,
            working_set: 512,
            writes_per_tick: 2,
            puts_per_tick: 64,
            gets_per_tick: 2,
            cache: CacheConfig::mem_and_ssd(16_384, 32_768),
            shards: 16,
            seed,
            journal: false,
            remote: None,
        }
    }

    /// The smoke mix with every pool bound to a healthy remote chunk
    /// store: cold misses now hit the simulated CDN under the full
    /// fault-tolerance stack. Used by `repro remote` and the remote
    /// determinism property tests.
    pub fn remote_smoke(seed: u64) -> StressConfig {
        StressConfig::smoke(seed).with_remote(RemoteSetup::for_driver(seed ^ 0xCD4))
    }

    /// Attaches a remote chunk store to the run.
    pub fn with_remote(mut self, remote: RemoteSetup) -> StressConfig {
        self.remote = Some(remote);
        self
    }

    /// Hypercall operations one VM issues over the whole run.
    pub fn ops_per_vm(&self) -> u64 {
        self.ticks * (self.writes_per_tick + self.puts_per_tick + self.gets_per_tick)
    }

    fn vm_weight(i: u32) -> u64 {
        100 + 50 * (i as u64 % 3)
    }

    fn pool_policy(vm_idx: u32, pool_idx: u32) -> CachePolicy {
        match (vm_idx + pool_idx) % 3 {
            0 => CachePolicy::mem(100),
            1 => CachePolicy::ssd(80),
            _ => CachePolicy::hybrid(60),
        }
    }

    fn file_of(&self, vm_idx: u32, pool_idx: u32) -> FileId {
        FileId(1 + vm_idx as u64 * self.pools_per_vm as u64 + pool_idx as u64)
    }
}

/// One guest VM's driver state: its channel, its private RNG stream and
/// the authoritative disk model backing the stale-read oracle.
struct VmWorker {
    vm: VmId,
    channel: HypercallChannel,
    rng: SimRng,
    pools: Vec<PoolId>,
    files: Vec<FileId>,
    /// Per pool: the version each block last had written to disk.
    models: Vec<FxHashMap<BlockAddr, PageVersion>>,
    working_set: u64,
    writes_per_tick: u64,
    puts_per_tick: u64,
    gets_per_tick: u64,
    stale_reads: u64,
    ops: u64,
}

impl VmWorker {
    /// Runs one tick against `backend`: a write batch (version bumps +
    /// `flush_many`), a put batch and a get batch checked against the
    /// disk model.
    fn tick(&mut self, backend: &mut dyn SecondChanceCache, tick: u64) {
        let now = SimTime::from_nanos(tick.wrapping_mul(1_000));
        let pi = (tick % self.pools.len() as u64) as usize;
        let pool = self.pools[pi];
        let file = self.files[pi];

        // Guest writes: the disk version moves, so the cached clean copy
        // (if any) must be invalidated — one batched flush hypercall.
        let mut written = Vec::with_capacity(self.writes_per_tick as usize);
        for _ in 0..self.writes_per_tick {
            let addr = BlockAddr::new(file, self.rng.next_below(self.working_set));
            let version = self.models[pi].entry(addr).or_insert(PageVersion::INITIAL);
            *version = version.bump();
            written.push(addr);
        }
        self.channel.flush_many(backend, pool, &written);

        // Page-cache evictions: store the current disk version.
        let mut puts = Vec::with_capacity(self.puts_per_tick as usize);
        for _ in 0..self.puts_per_tick {
            let addr = BlockAddr::new(file, self.rng.next_below(self.working_set));
            let version = self.models[pi]
                .get(&addr)
                .copied()
                .unwrap_or(PageVersion::INITIAL);
            puts.push((addr, version));
        }
        self.channel.put_many(backend, now, pool, &puts);

        // Lookups, each hit checked against the model (stale-read
        // oracle): a hit must carry the exact modeled version.
        let mut lookups = Vec::with_capacity(self.gets_per_tick as usize);
        for _ in 0..self.gets_per_tick {
            lookups.push(BlockAddr::new(file, self.rng.next_below(self.working_set)));
        }
        let outcomes = self.channel.get_many(backend, now, pool, &lookups);
        for (addr, outcome) in lookups.iter().zip(&outcomes) {
            if let GetOutcome::Hit { version, .. } = outcome {
                let expected = self.models[pi]
                    .get(addr)
                    .copied()
                    .unwrap_or(PageVersion::INITIAL);
                if *version != expected {
                    self.stale_reads += 1;
                }
            }
        }

        self.ops += self.writes_per_tick + self.puts_per_tick + self.gets_per_tick;
    }

    /// Runs a *killed* tick: the crash cuts the hypercall stream after
    /// `budget` batches-worth of progress. The write batch is
    /// all-or-nothing (`budget == 0` skips it entirely) because a guest
    /// write and its invalidating flush hypercall are one unit — a disk
    /// model that moved without its flush having been issued would make
    /// the oracle report false staleness. The put batch is then cut
    /// mid-`put_many` (a prefix of the batch lands), then the get
    /// batch; whatever the budget doesn't reach was never issued.
    fn partial_tick(&mut self, backend: &mut dyn SecondChanceCache, tick: u64, budget: u64) {
        if budget == 0 {
            return;
        }
        let now = SimTime::from_nanos(tick.wrapping_mul(1_000));
        let pi = (tick % self.pools.len() as u64) as usize;
        let pool = self.pools[pi];
        let file = self.files[pi];

        let mut written = Vec::with_capacity(self.writes_per_tick as usize);
        for _ in 0..self.writes_per_tick {
            let addr = BlockAddr::new(file, self.rng.next_below(self.working_set));
            let version = self.models[pi].entry(addr).or_insert(PageVersion::INITIAL);
            *version = version.bump();
            written.push(addr);
        }
        self.channel.flush_many(backend, pool, &written);
        let mut budget = budget - 1;

        let put_count = budget.min(self.puts_per_tick);
        budget -= put_count;
        let mut puts = Vec::with_capacity(put_count as usize);
        for _ in 0..put_count {
            let addr = BlockAddr::new(file, self.rng.next_below(self.working_set));
            let version = self.models[pi]
                .get(&addr)
                .copied()
                .unwrap_or(PageVersion::INITIAL);
            puts.push((addr, version));
        }
        self.channel.put_many(backend, now, pool, &puts);

        let get_count = budget.min(self.gets_per_tick);
        let mut lookups = Vec::with_capacity(get_count as usize);
        for _ in 0..get_count {
            lookups.push(BlockAddr::new(file, self.rng.next_below(self.working_set)));
        }
        let outcomes = self.channel.get_many(backend, now, pool, &lookups);
        for (addr, outcome) in lookups.iter().zip(&outcomes) {
            if let GetOutcome::Hit { version, .. } = outcome {
                let expected = self.models[pi]
                    .get(addr)
                    .copied()
                    .unwrap_or(PageVersion::INITIAL);
                if *version != expected {
                    self.stale_reads += 1;
                }
            }
        }

        self.ops += self.writes_per_tick + put_count + get_count;
    }
}

/// A cache engine under test, with the inherent (non-trait) surface the
/// driver needs: weight registration and the resident-entry dump.
enum Engine {
    Serial(Box<DoubleDeckerCache>),
    Sharded(Box<ShardedCache>),
}

impl Engine {
    fn build(cache: CacheConfig, kind: EngineKind, journal: bool) -> Engine {
        let mut engine = match kind {
            EngineKind::Serial => Engine::Serial(Box::new(DoubleDeckerCache::new(cache))),
            EngineKind::Sharded { shards } => {
                Engine::Sharded(Box::new(ShardedCache::new(cache, shards)))
            }
        };
        if journal {
            match &mut engine {
                Engine::Serial(c) => c.enable_journal(),
                Engine::Sharded(c) => c.enable_journal(),
            }
        }
        engine
    }

    /// Closes one virtual-time tick: on the sharded plane this is the
    /// group-commit point (sync every shard segment, publish the commit
    /// epoch). The serial engine syncs per operation, so its tick is a
    /// no-op — the returned watermarks differ, but the per-VM flush
    /// epochs the contract compares do not.
    fn commit_tick(&self) {
        match self {
            Engine::Serial(_) => {}
            Engine::Sharded(c) => {
                c.commit_tick();
            }
        }
    }

    fn add_vm(&mut self, vm: VmId, weight: u64) {
        match self {
            Engine::Serial(c) => c.add_vm(vm, weight),
            Engine::Sharded(c) => c.add_vm(vm, weight),
        }
    }

    fn backend(&mut self) -> &mut dyn SecondChanceCache {
        match self {
            Engine::Serial(c) => c.as_mut(),
            Engine::Sharded(c) => c.as_mut(),
        }
    }

    fn entries(&self) -> Vec<(VmId, PoolId, BlockAddr, PageVersion)> {
        match self {
            Engine::Serial(c) => c.entries(),
            Engine::Sharded(c) => c.entries(),
        }
    }

    /// Registers `setup`'s chunk store (with its fault schedule) and
    /// returns the id to bind pools against.
    fn attach_remote(&mut self, setup: &RemoteSetup) -> RemoteId {
        let mut store = ChunkStore::new(RemoteId(1), setup.config);
        if let Some(faults) = &setup.faults {
            store = store.with_faults(faults.clone());
        }
        match self {
            Engine::Serial(c) => c.register_remote(store),
            Engine::Sharded(c) => c.register_remote(store),
        }
        .expect("fresh registry accepts the store")
    }

    fn bind_remote(&mut self, vm: VmId, pool: PoolId, remote: RemoteId, fetch: RemoteFetchConfig) {
        match self {
            Engine::Serial(c) => c.bind_remote(vm, pool, remote, fetch),
            Engine::Sharded(c) => c.bind_remote(vm, pool, remote, fetch),
        }
        .expect("freshly created pool binds cleanly")
    }

    fn remote_totals(&self) -> RemoteCounters {
        match self {
            Engine::Serial(c) => c.remote_totals(),
            Engine::Sharded(c) => c.remote_totals(),
        }
    }

    fn wear_totals(&self) -> WearCounters {
        match self {
            Engine::Serial(c) => c.wear_totals(),
            Engine::Sharded(c) => c.wear_totals(),
        }
    }

    /// Demotes TTL-stale SSD entries on both engines at the same
    /// deterministic point (tick boundaries). A no-op unless the config
    /// set an `ssd_ttl`.
    fn ttl_sweep(&mut self) -> u64 {
        match self {
            Engine::Serial(c) => c.ttl_sweep(),
            Engine::Sharded(c) => c.ttl_sweep(),
        }
    }
}

/// Builds the VM workers and registers VMs + pools on `engine`. Pool
/// creation order is VM-major, so pool ids line up across engines.
fn build_workers(cfg: &StressConfig, engine: &mut Engine) -> Vec<VmWorker> {
    let mut root = SimRng::new(cfg.seed);
    let remote_id = cfg.remote.as_ref().map(|setup| engine.attach_remote(setup));
    let mut workers = Vec::with_capacity(cfg.vms as usize);
    for i in 0..cfg.vms {
        let vm = VmId(i);
        engine.add_vm(vm, StressConfig::vm_weight(i));
        let mut pools = Vec::with_capacity(cfg.pools_per_vm as usize);
        let mut files = Vec::with_capacity(cfg.pools_per_vm as usize);
        for p in 0..cfg.pools_per_vm {
            let pool = engine
                .backend()
                .create_pool(vm, StressConfig::pool_policy(i, p));
            if let (Some(id), Some(setup)) = (remote_id, &cfg.remote) {
                engine.bind_remote(vm, pool, id, setup.fetch);
            }
            pools.push(pool);
            files.push(cfg.file_of(i, p));
        }
        workers.push(VmWorker {
            vm,
            channel: HypercallChannel::new(vm),
            rng: root.fork(i as u64),
            models: vec![FxHashMap::default(); cfg.pools_per_vm as usize],
            pools,
            files,
            working_set: cfg.working_set,
            writes_per_tick: cfg.writes_per_tick,
            puts_per_tick: cfg.puts_per_tick,
            gets_per_tick: cfg.gets_per_tick,
            stale_reads: 0,
            ops: 0,
        });
    }
    workers
}

/// FNV-1a over the resident-entry dump — a compact fingerprint of the
/// entire cache contents for the byte-identity check.
fn entries_digest(entries: &[(VmId, PoolId, BlockAddr, PageVersion)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for &(vm, pool, addr, version) in entries {
        eat(vm.0 as u64);
        eat(pool.0 as u64);
        eat(addr.file.0);
        eat(addr.block);
        eat(version.0);
    }
    hash
}

/// The canonical per-run report: every observable the determinism
/// contract covers, rendered as stable JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Pretty-printed JSON; byte-identical across engines for the same
    /// [`StressConfig`].
    pub json: String,
    /// Stale reads the oracle observed (always 0 for a healthy engine).
    pub stale_reads: u64,
}

fn mode_name(mode: PartitionMode) -> &'static str {
    match mode {
        PartitionMode::DoubleDecker => "doubledecker",
        PartitionMode::Global => "global",
        PartitionMode::Strict => "strict",
    }
}

fn render_report(cfg: &StressConfig, engine: &Engine, workers: &[VmWorker]) -> EquivalenceReport {
    let mut root = Json::object();
    let mut config = Json::object();
    config.set("vms", cfg.vms);
    config.set("pools_per_vm", cfg.pools_per_vm);
    config.set("ticks", cfg.ticks);
    config.set("working_set", cfg.working_set);
    config.set("mode", mode_name(cfg.cache.mode));
    config.set("seed", cfg.seed);
    root.set("config", config);

    let mut stale_total = 0;
    let mut vm_rows = Vec::with_capacity(workers.len());
    for w in workers {
        let mut row = Json::object();
        row.set("vm", w.vm.0);
        let c = w.channel.counters();
        row.set("calls", c.calls);
        row.set("gets", c.gets);
        row.set("get_hits", c.get_hits);
        row.set("puts", c.puts);
        row.set("put_stores", c.put_stores);
        row.set("flushes", c.flushes);
        // Durability watermark the channel last observed. 0 on the
        // volatile plane (both engines), a real epoch when journaling —
        // either way part of the byte-identical contract.
        row.set("flush_epoch", w.channel.flush_epoch());
        row.set("stale_reads", w.stale_reads);
        row.set("ops", w.ops);
        stale_total += w.stale_reads;
        vm_rows.push(row);
    }
    root.set("vms_report", vm_rows);
    root.set("entries_count", engine.entries().len());
    root.set(
        "entries_digest",
        format!("{:016x}", entries_digest(&engine.entries())),
    );
    root.set("remote_report", remote_totals_json(&engine.remote_totals()));
    // Endurance plane: device-level wear and admission decisions are
    // part of the byte-identical contract — the engines must charge the
    // same writes and reject the same spills.
    root.set(
        "wear_report",
        ddc_metrics::snapshot_json(&engine.wear_totals()),
    );
    EquivalenceReport {
        json: root.to_string_pretty(),
        stale_reads: stale_total,
    }
}

/// Renders the aggregate remote fetch counters — all zero when no
/// remote is attached, and part of the byte-identical equivalence
/// contract when one is: the entire fault-tolerance stack (retry
/// counts, hedge decisions, breaker transitions, shed fetches) must
/// agree between the serial and sharded engines.
fn remote_totals_json(t: &RemoteCounters) -> Json {
    ddc_metrics::snapshot_json(t)
}

/// Appends the per-pool stats rows to a rendered report. Separate from
/// [`render_report`] because `pool_stats` needs `&Engine` after the
/// drive loop released the workers.
fn pool_stats_json(engine: &mut Engine, workers: &[VmWorker]) -> Json {
    let mut rows = Vec::new();
    for w in workers {
        for &pool in &w.pools {
            if let Some(s) = engine.backend().pool_stats(w.vm, pool) {
                let mut row = Json::object();
                row.set("vm", w.vm.0);
                row.set("pool", pool.0);
                row.set("mem_pages", s.mem_pages);
                row.set("ssd_pages", s.ssd_pages);
                row.set("entitlement_pages", s.entitlement_pages);
                row.set("gets", s.gets);
                row.set("hits", s.hits);
                row.set("puts", s.puts);
                row.set("evictions", s.evictions);
                row.set("ssd_writes", s.ssd_writes);
                rows.push(row);
            }
        }
    }
    rows.into()
}

/// Runs the seeded workload single-threaded (round-robin over VMs)
/// against the chosen engine and returns the canonical report.
///
/// Running this once with [`EngineKind::Serial`] and once with
/// [`EngineKind::Sharded`] must produce byte-identical `json` — the
/// determinism contract of the sharded plane.
pub fn run_equivalence(cfg: &StressConfig, kind: EngineKind) -> EquivalenceReport {
    let mut engine = Engine::build(cfg.cache, kind, cfg.journal);
    let mut workers = build_workers(cfg, &mut engine);
    for tick in 0..cfg.ticks {
        for w in &mut workers {
            w.tick(engine.backend(), tick);
        }
        // TTL demotion runs at the tick boundary on both engines — a
        // deterministic point outside any threaded fast path.
        if cfg.cache.admission.ssd_ttl > 0 {
            engine.ttl_sweep();
        }
        engine.commit_tick();
    }
    let mut report = render_report(cfg, &engine, &workers);
    // Splice the pool-stats rows into the JSON (stable order).
    let mut root = Json::parse(&report.json).expect("own JSON parses");
    root.set("pools_report", pool_stats_json(&mut engine, &workers));
    report.json = root.to_string_pretty();
    report
}

/// Result of a multi-threaded stress run.
#[derive(Clone, Debug)]
pub struct StressOutcome {
    /// OS threads the run used.
    pub threads: usize,
    /// Total hypercall operations issued across all VMs.
    pub total_ops: u64,
    /// Wall-clock time of the drive phase (setup and audit excluded).
    pub elapsed: Duration,
    /// Stale reads the oracle observed across all VMs (gate: 0).
    pub stale_reads: u64,
    /// Findings from the cross-shard auditor after the join (gate:
    /// empty).
    pub findings: Vec<AuditFinding>,
    /// Two-phase evictions whose phase-1 snapshot went stale and were
    /// re-tried (diagnostic, not part of the determinism report).
    pub two_phase_retries: u64,
    /// Two-phase evictions that exhausted their retry budget and fell
    /// back to the lock-all path (diagnostic).
    pub two_phase_fallbacks: u64,
    /// Group-commit epoch published by the last tick (diagnostic; 0 on
    /// the volatile plane).
    pub commit_epoch: u64,
    /// Journal checkpoint rewrites triggered during the run
    /// (diagnostic; 0 on the volatile plane).
    pub journal_compactions: u64,
    /// Lookups answered with no lock at all, summed over every thread's
    /// handle (diagnostic, DESIGN.md §15).
    pub lockfree_misses: u64,
    /// Of those, lookups served straight from a per-handle hot-miss
    /// replica without probing the seqlock table (diagnostic).
    pub replica_hits: u64,
    /// Torn-snapshot retries across every shard's read plane
    /// (diagnostic).
    pub seqlock_retries: u64,
    /// Tree-guided Global evictions that re-ran the tournament after
    /// locking a stale winner (diagnostic).
    pub front_tree_retries: u64,
    /// Tree-guided Global evictions that fell back to the lock-all scan
    /// (diagnostic).
    pub front_tree_fallbacks: u64,
    /// Aggregate remote fetch counters across every binding (all zero
    /// when the run had no remote attached).
    pub remote: RemoteCounters,
    /// Operations that entered through a `*_many` batch entry point
    /// (diagnostic, DESIGN.md §18).
    pub batched_ops: u64,
    /// Shard-lock acquisitions made on behalf of whole batch groups
    /// (diagnostic).
    pub batch_lock_acquisitions: u64,
    /// Journal appends that flushed a whole scratch run in one call
    /// (diagnostic).
    pub batch_journal_appends: u64,
    /// Reserved puts whose placement hint went stale and were re-tried
    /// (diagnostic).
    pub reservation_retries: u64,
    /// Reserved puts that exhausted their retry budget and fell back to
    /// the lock-all path (diagnostic).
    pub reservation_fallbacks: u64,
}

impl StressOutcome {
    /// Aggregate operation throughput of the drive phase.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 / secs
        }
    }

    /// True when the run passed both gates: a clean audit and zero
    /// stale reads.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_reads == 0
    }
}

/// Drives the workload with `threads` OS threads sharing one
/// [`ShardedCache`] (VMs distributed round-robin), then audits.
///
/// The total work is independent of `threads`, so outcomes at
/// different thread counts are comparable for scaling measurements.
pub fn run_stress(cfg: &StressConfig, threads: usize) -> StressOutcome {
    let threads = threads.max(1);
    let cache = ShardedCache::new(cfg.cache, cfg.shards);
    if cfg.journal {
        cache.enable_journal();
    }
    let mut engine = Engine::Sharded(Box::new(cache.clone()));
    let workers = build_workers(cfg, &mut engine);

    // Deal the workers round-robin into per-thread hands.
    let mut hands: Vec<Vec<VmWorker>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, w) in workers.into_iter().enumerate() {
        hands[i % threads].push(w);
    }

    let ticks = cfg.ticks;
    let started = std::time::Instant::now();
    let joined: Vec<(Vec<VmWorker>, (u64, u64))> = std::thread::scope(|scope| {
        let handles: Vec<_> = hands
            .into_iter()
            .map(|mut hand| {
                let mut backend = cache.clone();
                let journal = cfg.journal;
                scope.spawn(move || {
                    for tick in 0..ticks {
                        for w in &mut hand {
                            w.tick(&mut backend, tick);
                        }
                        if journal {
                            // Group commit: every thread closes its own
                            // tick; the epoch cell is monotone, so
                            // concurrent ticks only ever advance it.
                            backend.commit_tick();
                        }
                    }
                    // The hot-miss replica dies with this thread's
                    // handle; salvage its counters for the outcome.
                    let local = backend.local_read_stats();
                    (hand, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut total_ops = 0;
    let mut stale_reads = 0;
    let mut lockfree_misses = 0;
    let mut replica_hits = 0;
    for (hand, (lf, rh)) in &joined {
        for w in hand {
            total_ops += w.ops;
            stale_reads += w.stale_reads;
        }
        lockfree_misses += lf;
        replica_hits += rh;
    }
    StressOutcome {
        threads,
        total_ops,
        elapsed,
        stale_reads,
        findings: audit::audit(&cache),
        two_phase_retries: cache.two_phase_retries(),
        two_phase_fallbacks: cache.two_phase_fallbacks(),
        commit_epoch: cache.commit_epoch(),
        journal_compactions: cache.journal_compactions(),
        lockfree_misses,
        replica_hits,
        seqlock_retries: cache.seqlock_retries(),
        front_tree_retries: cache.front_tree_retries(),
        front_tree_fallbacks: cache.front_tree_fallbacks(),
        remote: cache.remote_totals(),
        batched_ops: cache.batched_ops(),
        batch_lock_acquisitions: cache.batch_lock_acquisitions(),
        batch_journal_appends: cache.batch_journal_appends(),
        reservation_retries: cache.reservation_retries(),
        reservation_fallbacks: cache.reservation_fallbacks(),
    }
}

/// Deterministic crash-and-recovery harness for the sharded plane: the
/// seeded stress workload (journaling forced on), with the ability to
/// kill the plane mid-tick at a chosen hypercall boundary, snapshot the
/// per-shard segment images, recover a fresh [`ShardedCache`] from
/// (possibly mutilated) copies of them, and keep driving the *same*
/// guest workers — whose disk models then back the stale-entry oracle
/// over the survivor.
///
/// The workers' models and flush epochs are read *after* the kill, which
/// is sound even against a *mid-drive* segment snapshot: any model bump
/// after the snapshot travelled with a flush hypercall that raised the
/// guest's epoch past every record in the snapshot, so recovery's
/// per-VM epoch discard covers it ("forget, never lie").
pub struct CrashHarness {
    cfg: StressConfig,
    cache: ShardedCache,
    workers: Vec<VmWorker>,
}

impl CrashHarness {
    /// Builds the journaled sharded plane plus its guest workers.
    pub fn new(cfg: &StressConfig) -> CrashHarness {
        let mut cfg = cfg.clone();
        cfg.journal = true;
        let mut engine = Engine::build(cfg.cache, EngineKind::Sharded { shards: cfg.shards }, true);
        let workers = build_workers(&cfg, &mut engine);
        let Engine::Sharded(cache) = engine else {
            unreachable!("harness builds the sharded engine")
        };
        CrashHarness {
            cfg,
            cache: *cache,
            workers,
        }
    }

    /// The live cache (e.g. to install an eviction hook that snapshots
    /// the segments *between the two eviction phases*).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Drives ticks `[from, to)` single-threaded, round-robin over VMs,
    /// with a group commit closing each tick.
    pub fn drive(&mut self, from: u64, to: u64) {
        let mut backend = self.cache.clone();
        for tick in from..to {
            for w in &mut self.workers {
                w.tick(&mut backend, tick);
            }
            self.cache.commit_tick();
        }
    }

    /// Drives ticks `[from, to)` with `threads` OS threads sharing the
    /// cache (VMs dealt round-robin), each thread group-committing its
    /// own ticks. Worker order is restored after the join so subsequent
    /// single-threaded driving stays deterministic.
    pub fn drive_threaded(&mut self, from: u64, to: u64, threads: usize) {
        let threads = threads.max(1);
        let workers = std::mem::take(&mut self.workers);
        let mut hands: Vec<Vec<VmWorker>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, w) in workers.into_iter().enumerate() {
            hands[i % threads].push(w);
        }
        let cache = &self.cache;
        let joined: Vec<Vec<VmWorker>> = std::thread::scope(|scope| {
            let handles: Vec<_> = hands
                .into_iter()
                .map(|mut hand| {
                    let mut backend = cache.clone();
                    scope.spawn(move || {
                        for tick in from..to {
                            for w in &mut hand {
                                w.tick(&mut backend, tick);
                            }
                            backend.commit_tick();
                        }
                        hand
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("crash-harness thread panicked"))
                .collect()
        });
        let mut workers: Vec<VmWorker> = joined.into_iter().flatten().collect();
        workers.sort_by_key(|w| w.vm.0);
        self.workers = workers;
    }

    /// Runs tick `tick` but crashes mid-flight: workers before
    /// `kill_vm` complete the tick, the killed VM issues only a
    /// `budget`-bounded prefix of its hypercalls (see
    /// [`VmWorker::partial_tick`] — the cut can land mid-`put_many`),
    /// and later workers plus the tick's group commit never happen, so
    /// everything since the previous commit epoch is at the mercy of
    /// the segment snapshot.
    pub fn drive_killed_tick(&mut self, tick: u64, kill_vm: usize, budget: u64) {
        let mut backend = self.cache.clone();
        for (i, w) in self.workers.iter_mut().enumerate() {
            if i < kill_vm {
                w.tick(&mut backend, tick);
            } else if i == kill_vm {
                w.partial_tick(&mut backend, tick, budget);
            }
        }
    }

    /// Snapshot of the raw per-shard segment images (synced or not).
    pub fn segment_images(&self) -> Vec<Vec<u8>> {
        self.cache
            .journal_images()
            .expect("harness always journals")
    }

    /// Each guest's flush-epoch watermark — what a real guest would
    /// present to the hypervisor after the restart.
    pub fn guest_epochs(&self) -> Vec<(VmId, u64)> {
        self.workers
            .iter()
            .map(|w| (w.vm, w.channel.flush_epoch()))
            .collect()
    }

    /// Replaces the dead plane with one recovered from `segments`
    /// (typically mutilated copies of [`CrashHarness::segment_images`])
    /// and the guests' epoch watermarks, then re-seeds each guest
    /// channel with its re-journaled checkpoint epoch (monotone, like
    /// the hypervisor's `note_recovery_epoch`).
    pub fn recover(&mut self, segments: &[Vec<u8>]) -> ShardedRecoveryReport {
        let epochs = self.guest_epochs();
        let (cache, report) = ShardedCache::recover(self.cfg.cache, segments, &epochs);
        for w in &mut self.workers {
            let renewed = report
                .new_epochs
                .iter()
                .find(|(vm, _)| *vm == w.vm)
                .map(|&(_, e)| e)
                .unwrap_or(0);
            w.channel
                .set_flush_epoch(renewed.max(w.channel.flush_epoch()));
        }
        self.cache = cache;
        if let Some(setup) = self.cfg.remote.clone() {
            self.reattach_remote(&setup);
        }
        report
    }

    /// Re-establishes the remote tier on a freshly recovered plane.
    /// Bindings are not journaled, so recovery drops them; re-binding
    /// consumes the localization stash that replaying the surviving
    /// flush records accumulated. That stash can be *short* — flush
    /// records past the torn tail are gone while the guests' disks
    /// moved — so each guest then re-flushes every block it knows it
    /// wrote (its authoritative write set), exactly what a reconnecting
    /// guest does to re-establish the invalidation horizon. Only after
    /// that may the remote serve again ("forget, never lie").
    fn reattach_remote(&mut self, setup: &RemoteSetup) {
        let mut engine = Engine::Sharded(Box::new(self.cache.clone()));
        let id = engine.attach_remote(setup);
        for w in &self.workers {
            for &pool in &w.pools {
                engine.bind_remote(w.vm, pool, id, setup.fetch);
            }
        }
        let mut backend = self.cache.clone();
        for w in &mut self.workers {
            for (pi, &pool) in w.pools.iter().enumerate() {
                let mut written: Vec<BlockAddr> = w.models[pi]
                    .iter()
                    .filter(|&(_, &v)| v != PageVersion::INITIAL)
                    .map(|(&addr, _)| addr)
                    .collect();
                written.sort_unstable_by_key(|a| (a.file, a.block));
                w.channel.flush_many(&mut backend, pool, &written);
            }
        }
        self.cache.commit_tick();
    }

    /// Stale-entry oracle over the survivor: every resident entry must
    /// carry exactly the version its owner's disk model holds. Losing
    /// entries is always legal; a wrong version never is. Entries whose
    /// VM or pool no guest recognises count as stale.
    pub fn stale_entries(&self) -> u64 {
        self.stale_entries_in(&self.cache)
    }

    /// The same oracle against an *external* recovered cache — lets a
    /// prefix sweep recover many candidate caches from mutilated copies
    /// of [`CrashHarness::segment_images`] and judge each against this
    /// harness's disk models without consuming the harness.
    pub fn stale_entries_in(&self, cache: &ShardedCache) -> u64 {
        let mut stale = 0;
        for (vm, pool, addr, version) in cache.entries() {
            let Some(w) = self.workers.iter().find(|w| w.vm == vm) else {
                stale += 1;
                continue;
            };
            let Some(pi) = w.pools.iter().position(|&p| p == pool) else {
                stale += 1;
                continue;
            };
            let expected = w.models[pi]
                .get(&addr)
                .copied()
                .unwrap_or(PageVersion::INITIAL);
            if version != expected {
                stale += 1;
            }
        }
        stale
    }

    /// Stale reads the get-path oracle observed across all guests.
    pub fn stale_reads(&self) -> u64 {
        self.workers.iter().map(|w| w.stale_reads).sum()
    }

    /// Total hypercall operations issued across all guests.
    pub fn total_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.ops).sum()
    }

    /// Runs the cross-shard auditor over the live plane.
    pub fn audit(&self) -> Vec<AuditFinding> {
        audit::audit(&self.cache)
    }

    /// Aggregate remote fetch counters across every binding (all zero
    /// when the config had no remote attached). Note that
    /// [`CrashHarness::recover`] re-registers a *fresh* store and fresh
    /// bindings, so the totals restart from zero at each recovery.
    pub fn remote_totals(&self) -> RemoteCounters {
        self.cache.remote_totals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_single_thread_matches_serial_byte_for_byte() {
        for mode in [
            PartitionMode::DoubleDecker,
            PartitionMode::Global,
            PartitionMode::Strict,
        ] {
            let mut cfg = StressConfig::smoke(7);
            cfg.cache = cfg.cache.with_mode(mode);
            let serial = run_equivalence(&cfg, EngineKind::Serial);
            let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards: 8 });
            assert_eq!(
                serial.json, sharded.json,
                "{mode:?}: sharded run diverged from the serial engine"
            );
            assert_eq!(serial.stale_reads, 0);
            assert_eq!(sharded.stale_reads, 0);
        }
    }

    #[test]
    fn one_shard_also_matches() {
        let cfg = StressConfig::smoke(21);
        let serial = run_equivalence(&cfg, EngineKind::Serial);
        let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards: 1 });
        assert_eq!(serial.json, sharded.json);
    }

    #[test]
    fn stress_smoke_is_clean_across_thread_counts() {
        for threads in [1, 2, 4] {
            let out = run_stress(&StressConfig::smoke(13), threads);
            assert!(
                out.findings.is_empty(),
                "{threads} threads: audit findings {:?}",
                out.findings
            );
            assert_eq!(out.stale_reads, 0, "{threads} threads: stale reads");
            assert_eq!(out.total_ops, StressConfig::smoke(13).ops_per_vm() * 4);
        }
    }

    #[test]
    fn read_heavy_mix_matches_serial_and_serves_lock_free() {
        // The lock-free read plane must not perturb the determinism
        // contract on its own target workload...
        let cfg = StressConfig::read_heavy(5);
        let serial = run_equivalence(&cfg, EngineKind::Serial);
        let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards: 16 });
        assert_eq!(serial.json, sharded.json);
        // ...and under threads it must actually serve misses without a
        // lock, including straight from the hot-miss replicas on the
        // tiny-working-set variant.
        let out = run_stress(&StressConfig::hot_blocks(5), 4);
        assert!(out.clean(), "{:?}", out.findings);
        assert!(out.lockfree_misses > 0, "read plane never served a miss");
        assert!(out.replica_hits > 0, "hot replicas never hit");
        assert!(out.replica_hits <= out.lockfree_misses);
    }

    #[test]
    fn equivalence_report_is_reproducible() {
        let cfg = StressConfig::smoke(99);
        let a = run_equivalence(&cfg, EngineKind::Sharded { shards: 4 });
        let b = run_equivalence(&cfg, EngineKind::Sharded { shards: 4 });
        assert_eq!(a.json, b.json);
    }

    #[test]
    fn journaled_equivalence_holds_and_reports_real_epochs() {
        let mut cfg = StressConfig::smoke(7);
        cfg.journal = true;
        let serial = run_equivalence(&cfg, EngineKind::Serial);
        let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards: 8 });
        assert_eq!(
            serial.json, sharded.json,
            "journaled planes diverged (flush epochs are part of the report)"
        );
        assert!(
            serial.json.contains("\"flush_epoch\""),
            "report must carry the per-VM flush-epoch watermark"
        );
        // The watermarks must be real (non-zero) epochs, not the
        // volatile plane's 0 stub.
        let root = Json::parse(&sharded.json).expect("own JSON parses");
        let rows = root.get("vms_report").and_then(Json::as_array).unwrap();
        for row in rows {
            let epoch = row.get("flush_epoch").and_then(Json::as_u64).unwrap();
            assert!(epoch > 0, "journaled flush acked with the epoch-0 stub");
        }
    }

    #[test]
    fn journaled_stress_group_commits_and_stays_clean() {
        let mut cfg = StressConfig::smoke(31);
        cfg.journal = true;
        let out = run_stress(&cfg, 4);
        assert!(out.clean(), "findings: {:?}", out.findings);
        assert!(out.commit_epoch > 0, "no group commit ever published");
    }

    #[test]
    fn remote_equivalence_serial_vs_sharded() {
        let cfg = StressConfig::remote_smoke(11);
        let serial = run_equivalence(&cfg, EngineKind::Serial);
        let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards: 8 });
        assert_eq!(
            serial.json, sharded.json,
            "remote fetch stack diverged between engines"
        );
        assert_eq!(serial.stale_reads, 0);
        let root = Json::parse(&serial.json).expect("own JSON parses");
        let served = root
            .get("remote_report")
            .and_then(|r| r.get("served"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(served > 0, "remote never served a cold miss");
    }

    #[test]
    fn remote_stress_is_clean_across_thread_counts() {
        for threads in [1, 4] {
            let out = run_stress(&StressConfig::remote_smoke(23), threads);
            assert!(out.clean(), "{threads} threads: {:?}", out.findings);
            assert!(out.remote.served > 0, "{threads} threads: nothing served");
        }
    }

    #[test]
    fn remote_partition_is_fail_open_and_deterministic() {
        use ddc_sim::FaultKind;
        let faults = FaultSchedule::new(99).with_window(SimTime::ZERO, None, FaultKind::Partition);
        let cfg =
            StressConfig::smoke(17).with_remote(RemoteSetup::for_driver(3).with_faults(faults));
        let serial = run_equivalence(&cfg, EngineKind::Serial);
        let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards: 8 });
        assert_eq!(serial.json, sharded.json);
        assert_eq!(serial.stale_reads, 0, "partition must never serve stale");
        let out = run_stress(&cfg, 4);
        assert!(out.clean(), "{:?}", out.findings);
        assert!(out.remote.breaker_trips > 0, "partition never tripped");
        assert_eq!(out.remote.served, 0, "partitioned remote served data");
    }

    #[test]
    fn crash_recover_with_remote_rebinds_without_staleness() {
        let mut h = CrashHarness::new(&StressConfig::remote_smoke(0xBEEF));
        h.drive(0, 40);
        h.drive_killed_tick(40, 2, 4);
        let mut segments = h.segment_images();
        let keep = segments[1].len() - segments[1].len() / 8;
        segments[1].truncate(keep);
        let report = h.recover(&segments);
        assert!(report.records_replayed > 0);
        assert_eq!(h.stale_entries(), 0);
        assert!(h.audit().is_empty(), "{:?}", h.audit());
        h.drive_threaded(41, 80, 8);
        assert_eq!(h.stale_reads(), 0, "remote served stale after recovery");
        assert!(h.audit().is_empty(), "{:?}", h.audit());
    }

    #[test]
    fn crash_harness_kill_recover_continue_is_clean() {
        let mut h = CrashHarness::new(&StressConfig::smoke(0xC4A5));
        h.drive(0, 40);
        // Kill mid-tick: VM 0/1 complete tick 40, VM 2 dies mid-put_many
        // (write batch + 3 of its puts land), VM 3 never runs it.
        h.drive_killed_tick(40, 2, 4);
        let mut segments = h.segment_images();
        // Torn tail on shard 1: drop half the unsynced bytes.
        let keep = segments[1].len() - segments[1].len() / 8;
        segments[1].truncate(keep);
        let report = h.recover(&segments);
        assert!(report.records_replayed > 0);
        assert_eq!(h.stale_entries(), 0, "recovery served a stale version");
        assert!(h.audit().is_empty(), "{:?}", h.audit());
        // The survivor keeps serving: 8 threads over the same guests.
        h.drive_threaded(41, 80, 8);
        assert_eq!(h.stale_reads(), 0);
        assert!(h.audit().is_empty(), "{:?}", h.audit());
    }
}
