//! DoubleDecker reproduction: the concurrent serving plane.
//!
//! The serial engine in `ddc-hypercache` models the paper's policies
//! behind one `&mut self`. This crate makes the serving path
//! *concurrent* without changing those policies:
//!
//! * [`sharded`] — [`ShardedCache`], a [`SecondChanceCache`] whose pool
//!   index is split into per-lock shards, with a global atomic pressure
//!   ledger and cross-shard resource-conservative eviction (Algorithm 1
//!   unchanged), plus per-shard journal segments with group commit and
//!   [`ShardedCache::recover`] warm restart (DESIGN.md §14). Reads are
//!   lock-free: definitive misses are answered by a per-shard seqlock
//!   membership table plus per-handle hot replicas (DESIGN.md §15).
//! * [`fronts`] — the tournament tree over per-shard FIFO front
//!   sequences that lets Global-mode eviction find its victim without
//!   locking every shard.
//! * [`driver`] — a multi-threaded VM driver: each guest runs its
//!   hypercall stream on its own OS thread against the shared cache,
//!   with a seeded deterministic-equivalence mode (single-threaded
//!   execution byte-identical to the serial engine), a stress mode
//!   gated by the invariant auditor and a stale-read oracle, and
//!   [`CrashHarness`] — kill the journaled plane mid-tick, recover
//!   from mutilated segment snapshots, keep driving the same guests.
//! * [`audit`] — the cross-shard invariant auditor (ledger accounting,
//!   shard-map placement, per-pool coherence via
//!   `ddc_hypercache::audit_pool_slice`, tombstone counts, entitlement
//!   sums).
//!
//! [`SecondChanceCache`]: ddc_cleancache::SecondChanceCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod driver;
pub mod fronts;
pub mod sharded;

pub use audit::audit;
pub use driver::{
    run_equivalence, run_stress, CrashHarness, EngineKind, EquivalenceReport, RemoteSetup,
    StressConfig, StressOutcome,
};
pub use sharded::{SegmentReplay, ShardedCache, ShardedRecoveryReport};

// Vocabulary re-exports so downstream crates can name the shared types
// without importing every layer.
pub use ddc_cleancache::{
    CachePolicy, GetOutcome, HypercallChannel, PageVersion, PoolId, PutOutcome, SecondChanceCache,
    StoreKind, VmId,
};
pub use ddc_hypercache::{AuditFinding, CacheConfig, PartitionMode};
