//! The sharded hypercache: a concurrent [`SecondChanceCache`] whose index
//! is partitioned by hash of `(VmId, PoolId)` with one lock per shard.
//!
//! # Design
//!
//! The serial [`DoubleDeckerCache`](ddc_hypercache::DoubleDeckerCache)
//! keeps all pools behind one `&mut self`. This crate splits the pool map
//! into `n` shards so that hypercalls from different VMs proceed in
//! parallel:
//!
//! * **Shard map** — a pool lives in shard
//!   `mix(vm, pool) % n` ([`ShardedCache::shard_of`]); every object of the
//!   pool (index slots, FIFO entries, tombstone counters) lives with it.
//! * **Global-pressure ledger** — store occupancy is *global*, not
//!   per-shard: a [`Ledger`] per store tracks `used`/`capacity` with
//!   atomics so the resource-conservative rule ("evict only when the
//!   store itself is full", paper §4.3) keeps working across shards.
//!   Page allocation is a CAS (`used < capacity → used + 1`), so the
//!   store can never oversubscribe no matter how threads interleave.
//! * **Cross-shard eviction** — in DoubleDecker mode a full ledger
//!   triggers *two-phase* eviction: phase 1 snapshots every entity's
//!   usage from lock-free per-pool [`UsageMirror`]s (registry read lock
//!   only, no shard lock) and picks the paper's Algorithm-1 victim
//!   ([`ddc_hypercache::select_victim`]); phase 2 locks only the
//!   victim's home shard, re-validates the pick against a fresh
//!   snapshot, and retries (bounded) if the snapshot went stale —
//!   shrinking the stop-the-world window from all shards to one. Global
//!   mode still locks all shards (its FIFO merge is inherently
//!   cross-shard), as does the bounded fallback when retries run out,
//!   so progress is always guaranteed.
//! * **Lock order** — `registry` before any shard; shards in ascending
//!   index; never acquire a lower-index (or the registry) lock while
//!   holding a higher one. Single-shard fast paths (get, flush,
//!   mem/SSD-policy puts) take only the home shard; the lock-all paths
//!   (eviction, hybrid placement, strict mode, stats, audit) start from
//!   no shard lock held.
//!
//! # Determinism contract
//!
//! Driven from one thread, a `ShardedCache` is *observationally
//! identical* to the serial engine (journal disabled, no fault
//! schedules): same outcomes, same per-pool counters, same eviction
//! victims, same resident entries. The serial engine debug-asserts its
//! cached share tables against a fresh rebuild, and this implementation
//! always rebuilds fresh — so the entitlement inputs provably match. The
//! equivalence is enforced end-to-end by the driver's byte-identical
//! report check ([`crate::driver`]) and the workspace property tests.
//! Under concurrency, outcomes depend on interleaving but every
//! structural invariant still holds (see [`crate::audit`]).
//!
//! # Durability: per-shard segments, group commit (DESIGN.md §14)
//!
//! With [`ShardedCache::enable_journal`] every shard owns its own
//! [`Journal`] segment, appended under that shard's lock. Record
//! *generations* come from one cache-global cell, allocated while the
//! target shard's lock is held — so each segment is generation-monotone
//! and the union of all segments is one **dense** global sequence. Pool-
//! scoped records (puts, takes, evictions, flushes, pool control) go to
//! the pool's home segment, so an entry's whole causal history lives in
//! one segment; VM/store control records go to segment 0. `flush` /
//! `flush_file` return their record's generation as a real, non-zero
//! flush epoch *without* syncing — group commit
//! ([`ShardedCache::commit_tick`]) syncs all segments at virtual-time
//! tick boundaries instead of once per operation. Losing an unsynced
//! flush record is safe: the per-VM epoch discard at
//! [`ShardedCache::recover`] covers everything below the guest's acked
//! epoch, exactly like the serial plane — the cache can forget, never
//! lie. Recovery replays each segment independently (tolerating a torn
//! or corrupt tail per shard), merges by generation, truncates at the
//! first generation gap (a gap proves a suffix of some segment was
//! lost, so everything after it is a possibly-inconsistent future), and
//! re-journals a checkpoint across fresh segments.
//!
//! Driven single-threaded with journaling on, the sharded plane emits
//! the *same record sequence* as the journaled serial engine (same
//! emission points, same live-compaction trigger and checkpoint record
//! order), so flush epochs are value-identical across the two planes —
//! the equivalence contract extends to durability watermarks.
//!
//! Still out of scope (serial-engine only): SSD fault injection +
//! quarantine and in-band memory compression.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};

use ddc_cleancache::{
    CachePolicy, GetOutcome, PageVersion, PoolId, PoolStats, PutOutcome, SecondChanceCache,
    StoreKind, VmId,
};
use ddc_hypercache::index::{Placement, Pool, SlotId, UsageMirror};
use ddc_hypercache::policy::{entitlements, select_victim, select_victim_strict};
use ddc_hypercache::readplane::{ReadPlane, ReadProbe};
use ddc_hypercache::{
    AdmissionConfig, CacheConfig, EntityUsage, PartitionMode, EVICTION_BATCH_PAGES,
};
use ddc_metrics::{BatchCounters, CounterSnapshot};
use ddc_sim::{FxHashMap, SimTime};
use ddc_storage::{
    BlockAddr, ChunkStore, FileId, Journal, JournalRecord, RemoteBinding, RemoteCounters,
    RemoteError, RemoteFetchConfig, RemoteId, RemoteLookup, RemoteRegistry, WearCounters,
};

use crate::fronts::{FrontTree, EMPTY_FRONT};

/// Global page accounting for one store: capacity and used pages shared
/// by every shard. `try_alloc` is a CAS loop, so concurrent puts can
/// never push `used` past `capacity`.
#[derive(Debug)]
pub(crate) struct Ledger {
    capacity: AtomicU64,
    used: AtomicU64,
}

impl Ledger {
    fn new(capacity: u64) -> Ledger {
        Ledger {
            capacity: AtomicU64::new(capacity),
            used: AtomicU64::new(0),
        }
    }

    /// Reserves one page if the store has room. Lock-free.
    fn try_alloc(&self) -> bool {
        let cap = self.capacity.load(Ordering::Relaxed);
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used >= cap {
                return false;
            }
            match self.used.compare_exchange_weak(
                used,
                used + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(cur) => used = cur,
            }
        }
    }

    fn free(&self, pages: u64) {
        if pages > 0 {
            self.used.fetch_sub(pages, Ordering::Relaxed);
        }
    }

    fn has_room(&self) -> bool {
        self.used.load(Ordering::Relaxed) < self.capacity.load(Ordering::Relaxed)
    }

    fn is_disabled(&self) -> bool {
        self.capacity.load(Ordering::Relaxed) == 0
    }

    pub(crate) fn used_pages(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    pub(crate) fn capacity_pages(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Replaces the capacity without touching `used`. Recovery applies
    /// replayed `SetMemCapacity`/`SetSsdCapacity` records with this;
    /// any resulting oversubscription is shrunk after replay.
    fn set_capacity(&self, pages: u64) {
        self.capacity.store(pages, Ordering::Relaxed);
    }
}

/// One shard: the pools that hash here plus their share of the
/// global-mode FIFO (entries are seq-stamped, so the cross-shard merge
/// in [`ShardedCache`] recovers the exact store-wide FIFO order).
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) pools: FxHashMap<(VmId, PoolId), Pool>,
    fifo_mem: VecDeque<(VmId, PoolId, SlotId, u64)>,
    fifo_ssd: VecDeque<(VmId, PoolId, SlotId, u64)>,
    pub(crate) stale_mem: u64,
    pub(crate) stale_ssd: u64,
    /// This shard's journal segment (`None` until
    /// [`ShardedCache::enable_journal`]). Appends happen under the
    /// shard lock with generations from the cache-global cell, so the
    /// segment is generation-monotone.
    pub(crate) journal: Option<Journal>,
    /// Remote bindings of the pools homed here, mutated only under this
    /// shard's lock. With each VM driven by one thread, a binding's
    /// fault-tolerance state evolves in program order regardless of the
    /// thread count — the determinism contract extends to the remote
    /// tier.
    pub(crate) remote_bindings: FxHashMap<(VmId, PoolId), RemoteBinding>,
    /// Flush localization for pools that are not (yet) remote-bound;
    /// consumed by [`ShardedCache::bind_remote`] (recovery replay and
    /// pre-binding runtime flushes land here).
    remote_stash: FxHashMap<(VmId, PoolId), (Vec<BlockAddr>, Vec<FileId>)>,
    /// Wear carried by pools that were destroyed on this shard (plus
    /// checkpoint carry-over corrections). Mutated only under this
    /// shard's lock; device totals sum it across shards, so no
    /// cross-shard lock is ever taken for wear accounting.
    pub(crate) retired_wear: BTreeMap<VmId, WearCounters>,
}

impl Shard {
    fn fifo(&mut self, placement: Placement) -> &mut VecDeque<(VmId, PoolId, SlotId, u64)> {
        match placement {
            Placement::Mem => &mut self.fifo_mem,
            Placement::Ssd => &mut self.fifo_ssd,
        }
    }

    pub(crate) fn fifo_ref(&self, placement: Placement) -> &VecDeque<(VmId, PoolId, SlotId, u64)> {
        match placement {
            Placement::Mem => &self.fifo_mem,
            Placement::Ssd => &self.fifo_ssd,
        }
    }

    pub(crate) fn stale(&self, placement: Placement) -> u64 {
        match placement {
            Placement::Mem => self.stale_mem,
            Placement::Ssd => self.stale_ssd,
        }
    }

    fn note_stale(&mut self, placement: Placement, count: u64) {
        match placement {
            Placement::Mem => self.stale_mem += count,
            Placement::Ssd => self.stale_ssd += count,
        }
    }

    fn note_dead_popped(&mut self, placement: Placement) {
        match placement {
            Placement::Mem => self.stale_mem = self.stale_mem.saturating_sub(1),
            Placement::Ssd => self.stale_ssd = self.stale_ssd.saturating_sub(1),
        }
    }
}

/// The control-plane registry: VM weights and each VM's pool list (with
/// the current policy mirrored so single-shard fast paths can decide the
/// placement without touching any shard).
#[derive(Debug)]
pub(crate) struct Registry {
    pub(crate) vms: BTreeMap<VmId, VmMeta>,
    next_pool: u32,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            vms: BTreeMap::new(),
            // Pool ids start at 1 like the serial engine (0 is never
            // minted), so ids line up across engines.
            next_pool: 1,
        }
    }
}

/// Registry row for one VM.
#[derive(Debug)]
pub(crate) struct VmMeta {
    pub(crate) mem_weight: u64,
    pub(crate) ssd_weight: u64,
    /// `(pool, policy, usage mirror)` sorted by pool id (ids are minted
    /// monotonically, so pushes keep it sorted). The mirror aliases the
    /// pool's per-store usage counters through atomics, so phase 1 of
    /// two-phase eviction snapshots every entity's usage from the
    /// registry alone — no shard lock.
    pub(crate) pools: Vec<(PoolId, CachePolicy, Arc<UsageMirror>)>,
}

impl VmMeta {
    fn new(mem_weight: u64, ssd_weight: u64) -> VmMeta {
        VmMeta {
            mem_weight,
            ssd_weight,
            pools: Vec::new(),
        }
    }

    fn weight_for(&self, placement: Placement) -> u64 {
        match placement {
            Placement::Mem => self.mem_weight,
            Placement::Ssd => self.ssd_weight,
        }
    }

    fn policy_of(&self, pool: PoolId) -> Option<CachePolicy> {
        self.pools
            .binary_search_by_key(&pool, |r| r.0)
            .ok()
            .map(|i| self.pools[i].1)
    }

    pub(crate) fn mirror_of(&self, pool: PoolId) -> Option<&Arc<UsageMirror>> {
        self.pools
            .binary_search_by_key(&pool, |r| r.0)
            .ok()
            .map(|i| &self.pools[i].2)
    }
}

struct Inner {
    mode: PartitionMode,
    /// SSD admission plane (ghost filter window + TTL), from the
    /// config. Immutable after construction, so hot paths read it
    /// without synchronization.
    admission: AdmissionConfig,
    shards: Vec<Mutex<Shard>>,
    registry: RwLock<Registry>,
    mem: Ledger,
    ssd: Ledger,
    next_seq: AtomicU64,
    evictions: AtomicU64,
    trickle_downs: AtomicU64,
    /// Two-phase eviction attempts that found their phase-1 snapshot
    /// stale under the victim-shard lock and retried.
    two_phase_retries: AtomicU64,
    /// Two-phase evictions that fell back to the lock-all batch (retry
    /// budget spent, or no entity nominally over its entitlement).
    two_phase_fallbacks: AtomicU64,
    /// Test hook run between phases 1 and 2 with **no** locks held;
    /// property tests use it to force snapshot staleness at the worst
    /// possible moment.
    eviction_hook: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
    /// Whether journaling is on (segments installed in every shard).
    /// Checked lock-free on the hot paths so the volatile plane pays
    /// nothing for the durability machinery.
    journal_on: AtomicBool,
    /// The next record generation. One cell for all segments: a
    /// generation is claimed (`fetch_add`) while the target shard's
    /// lock is held and appended before that lock drops, so the global
    /// sequence is dense and each segment is monotone — recovery can
    /// merge segments by generation and detect lost suffixes as gaps.
    /// Deliberately separate from `next_seq` (they drift apart live and
    /// only unify at recovery, like the serial plane).
    journal_gen: AtomicU64,
    /// Records across all segments since the last checkpoint install
    /// (checkpoint records included) — the live-compaction trigger.
    journal_records: AtomicU64,
    /// Checkpoint rewrites performed by live compaction.
    journal_compactions: AtomicU64,
    /// Group-commit watermark: every record generation at or below this
    /// is durable (its segment has been synced past it).
    commit_epoch: AtomicU64,
    /// One lock-free membership table per shard (DESIGN.md §15): the
    /// seqlock-guarded mirror of every live `(vm, pool, addr)` key homed
    /// on that shard. `get` answers definitive misses from it without
    /// the shard lock — the hot path of an exclusive cleancache, where
    /// every hit consumes its entry and steady state is mostly misses.
    read_planes: Vec<Arc<ReadPlane>>,
    /// Bumped (under the registry write lock) by every registry
    /// mutation; each handle's local route cache revalidates against it.
    registry_version: AtomicU64,
    /// Tournament trees over per-shard FIFO front sequences, one per
    /// store — Global-mode eviction reads the root instead of locking
    /// every shard (see [`crate::fronts`]).
    fronts_mem: FrontTree,
    fronts_ssd: FrontTree,
    /// Tree-guided evictions that locked the nominated shard and found
    /// the root stale (front changed or died) and re-ran the tournament.
    front_tree_retries: AtomicU64,
    /// Tree-guided evictions that spent their retry budget and fell
    /// back to the lock-all global batch.
    front_tree_fallbacks: AtomicU64,
    /// Test hook run inside the lock-free read window (between the
    /// seqlock's first load and the table walk); tests use it to mutate
    /// membership mid-read and force torn-snapshot retries. Guarded by
    /// the flag below so production reads pay one relaxed load.
    read_hook: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
    read_hook_on: AtomicBool,
    /// Registered remote chunk stores (bindings live per shard).
    remote_registry: Mutex<RemoteRegistry>,
    /// Whether any remote store is registered; checked lock-free on the
    /// flush path to decide if unbound flushes must be stashed.
    remote_on: AtomicBool,
    /// Single-evictor gate for the fast-path eviction loop. Without it,
    /// every putter blocked on a full ledger ran its *own* full batch —
    /// N threads × [`EVICTION_BATCH_PAGES`] of duplicated victim work
    /// against the same full store, which made the 8-thread contention
    /// cell slower than the 2-thread one. Losers block here and re-check
    /// the ledger right after the winner frees room. Acquired with no
    /// other lock held, so it sits above the whole lock order.
    eviction_gate: Mutex<()>,
    /// Reservation-path puts whose unlocked placement hint went stale
    /// before the home shard's lock was taken and retried (DESIGN.md
    /// §18).
    reservation_retries: AtomicU64,
    /// Reservation-path puts that spent their retry budget and fell
    /// back to the lock-all `put_locked`.
    reservation_fallbacks: AtomicU64,
    /// Operations applied through the batched (`*_many`) entry points.
    batched_ops: AtomicU64,
    /// Shard-lock acquisitions charged to the batched entry points
    /// (group entries plus mid-group re-locks around eviction and
    /// compaction) — `batched_ops / batch_lock_acquisitions` is the
    /// amortization the batch plane buys.
    batch_lock_acquisitions: AtomicU64,
    /// Scratch-buffer drains: journal batch appends, each covering one
    /// contiguous generation run claimed with a single `fetch_add`.
    batch_journal_appends: AtomicU64,
}

/// A concurrent sharded DoubleDecker cache (see the [module
/// docs](self) for the design).
///
/// Cloning is cheap and shares the same cache: give each serving thread
/// its own clone. The [`SecondChanceCache`] impl takes `&mut self` only
/// to satisfy the (object-safe) trait; all synchronization is internal.
/// Each clone additionally carries a private [`LocalReplica`] — a route
/// cache plus a small hot-miss cache — which is why `Clone` is manual:
/// the shared `Arc` is cloned, the replica starts empty.
pub struct ShardedCache {
    inner: Arc<Inner>,
    local: LocalReplica,
}

impl Clone for ShardedCache {
    fn clone(&self) -> ShardedCache {
        ShardedCache {
            inner: Arc::clone(&self.inner),
            local: LocalReplica::new(),
        }
    }
}

/// Hot-miss cache slots per handle (direct-mapped). Small on purpose:
/// the point is to keep the handful of ultra-hot blocks a guest polls
/// from even touching the shard's seqlock table.
const HOT_SLOTS: usize = 64;

/// A route-cache entry: the pool's policy and usage mirror, or `None`
/// caching "no such pool".
type Route = Option<(CachePolicy, Arc<UsageMirror>)>;

/// The guard pair a home-shard (reservation-path) put holds: the
/// registry read lock and the home shard's lock, in lock order.
type HomeGuards<'a> = (RwLockReadGuard<'a, Registry>, MutexGuard<'a, Shard>);

/// One cached *negative* lookup: `(vm, pool, addr)` was absent from its
/// home shard when the shard's membership version was `stamp`. Exclusive
/// caches can only replicate misses — a hit consumes its entry, so a
/// positive replica would be stale the moment it was served. The entry
/// is valid while the home shard's [`ReadPlane::seq`] still equals
/// `stamp`; any membership change on the shard silently invalidates it.
#[derive(Clone, Copy, Debug)]
pub(crate) struct HotEntry {
    pub(crate) vm: VmId,
    pub(crate) pool: PoolId,
    pub(crate) addr: BlockAddr,
    pub(crate) stamp: u64,
}

/// The per-handle (per-core, when each serving thread owns one clone)
/// read-side replica: a registry route cache and the hot-miss cache.
/// Never shared — no locks, no atomics, invalidation is by version
/// comparison against the shared counters.
struct LocalReplica {
    /// The [`Inner::registry_version`] the route cache was filled under.
    registry_version: u64,
    /// `(vm, pool)` → policy + usage mirror, `None` caching "no such
    /// pool". Pool ids are never reused, so entries can't alias; any
    /// registry mutation bumps the version and flushes the whole map.
    routes: FxHashMap<(VmId, PoolId), Route>,
    /// Direct-mapped negative cache, indexed by key hash.
    hot: Vec<Option<HotEntry>>,
    /// Lookups this handle answered without any lock (diagnostic).
    lockfree_misses: u64,
    /// Of those, lookups answered from `hot` without probing the plane.
    replica_hits: u64,
    /// Reusable encode buffer for the batched entry points: journal
    /// records pending for the shard visit in progress, drained as one
    /// contiguous generation run before the shard lock drops. Kept on
    /// the handle so a steady batch workload allocates it once.
    scratch: Vec<JournalRecord>,
    /// Memoized two-level share tables — the concurrent analogue of the
    /// serial engine's cached `share_tables` (§4.2 recomputes on
    /// configuration change, not per operation). The mutex is handle-
    /// local and therefore uncontended; it exists only to keep the
    /// handle `Sync` while the hot put paths (which run on `&self`)
    /// mutate the memo. See [`ShardedCache::with_share_memo`] for the
    /// exactness argument.
    entitlements: Mutex<EntitlementMemo>,
}

/// See [`LocalReplica::entitlements`].
#[derive(Default)]
struct EntitlementMemo {
    /// The [`Inner::registry_version`] the tables were built under.
    registry_version: u64,
    /// Per store (`[mem, ssd]`), lazily built.
    tables: [Option<MemoTable>; 2],
}

/// One store's memoized share table plus everything its validity
/// depends on beyond the registry version.
struct MemoTable {
    /// Store capacity the shares were split over.
    capacity: u64,
    /// `(vm, entitlement, weight)` per participating VM, `VmId` order.
    vm_rows: Vec<(VmId, u64, u64)>,
    /// Parallel to `vm_rows`: `(pool, entitlement, weight)` rows.
    pool_rows: Vec<Vec<(PoolId, u64, u64)>>,
    /// Every pool the registry holds that is *not* assigned to this
    /// store by policy: its usage mirror and whether it participated
    /// (legacy pages > 0) when the table was built. A flip in any of
    /// these is the only way usage can change the table, so checking
    /// them is a complete invalidation test — the concurrent analogue
    /// of the serial engine's `note_insertion`/`note_removal`.
    legacy: Vec<(Arc<UsageMirror>, bool)>,
}

impl LocalReplica {
    fn new() -> LocalReplica {
        LocalReplica {
            registry_version: 0,
            routes: FxHashMap::default(),
            hot: vec![None; HOT_SLOTS],
            lockfree_misses: 0,
            replica_hits: 0,
            scratch: Vec::new(),
            entitlements: Mutex::new(EntitlementMemo::default()),
        }
    }

    /// Direct-mapped slot for a key (same mixing constants as
    /// [`ShardedCache::shard_of`], different rotation).
    fn hot_slot(vm: VmId, pool: PoolId, addr: BlockAddr) -> usize {
        let mut h = (vm.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ (pool.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= addr
            .file
            .0
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .rotate_left(43);
        h ^= addr.block.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % HOT_SLOTS
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.inner.shards.len())
            .field("mode", &self.inner.mode)
            .field("mem_used", &self.inner.mem.used_pages())
            .field("ssd_used", &self.inner.ssd.used_pages())
            .finish()
    }
}

/// Replay outcome of one shard's segment during
/// [`ShardedCache::recover`]. Diagnostics only — never part of the
/// determinism-compared reports (PR 5 precedent).
#[derive(Debug, Clone, Default)]
pub struct SegmentReplay {
    /// Index of the shard the segment belonged to.
    pub shard: usize,
    /// Records successfully decoded from this segment.
    pub records: u64,
    /// The segment ended in a torn (truncated) record.
    pub torn_tail: bool,
    /// Replay stopped at a corrupt (CRC-failing) record.
    pub corrupt: bool,
}

/// What [`ShardedCache::recover`] rebuilt and what it had to drop.
/// The asymmetry is the point: `recovered_entries` may be small and
/// every `discarded_*` counter large — the cache can forget, never lie.
#[derive(Debug, Clone, Default)]
pub struct ShardedRecoveryReport {
    /// Records applied after merging all segments and truncating at the
    /// first generation gap.
    pub records_replayed: u64,
    /// Decoded records discarded by the gap barrier (they came after a
    /// lost suffix of some other segment, so their causal prefix is
    /// incomplete).
    pub gap_discarded: u64,
    /// Entries resident after replay, epoch discard and capacity shrink.
    pub recovered_entries: u64,
    /// Entries dropped by the per-VM flush-epoch discard.
    pub discarded_stale: u64,
    /// Replayed puts dropped because their pool was gone or the store
    /// had no room.
    pub dropped_no_room: u64,
    /// Fresh per-VM flush epochs minted by the recovery checkpoint;
    /// guests must adopt these before issuing new flushes.
    pub new_epochs: Vec<(VmId, u64)>,
    /// Per-segment replay stats, in shard order.
    pub segments: Vec<SegmentReplay>,
}

impl ShardedRecoveryReport {
    /// Segments whose tail was torn mid-record.
    pub fn torn_segments(&self) -> u64 {
        self.segments.iter().filter(|s| s.torn_tail).count() as u64
    }

    /// Segments whose replay stopped at a CRC failure.
    pub fn corrupt_segments(&self) -> u64 {
        self.segments.iter().filter(|s| s.corrupt).count() as u64
    }
}

impl ShardedCache {
    /// Creates a sharded cache with `shards` index shards (clamped to at
    /// least 1).
    pub fn new(config: CacheConfig, shards: usize) -> ShardedCache {
        let n = shards.max(1);
        // Size each shard's membership table for its share of the total
        // resident set. Undersizing is safe (the plane latches overflow
        // and the shard degrades to locked gets), it just loses the
        // lock-free path.
        let plane_hint = (config
            .mem_capacity_pages
            .saturating_add(config.ssd_capacity_pages))
            / n as u64;
        ShardedCache {
            local: LocalReplica::new(),
            inner: Arc::new(Inner {
                mode: config.mode,
                admission: config.admission,
                shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
                registry: RwLock::new(Registry::default()),
                mem: Ledger::new(config.mem_capacity_pages),
                ssd: Ledger::new(config.ssd_capacity_pages),
                next_seq: AtomicU64::new(1),
                evictions: AtomicU64::new(0),
                trickle_downs: AtomicU64::new(0),
                two_phase_retries: AtomicU64::new(0),
                two_phase_fallbacks: AtomicU64::new(0),
                eviction_hook: RwLock::new(None),
                journal_on: AtomicBool::new(false),
                journal_gen: AtomicU64::new(1),
                journal_records: AtomicU64::new(0),
                journal_compactions: AtomicU64::new(0),
                commit_epoch: AtomicU64::new(0),
                read_planes: (0..n)
                    .map(|_| Arc::new(ReadPlane::with_capacity(plane_hint)))
                    .collect(),
                registry_version: AtomicU64::new(0),
                fronts_mem: FrontTree::new(n),
                fronts_ssd: FrontTree::new(n),
                front_tree_retries: AtomicU64::new(0),
                front_tree_fallbacks: AtomicU64::new(0),
                read_hook: RwLock::new(None),
                read_hook_on: AtomicBool::new(false),
                remote_registry: Mutex::new(RemoteRegistry::new()),
                remote_on: AtomicBool::new(false),
                eviction_gate: Mutex::new(()),
                reservation_retries: AtomicU64::new(0),
                reservation_fallbacks: AtomicU64::new(0),
                batched_ops: AtomicU64::new(0),
                batch_lock_acquisitions: AtomicU64::new(0),
                batch_journal_appends: AtomicU64::new(0),
            }),
        }
    }

    /// Number of index shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The partition mode the cache runs in.
    pub fn mode(&self) -> PartitionMode {
        self.inner.mode
    }

    // ------------------------------------------------------------------
    // Remote chunk-store tier.
    // ------------------------------------------------------------------

    /// Registers a remote chunk store with this host; duplicate ids are
    /// rejected with a typed error (mirrors the serial engine).
    pub fn register_remote(&self, store: ChunkStore) -> Result<RemoteId, RemoteError> {
        let id = store.id();
        self.inner
            .remote_registry
            .lock()
            .expect("remote registry poisoned")
            .register(store)?;
        self.inner.remote_on.store(true, Ordering::Release);
        Ok(id)
    }

    /// Binds `pool` of `vm` to a registered remote: misses in the pool
    /// fall through to the remote's fault-tolerance stack under the home
    /// shard's lock. Unknown ids and double bindings return typed
    /// errors. Registrations and bindings are not journaled — rebind
    /// after [`ShardedCache::recover`] (replayed flush localization is
    /// preserved and handed to the new binding).
    pub fn bind_remote(
        &self,
        vm: VmId,
        pool: PoolId,
        remote: RemoteId,
        fetch: RemoteFetchConfig,
    ) -> Result<(), RemoteError> {
        let store = self
            .inner
            .remote_registry
            .lock()
            .expect("remote registry poisoned")
            .get(remote)?;
        let mirror = {
            let reg = self.inner.registry.read().expect("registry poisoned");
            let Some(meta) = reg.vms.get(&vm) else {
                return Err(RemoteError::UnknownVm(vm.0));
            };
            match meta.mirror_of(pool) {
                Some(m) => Arc::clone(m),
                None => {
                    return Err(RemoteError::UnknownPool {
                        vm: vm.0,
                        pool: pool.0,
                    })
                }
            }
        };
        let si = self.shard_of(vm, pool);
        let mut shard = self.lock_shard(si);
        if shard.remote_bindings.contains_key(&(vm, pool)) {
            return Err(RemoteError::AlreadyBound {
                vm: vm.0,
                pool: pool.0,
            });
        }
        let mut binding = RemoteBinding::new(store, fetch);
        if let Some((addrs, files)) = shard.remote_stash.remove(&(vm, pool)) {
            // Flushes that predate the binding (runtime or recovery
            // replay): the remote must never serve those blocks.
            binding.preload_localized(addrs, files);
        }
        shard.remote_bindings.insert((vm, pool), binding);
        // Published while the binding is already in place: any get that
        // sees the flag takes the locked path and finds the binding.
        mirror.set_remote_bound();
        Ok(())
    }

    /// The remote counters of one binding, if the pool is bound.
    pub fn remote_counters_of(&self, vm: VmId, pool: PoolId) -> Option<RemoteCounters> {
        let si = self.shard_of(vm, pool);
        let shard = self.lock_shard(si);
        shard.remote_bindings.get(&(vm, pool)).map(|b| b.counters())
    }

    /// Aggregate remote-tier counters across all bindings.
    pub fn remote_totals(&self) -> RemoteCounters {
        let shards = self.lock_all_shards();
        let mut totals = RemoteCounters::default();
        for shard in shards.iter() {
            for binding in shard.remote_bindings.values() {
                totals.absorb(&binding.counters());
            }
        }
        totals
    }

    /// The remote consultation shared by the locked miss branches:
    /// serves the image's initial contents through the binding, failing
    /// open to a plain miss.
    fn remote_get_in(
        shard: &mut Shard,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
    ) -> GetOutcome {
        let Some(binding) = shard.remote_bindings.get_mut(&(vm, pool)) else {
            return GetOutcome::Miss;
        };
        match binding.lookup(now, addr) {
            RemoteLookup::Served { finish } => GetOutcome::Hit {
                finish,
                version: PageVersion::INITIAL,
            },
            RemoteLookup::Miss => GetOutcome::Miss,
        }
    }

    /// The home shard of a pool: a dependency-free integer mix of the
    /// `(vm, pool)` key, reduced modulo the shard count. Deterministic
    /// across runs and processes.
    pub fn shard_of(&self, vm: VmId, pool: PoolId) -> usize {
        let mixed = (vm.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            ^ (pool.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        (mixed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize % self.inner.shards.len()
    }

    /// Registers a VM with a cache weight applied to both stores.
    /// Re-registering updates the weights (mirrors the serial engine).
    pub fn add_vm(&self, vm: VmId, weight: u64) {
        self.add_vm_with_store_weights(vm, weight, weight);
    }

    /// Registers a VM with independent per-store weights.
    pub fn add_vm_with_store_weights(&self, vm: VmId, mem_weight: u64, ssd_weight: u64) {
        let mut reg = self.inner.registry.write().expect("registry poisoned");
        reg.vms
            .entry(vm)
            .and_modify(|e| {
                e.mem_weight = mem_weight;
                e.ssd_weight = ssd_weight;
            })
            .or_insert_with(|| VmMeta::new(mem_weight, ssd_weight));
        self.bump_registry_version();
        // Registry write held while logging to shard 0 is fine: the
        // registry orders before every shard lock.
        self.log_at(
            0,
            JournalRecord::AddVm {
                vm: vm.0,
                mem_weight,
                ssd_weight,
            },
        );
    }

    /// Updates a VM's weight in both stores; unknown VMs are ignored.
    pub fn set_vm_weight(&self, vm: VmId, weight: u64) {
        let mut reg = self.inner.registry.write().expect("registry poisoned");
        if let Some(e) = reg.vms.get_mut(&vm) {
            e.mem_weight = weight;
            e.ssd_weight = weight;
            self.bump_registry_version();
            self.log_at(
                0,
                JournalRecord::SetVmWeights {
                    vm: vm.0,
                    mem_weight: weight,
                    ssd_weight: weight,
                },
            );
        }
    }

    /// Pages resident in the memory store (global ledger).
    pub fn mem_used_pages(&self) -> u64 {
        self.inner.mem.used_pages()
    }

    /// Pages resident in the SSD store (global ledger).
    pub fn ssd_used_pages(&self) -> u64 {
        self.inner.ssd.used_pages()
    }

    /// Objects evicted by the policy module since creation.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Hybrid-pool objects trickled from memory down to the SSD store.
    pub fn trickle_downs(&self) -> u64 {
        self.inner.trickle_downs.load(Ordering::Relaxed)
    }

    /// Two-phase evictions that re-validated stale and retried.
    pub fn two_phase_retries(&self) -> u64 {
        self.inner.two_phase_retries.load(Ordering::Relaxed)
    }

    /// Two-phase evictions that took the lock-all fallback.
    pub fn two_phase_fallbacks(&self) -> u64 {
        self.inner.two_phase_fallbacks.load(Ordering::Relaxed)
    }

    /// Installs (or clears) a hook run between eviction phases 1 and 2
    /// with no locks held. Tests use it to mutate the cache from the
    /// evicting thread's blind spot and force snapshot staleness;
    /// production code leaves it unset.
    pub fn set_eviction_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) {
        *self.inner.eviction_hook.write().expect("hook poisoned") = hook;
    }

    fn run_eviction_hook(&self) {
        let hook = self
            .inner
            .eviction_hook
            .read()
            .expect("hook poisoned")
            .clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Installs (or clears) a hook run inside every lock-free read
    /// window — between the seqlock's first sequence load and the table
    /// walk. Tests use it to mutate membership from the reader's blind
    /// spot and prove torn snapshots are retried, never served;
    /// production code leaves it unset (one relaxed load on the path).
    pub fn set_read_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) {
        let on = hook.is_some();
        *self.inner.read_hook.write().expect("hook poisoned") = hook;
        self.inner.read_hook_on.store(on, Ordering::Release);
    }

    /// Torn-snapshot retries across every shard's read plane.
    pub fn seqlock_retries(&self) -> u64 {
        self.inner.read_planes.iter().map(|p| p.retries()).sum()
    }

    /// Shards whose read plane latched its overflow flag (degraded to
    /// locked gets).
    pub fn read_plane_overflows(&self) -> u64 {
        self.inner
            .read_planes
            .iter()
            .filter(|p| p.overflowed())
            .count() as u64
    }

    /// This handle's read-side diagnostics:
    /// `(lockfree_misses, replica_hits)` — lookups answered with no lock
    /// at all, and the subset served straight from the hot-miss cache.
    pub fn local_read_stats(&self) -> (u64, u64) {
        (self.local.lockfree_misses, self.local.replica_hits)
    }

    /// Tree-guided Global evictions that re-ran the tournament after
    /// locking a stale winner.
    pub fn front_tree_retries(&self) -> u64 {
        self.inner.front_tree_retries.load(Ordering::Relaxed)
    }

    /// Tree-guided Global evictions that fell back to the lock-all scan.
    pub fn front_tree_fallbacks(&self) -> u64 {
        self.inner.front_tree_fallbacks.load(Ordering::Relaxed)
    }

    /// Reservation-path puts that re-validated stale and retried.
    pub fn reservation_retries(&self) -> u64 {
        self.inner.reservation_retries.load(Ordering::Relaxed)
    }

    /// Reservation-path puts that took the lock-all fallback.
    pub fn reservation_fallbacks(&self) -> u64 {
        self.inner.reservation_fallbacks.load(Ordering::Relaxed)
    }

    /// Operations applied through the batched (`*_many`) entry points.
    pub fn batched_ops(&self) -> u64 {
        self.inner.batched_ops.load(Ordering::Relaxed)
    }

    /// Shard-lock acquisitions charged to the batched entry points.
    pub fn batch_lock_acquisitions(&self) -> u64 {
        self.inner.batch_lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Journal batch appends issued by scratch drains.
    pub fn batch_journal_appends(&self) -> u64 {
        self.inner.batch_journal_appends.load(Ordering::Relaxed)
    }

    /// The batch plane's counters as one snapshot block.
    pub fn batch_counters(&self) -> BatchCounters {
        BatchCounters {
            batched_ops: self.batched_ops(),
            lock_acquisitions: self.batch_lock_acquisitions(),
            journal_appends: self.batch_journal_appends(),
            reservation_retries: self.reservation_retries(),
            reservation_fallbacks: self.reservation_fallbacks(),
        }
    }

    /// Shard `si`'s lock-free membership table (auditor use).
    pub(crate) fn read_plane(&self, si: usize) -> &ReadPlane {
        &self.inner.read_planes[si]
    }

    /// The tournament tree for one store (auditor use).
    pub(crate) fn front_tree(&self, placement: Placement) -> &FrontTree {
        match placement {
            Placement::Mem => &self.inner.fronts_mem,
            Placement::Ssd => &self.inner.fronts_ssd,
        }
    }

    /// This handle's live hot-miss entries (auditor use).
    pub(crate) fn local_hot(&self) -> impl Iterator<Item = &HotEntry> + '_ {
        self.local.hot.iter().flatten()
    }

    /// Must be called by every registry mutation, while the registry
    /// write lock is still held — readers that observe the new version
    /// are then guaranteed to block on the read lock until the mutation
    /// is complete, so a route can never be cached newer than its tag.
    fn bump_registry_version(&self) {
        self.inner.registry_version.fetch_add(1, Ordering::Release);
    }

    /// Republishes shard `si`'s FIFO front for one store into the
    /// tournament tree. Call under the shard's lock after any operation
    /// that changed the queue's *head tuple* (push into an empty queue,
    /// front pop, compaction, wholesale clear) — operations that merely
    /// kill an entry in place leave the head tuple intact and need no
    /// sync (the evictor skips dead fronts under the winner's lock).
    ///
    /// Only Global mode ever *reads* the tree (its eviction runs the
    /// tournament), so the other modes skip maintenance entirely —
    /// each front pop would otherwise take the tree's propagate mutex,
    /// a per-evicted-page tax on eviction paths that never consult it.
    fn sync_front(&self, si: usize, shard: &Shard, placement: Placement) {
        if self.inner.mode != PartitionMode::Global {
            return;
        }
        let seq = shard
            .fifo_ref(placement)
            .front()
            .map(|&(_, _, _, s)| s)
            .unwrap_or(EMPTY_FRONT);
        self.front_tree(placement).set_leaf(si, seq);
    }

    /// Resolves `(vm, pool)` to its policy and usage mirror through the
    /// handle-local route cache, revalidated against the registry
    /// version. `None` (also cached) means the pool does not exist.
    fn route(&mut self, vm: VmId, pool: PoolId) -> Option<(CachePolicy, Arc<UsageMirror>)> {
        let version = self.inner.registry_version.load(Ordering::Acquire);
        if self.local.registry_version != version {
            self.local.routes.clear();
            self.local.registry_version = version;
        }
        if let Some(r) = self.local.routes.get(&(vm, pool)) {
            return r.clone();
        }
        let r = {
            let reg = self.inner.registry.read().expect("registry poisoned");
            reg.vms.get(&vm).and_then(|m| {
                let policy = m.policy_of(pool)?;
                Some((policy, m.mirror_of(pool)?.clone()))
            })
        };
        self.local.routes.insert((vm, pool), r.clone());
        r
    }

    // ------------------------------------------------------------------
    // Per-shard journaling (group commit; see the module docs).
    // ------------------------------------------------------------------

    /// Turns on journaling: installs a fresh segment in every shard.
    /// From here on every state transition appends a [`JournalRecord`]
    /// to its routing shard's segment and `flush`/`flush_file` return
    /// their record generation as a non-zero flush epoch. Idempotent;
    /// callers normally enable right after construction.
    pub fn enable_journal(&self) {
        let mut shards = self.lock_all_shards();
        if self.inner.journal_on.swap(true, Ordering::Relaxed) {
            return;
        }
        for shard in shards.iter_mut() {
            shard.journal = Some(Journal::new());
        }
    }

    /// Whether journaling is on.
    pub fn journal_enabled(&self) -> bool {
        self.inner.journal_on.load(Ordering::Relaxed)
    }

    /// The raw per-shard segment images (including unsynced bytes), in
    /// shard order, if journaling is on. Crash harnesses snapshot these
    /// and hand (possibly independently truncated or corrupted) copies
    /// to [`ShardedCache::recover`].
    pub fn journal_images(&self) -> Option<Vec<Vec<u8>>> {
        if !self.journal_enabled() {
            return None;
        }
        let shards = self.lock_all_shards();
        Some(
            shards
                .iter()
                .map(|s| s.journal.as_ref().expect("journaling on").bytes().to_vec())
                .collect(),
        )
    }

    /// Per-shard durable byte watermarks (at or below each segment's
    /// last sync), in shard order, if journaling is on.
    pub fn journal_durable_lens(&self) -> Option<Vec<usize>> {
        if !self.journal_enabled() {
            return None;
        }
        let shards = self.lock_all_shards();
        Some(
            shards
                .iter()
                .map(|s| s.journal.as_ref().expect("journaling on").durable_len())
                .collect(),
        )
    }

    /// Records across all segments since the last checkpoint install,
    /// if journaling is on.
    pub fn journal_records(&self) -> Option<u64> {
        self.journal_enabled()
            .then(|| self.inner.journal_records.load(Ordering::Relaxed))
    }

    /// How many times live compaction rewrote the segments.
    pub fn journal_compactions(&self) -> u64 {
        self.inner.journal_compactions.load(Ordering::Relaxed)
    }

    /// The group-commit watermark: the highest record generation known
    /// durable across every segment (0 before the first commit tick).
    pub fn commit_epoch(&self) -> u64 {
        self.inner.commit_epoch.load(Ordering::Relaxed)
    }

    /// Group commit: syncs every segment and advances the commit
    /// epoch. Returns the new watermark (0 when journaling is off).
    ///
    /// The watermark is sampled *before* the sweep: a generation below
    /// it was claimed-and-appended under some shard's lock before the
    /// sample, and the sweep then acquires every shard's lock and syncs
    /// — so every such record is durable when this returns. The driver
    /// calls this once per virtual-time tick, which is what narrows the
    /// crash-discard window without a sync per operation.
    pub fn commit_tick(&self) -> u64 {
        if !self.journal_enabled() {
            return 0;
        }
        let watermark = self
            .inner
            .journal_gen
            .load(Ordering::Relaxed)
            .saturating_sub(1);
        for s in &self.inner.shards {
            let mut shard = s.lock().expect("shard poisoned");
            if let Some(j) = shard.journal.as_mut() {
                j.sync();
            }
        }
        self.inner
            .commit_epoch
            .fetch_max(watermark, Ordering::Relaxed);
        watermark
    }

    /// Appends `rec` to the (locked) shard's segment with a freshly
    /// claimed global generation. Returns the generation, or 0 when
    /// journaling is off. Must be called with the routing shard's lock
    /// held (enforced by taking the guard's target).
    fn log_in(&self, shard: &mut Shard, rec: JournalRecord) -> u64 {
        let Some(j) = shard.journal.as_mut() else {
            return 0;
        };
        let gen = self.inner.journal_gen.fetch_add(1, Ordering::Relaxed);
        j.append_with_gen(&rec, gen);
        self.inner.journal_records.fetch_add(1, Ordering::Relaxed);
        gen
    }

    /// Appends a control-plane record to shard `si`'s segment, taking
    /// that shard's lock. Caller must hold no shard lock (the registry
    /// write lock is fine — registry orders before shards).
    fn log_at(&self, si: usize, rec: JournalRecord) -> u64 {
        if !self.journal_enabled() {
            return 0;
        }
        let mut shard = self.lock_shard(si);
        self.log_in(&mut shard, rec)
    }

    /// Drains the batch scratch buffer into the (locked) shard's
    /// segment as one contiguous generation run: one `fetch_add(n)` on
    /// the global generation counter, one buffered batch append
    /// (wire-identical to per-record appends). Returns the last
    /// generation claimed, or 0 when nothing was pending or the shard
    /// has no segment. Must run before the shard lock drops and before
    /// any direct [`Self::log_in`] on the same shard, so the global
    /// generation order equals operation order.
    fn drain_scratch(&self, shard: &mut Shard, scratch: &mut Vec<JournalRecord>) -> u64 {
        if scratch.is_empty() {
            return 0;
        }
        let Some(j) = shard.journal.as_mut() else {
            scratch.clear();
            return 0;
        };
        let n = scratch.len() as u64;
        let start = self.inner.journal_gen.fetch_add(n, Ordering::Relaxed);
        let last = j.append_run(scratch, start);
        self.inner.journal_records.fetch_add(n, Ordering::Relaxed);
        self.inner
            .batch_journal_appends
            .fetch_add(1, Ordering::Relaxed);
        scratch.clear();
        last
    }

    /// The live-compaction trigger with `pending` records still in a
    /// batch's scratch buffer — the batched paths must observe the
    /// threshold at the same operation the per-op paths would, or the
    /// checkpoint rewrite consumes generations at a different point and
    /// journal byte-identity with the serial engine breaks.
    fn compaction_due(&self, pending: usize) -> bool {
        if !self.journal_enabled() {
            return false;
        }
        let live = self.inner.mem.used_pages() + self.inner.ssd.used_pages();
        let threshold =
            (live * Self::JOURNAL_COMPACT_FACTOR).max(Self::JOURNAL_COMPACT_MIN_RECORDS);
        self.inner.journal_records.load(Ordering::Relaxed) + pending as u64 > threshold
    }

    /// `StoreKind` wire discriminant (matches the serial engine).
    fn store_kind_code(kind: StoreKind) -> u8 {
        match kind {
            StoreKind::Mem => 0,
            StoreKind::Ssd => 1,
            StoreKind::Hybrid => 2,
        }
    }

    fn store_kind_from_code(code: u8) -> Option<StoreKind> {
        match code {
            0 => Some(StoreKind::Mem),
            1 => Some(StoreKind::Ssd),
            2 => Some(StoreKind::Hybrid),
            _ => None,
        }
    }

    /// `PartitionMode` wire discriminant (matches the serial engine).
    fn mode_code(mode: PartitionMode) -> u8 {
        match mode {
            PartitionMode::DoubleDecker => 0,
            PartitionMode::Global => 1,
            PartitionMode::Strict => 2,
        }
    }

    /// `Placement` wire discriminant (matches the serial engine).
    fn placement_code(placement: Placement) -> u8 {
        match placement {
            Placement::Mem => 0,
            Placement::Ssd => 1,
        }
    }

    fn placement_from_code(code: u8) -> Option<Placement> {
        match code {
            0 => Some(Placement::Mem),
            1 => Some(Placement::Ssd),
            _ => None,
        }
    }

    /// Journal records per live entry before live compaction kicks in
    /// (the serial engine's constant — the compaction trigger must fire
    /// at the same operation for generation parity).
    const JOURNAL_COMPACT_FACTOR: u64 = 8;

    /// Journals shorter than this are never compacted.
    const JOURNAL_COMPACT_MIN_RECORDS: u64 = 1024;

    /// Live compaction: when the segments have accumulated far more
    /// records than there are live entries, rewrite them as one
    /// checkpoint so replay time stays proportional to cache size.
    /// Caller must hold no shard lock. Trigger, threshold and record
    /// order mirror the serial `maybe_compact_journal` exactly, so a
    /// single-threaded run consumes generations identically.
    fn maybe_compact_journal(&self) {
        if !self.journal_enabled() {
            return;
        }
        let live = self.inner.mem.used_pages() + self.inner.ssd.used_pages();
        let threshold =
            (live * Self::JOURNAL_COMPACT_FACTOR).max(Self::JOURNAL_COMPACT_MIN_RECORDS);
        if self.inner.journal_records.load(Ordering::Relaxed) <= threshold {
            return;
        }
        let reg = self.inner.registry.read().expect("registry poisoned");
        let mut shards = self.lock_all_shards();
        // Re-check under the locks: another thread may have compacted
        // (or freed enough) while we were acquiring them.
        let live = self.inner.mem.used_pages() + self.inner.ssd.used_pages();
        let threshold =
            (live * Self::JOURNAL_COMPACT_FACTOR).max(Self::JOURNAL_COMPACT_MIN_RECORDS);
        if self.inner.journal_records.load(Ordering::Relaxed) <= threshold {
            return;
        }
        let start_gen = self.inner.journal_gen.load(Ordering::Relaxed);
        self.write_checkpoint_locked(&reg, &mut shards, start_gen);
        self.inner
            .journal_compactions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Replaces every segment with a checkpoint of the current state,
    /// continuing generations from `start_gen`. Returns the freshly
    /// minted per-VM epochs.
    ///
    /// Record order mirrors the serial `write_checkpoint` verbatim —
    /// mode, capacities, per-VM `AddVm`+`Epoch`, per-pool `CreatePool`,
    /// then every `Put` in FIFO (sequence) order — so both planes
    /// consume the same number of generations per checkpoint. Routing:
    /// control records to segment 0, pool-scoped records to the pool's
    /// home segment. Each VM's `Epoch` precedes every `Put`, so a
    /// corrupted checkpoint prefix can never resurrect state.
    fn write_checkpoint_locked(
        &self,
        reg: &Registry,
        shards: &mut [MutexGuard<'_, Shard>],
        start_gen: u64,
    ) -> Vec<(VmId, u64)> {
        struct CkptWriter {
            segs: Vec<Journal>,
            gen: u64,
            count: u64,
        }
        impl CkptWriter {
            fn emit(&mut self, si: usize, rec: &JournalRecord) -> u64 {
                let gen = self.gen;
                self.segs[si].append_with_gen(rec, gen);
                self.gen += 1;
                self.count += 1;
                gen
            }
        }
        let mut w = CkptWriter {
            segs: (0..shards.len())
                .map(|_| Journal::with_start_gen(start_gen))
                .collect(),
            gen: start_gen,
            count: 0,
        };
        w.emit(
            0,
            &JournalRecord::SetMode {
                mode: Self::mode_code(self.inner.mode),
            },
        );
        w.emit(
            0,
            &JournalRecord::SetMemCapacity {
                pages: self.inner.mem.capacity_pages(),
            },
        );
        w.emit(
            0,
            &JournalRecord::SetSsdCapacity {
                pages: self.inner.ssd.capacity_pages(),
            },
        );
        let mut new_epochs = Vec::with_capacity(reg.vms.len());
        for (&vm, meta) in &reg.vms {
            w.emit(
                0,
                &JournalRecord::AddVm {
                    vm: vm.0,
                    mem_weight: meta.mem_weight,
                    ssd_weight: meta.ssd_weight,
                },
            );
            let epoch = w.emit(0, &JournalRecord::Epoch { vm: vm.0 });
            new_epochs.push((vm, epoch));
        }
        let mut puts: Vec<(u64, VmId, PoolId, BlockAddr, u64, u8)> = Vec::new();
        for (&vm, meta) in &reg.vms {
            for &(pid, _, _) in &meta.pools {
                let si = self.shard_of(vm, pid);
                let pool = &shards[si].pools[&(vm, pid)];
                let policy = pool.policy();
                w.emit(
                    si,
                    &JournalRecord::CreatePool {
                        vm: vm.0,
                        pool: pid.0,
                        store: Self::store_kind_code(policy.store),
                        weight: policy.weight,
                    },
                );
                for (addr, slot) in pool.iter() {
                    puts.push((
                        slot.seq,
                        vm,
                        pid,
                        addr,
                        slot.version.0,
                        Self::placement_code(slot.placement),
                    ));
                }
            }
        }
        puts.sort_unstable();
        for (_, vm, pid, addr, version, placement) in puts {
            let si = self.shard_of(vm, pid);
            w.emit(
                si,
                &JournalRecord::Put {
                    vm: vm.0,
                    pool: pid.0,
                    addr,
                    version,
                    placement,
                },
            );
        }
        // Wear carry-over, AFTER the puts (serial checkpoint order):
        // replay re-accrues the live entries' wear through the puts,
        // then each VM's record tops the totals up to the cumulative
        // value (see the `WearTotals` arm of `apply_record`).
        for vm in Self::wear_vm_ids_in(reg, shards) {
            let wear = self.vm_wear_in(reg, shards, vm);
            w.emit(
                0,
                &JournalRecord::WearTotals {
                    vm: vm.0,
                    ssd_pages_written: wear.ssd_pages_written,
                    pages_admitted: wear.pages_admitted,
                },
            );
        }
        let CkptWriter {
            mut segs,
            gen,
            count,
        } = w;
        for seg in &mut segs {
            seg.sync();
        }
        for (shard, seg) in shards.iter_mut().zip(segs) {
            shard.journal = Some(seg);
        }
        self.inner.journal_gen.store(gen, Ordering::Relaxed);
        self.inner.journal_records.store(count, Ordering::Relaxed);
        // The checkpoint is synced in full, so everything up to its last
        // generation is durable.
        self.inner
            .commit_epoch
            .fetch_max(gen.saturating_sub(1), Ordering::Relaxed);
        new_epochs
    }

    /// Warm restart: rebuilds a sharded cache from the per-shard segment
    /// images a crash left behind (`segments[i]` is shard `i`'s segment;
    /// the new cache has `segments.len()` shards).
    ///
    /// Each segment replays independently and tolerates its own torn or
    /// corrupt tail. The decoded records are merged by generation and
    /// truncated at the first generation *gap*: generations are globally
    /// dense, so a gap proves some segment lost a suffix, and everything
    /// after the gap is a possibly-inconsistent future (a later flush
    /// could otherwise survive while the earlier flush it depends on was
    /// lost). What remains is an exact prefix of the global record
    /// sequence — the serial single-journal situation — so the per-VM
    /// epoch discard argument applies verbatim: for every guest whose
    /// acked flush epoch exceeds what replay recovered, every entry
    /// older than that epoch is dropped. The global-pressure ledgers and
    /// usage mirrors are rebuilt by the replay itself (every applied put
    /// allocates through the ledger and inserts through the mirror-
    /// attached pool), oversubscription from replayed capacity records
    /// is shrunk by real evictions, and a fresh checkpoint (with fresh
    /// per-VM epochs) is journaled before the cache starts serving.
    pub fn recover(
        config: CacheConfig,
        segments: &[Vec<u8>],
        guest_epochs: &[(VmId, u64)],
    ) -> (ShardedCache, ShardedRecoveryReport) {
        let cache = ShardedCache::new(config, segments.len().max(1));
        let mut report = ShardedRecoveryReport::default();

        let mut merged: Vec<(u64, JournalRecord)> = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            let (records, stats) = Journal::replay(seg);
            report.segments.push(SegmentReplay {
                shard: i,
                records: records.len() as u64,
                torn_tail: stats.torn_tail,
                corrupt: stats.corrupt,
            });
            merged.extend(records);
        }
        merged.sort_unstable_by_key(|&(gen, _)| gen);
        let mut keep = merged.len();
        for i in 1..merged.len() {
            if merged[i].0 != merged[i - 1].0 + 1 {
                keep = i;
                break;
            }
        }
        report.gap_discarded = (merged.len() - keep) as u64;
        merged.truncate(keep);
        report.records_replayed = merged.len() as u64;

        // Replay, tracking the highest epoch-bearing generation each VM
        // got back (flushes and epoch markers are what guests ack).
        let mut replayed_epochs: BTreeMap<u32, u64> = BTreeMap::new();
        let mut last_gen = 0u64;
        for (gen, rec) in &merged {
            if let JournalRecord::Flush { vm, .. }
            | JournalRecord::FlushFile { vm, .. }
            | JournalRecord::Epoch { vm } = rec
            {
                let e = replayed_epochs.entry(*vm).or_insert(0);
                *e = (*e).max(*gen);
            }
            cache.apply_record(*gen, rec, &mut report);
            last_gen = *gen;
        }

        // Epoch discard: if replay recovered everything up to the
        // guest's acked epoch, every invalidation the guest observed is
        // already applied. Otherwise the tail was lost and any entry
        // older than the acked epoch may have been invalidated by a lost
        // flush — drop them all (forget, never lie).
        for &(vm, guest_epoch) in guest_epochs {
            if replayed_epochs.get(&vm.0).copied().unwrap_or(0) >= guest_epoch {
                continue;
            }
            let pids: Vec<PoolId> = {
                let reg = cache.inner.registry.read().expect("registry poisoned");
                match reg.vms.get(&vm) {
                    Some(meta) => meta.pools.iter().map(|r| r.0).collect(),
                    None => continue,
                }
            };
            for pid in pids {
                let si = cache.shard_of(vm, pid);
                let mut shard = cache.lock_shard(si);
                let mut suspects: Vec<BlockAddr> = match shard.pools.get(&(vm, pid)) {
                    Some(pool) => pool
                        .iter()
                        .filter(|&(_, slot)| slot.seq < guest_epoch)
                        .map(|(addr, _)| addr)
                        .collect(),
                    None => continue,
                };
                suspects.sort_unstable();
                for addr in suspects {
                    if let Some(slot) = shard.pools.get_mut(&(vm, pid)).and_then(|p| p.remove(addr))
                    {
                        cache.ledger(slot.placement).free(1);
                        shard.note_stale(slot.placement, 1);
                        report.discarded_stale += 1;
                    }
                }
            }
        }

        // Sequence counters resume past everything replayed (replayed
        // entries carry their generation as seq, so live seqs must stay
        // above them; the two counters unify only at this point).
        cache.inner.next_seq.store(last_gen + 1, Ordering::Relaxed);
        cache
            .inner
            .journal_gen
            .store(last_gen + 1, Ordering::Relaxed);

        // Replayed capacity records may leave a store oversubscribed
        // (e.g. the journal recorded a shrink whose evictions were
        // lost); shrink with real evictions now.
        for placement in [Placement::Mem, Placement::Ssd] {
            loop {
                let ledger = cache.ledger(placement);
                if ledger.used_pages() <= ledger.capacity_pages() {
                    break;
                }
                let reg = cache.inner.registry.read().expect("registry poisoned");
                let mut shards = cache.lock_all_shards();
                if cache.evict_batch_locked(&reg, &mut shards, SimTime::ZERO, placement) == 0 {
                    break;
                }
            }
        }

        {
            let shards = cache.lock_all_shards();
            report.recovered_entries = shards
                .iter()
                .flat_map(|s| s.pools.values())
                .map(|p| p.total_used())
                .sum();
            // Wholesale tournament-tree re-sync: replay kept the leaves
            // current incrementally, but make the invariant (leaf ==
            // front entry seq) unconditional before serving resumes.
            for (si, shard) in shards.iter().enumerate() {
                cache.sync_front(si, shard, Placement::Mem);
                cache.sync_front(si, shard, Placement::Ssd);
            }
        }

        // Re-journal a checkpoint across fresh segments and go live.
        {
            let reg = cache.inner.registry.read().expect("registry poisoned");
            let mut shards = cache.lock_all_shards();
            cache.inner.journal_on.store(true, Ordering::Relaxed);
            report.new_epochs = cache.write_checkpoint_locked(&reg, &mut shards, last_gen + 1);
        }
        (cache, report)
    }

    /// Applies one replayed record. Mirrors the serial engine's
    /// `apply_record` semantics on the sharded structures; the journals
    /// are still `None` here, so nothing re-logs.
    fn apply_record(&self, gen: u64, rec: &JournalRecord, report: &mut ShardedRecoveryReport) {
        match *rec {
            JournalRecord::AddVm {
                vm,
                mem_weight,
                ssd_weight,
            } => {
                let mut reg = self.inner.registry.write().expect("registry poisoned");
                reg.vms
                    .entry(VmId(vm))
                    .and_modify(|e| {
                        e.mem_weight = mem_weight;
                        e.ssd_weight = ssd_weight;
                    })
                    .or_insert_with(|| VmMeta::new(mem_weight, ssd_weight));
            }
            JournalRecord::SetVmWeights {
                vm,
                mem_weight,
                ssd_weight,
            } => {
                let mut reg = self.inner.registry.write().expect("registry poisoned");
                if let Some(e) = reg.vms.get_mut(&VmId(vm)) {
                    e.mem_weight = mem_weight;
                    e.ssd_weight = ssd_weight;
                }
            }
            JournalRecord::RemoveVm { vm } => {
                let vm = VmId(vm);
                let mut reg = self.inner.registry.write().expect("registry poisoned");
                let Some(meta) = reg.vms.remove(&vm) else {
                    return;
                };
                for (pid, _, _) in meta.pools {
                    let si = self.shard_of(vm, pid);
                    let mut shard = self.lock_shard(si);
                    if let Some(mut p) = shard.pools.remove(&(vm, pid)) {
                        let (mem, ssd) = p.drain();
                        let worn = p.wear.retire();
                        shard.retired_wear.entry(vm).or_default().absorb(&worn);
                        self.inner.mem.free(mem);
                        self.inner.ssd.free(ssd);
                        shard.stale_mem += mem;
                        shard.stale_ssd += ssd;
                    }
                }
            }
            JournalRecord::CreatePool {
                vm,
                pool,
                store,
                weight,
            } => {
                let Some(store) = Self::store_kind_from_code(store) else {
                    return;
                };
                let policy = CachePolicy { store, weight };
                let (vm, pid) = (VmId(vm), PoolId(pool));
                let mut reg = self.inner.registry.write().expect("registry poisoned");
                let meta = reg.vms.entry(vm).or_insert_with(|| VmMeta::new(100, 100));
                let mirror = match meta.pools.binary_search_by_key(&pid, |r| r.0) {
                    Ok(i) => {
                        meta.pools[i].1 = policy;
                        meta.pools[i].2.clone()
                    }
                    Err(i) => {
                        let mirror = Arc::new(UsageMirror::default());
                        meta.pools.insert(i, (pid, policy, mirror.clone()));
                        mirror
                    }
                };
                reg.next_pool = reg.next_pool.max(pool + 1);
                self.bump_registry_version();
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                let mut p = Pool::new(vm, policy);
                p.set_mirror(mirror);
                p.set_read_plane(pid, Arc::clone(&self.inner.read_planes[si]));
                shard.pools.insert((vm, pid), p);
            }
            JournalRecord::DestroyPool { vm, pool } => {
                let (vm, pid) = (VmId(vm), PoolId(pool));
                let mut reg = self.inner.registry.write().expect("registry poisoned");
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                if let Some(mut p) = shard.pools.remove(&(vm, pid)) {
                    let (mem, ssd) = p.drain();
                    let worn = p.wear.retire();
                    shard.retired_wear.entry(vm).or_default().absorb(&worn);
                    self.inner.mem.free(mem);
                    self.inner.ssd.free(ssd);
                    shard.stale_mem += mem;
                    shard.stale_ssd += ssd;
                }
                if let Some(meta) = reg.vms.get_mut(&vm) {
                    if let Ok(i) = meta.pools.binary_search_by_key(&pid, |r| r.0) {
                        meta.pools.remove(i);
                    }
                }
            }
            JournalRecord::SetPolicy {
                vm,
                pool,
                store,
                weight,
            } => {
                // Raw policy swap: the rehoming side effects were
                // journaled separately as evictions and puts.
                let Some(store) = Self::store_kind_from_code(store) else {
                    return;
                };
                let policy = CachePolicy { store, weight };
                let (vm, pid) = (VmId(vm), PoolId(pool));
                let mut reg = self.inner.registry.write().expect("registry poisoned");
                if let Some(meta) = reg.vms.get_mut(&vm) {
                    if let Ok(i) = meta.pools.binary_search_by_key(&pid, |r| r.0) {
                        meta.pools[i].1 = policy;
                    }
                }
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                if let Some(p) = shard.pools.get_mut(&(vm, pid)) {
                    p.set_policy(policy);
                }
            }
            JournalRecord::Put {
                vm,
                pool,
                addr,
                version,
                placement,
            } => {
                let Some(placement) = Self::placement_from_code(placement) else {
                    return;
                };
                let (vm, pid) = (VmId(vm), PoolId(pool));
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                // Pool checked before the ledger so a put into a missing
                // pool never leaks an allocation (serial order). A dropped
                // replay Put still accrues its wear into the retired
                // ledger: the flash write physically happened before the
                // crash, so losing the *entry* must not lose the *wear* —
                // replayed totals stay exact even when recovery forgets.
                if !shard.pools.contains_key(&(vm, pid)) {
                    report.dropped_no_room += 1;
                    let worn = shard.retired_wear.entry(vm).or_default();
                    worn.pages_admitted += 1;
                    if placement == Placement::Ssd {
                        worn.ssd_pages_written += 1;
                    }
                    return;
                }
                if !self.ledger(placement).try_alloc() {
                    report.dropped_no_room += 1;
                    let worn = shard.retired_wear.entry(vm).or_default();
                    worn.pages_admitted += 1;
                    if placement == Placement::Ssd {
                        worn.ssd_pages_written += 1;
                    }
                    return;
                }
                let p = shard.pools.get_mut(&(vm, pid)).expect("checked above");
                // The record's generation doubles as the entry's seq, so
                // replayed FIFO order equals the original seq order.
                let (sid, displaced) = p.insert(addr, placement, PageVersion(version), gen);
                if let Some(d) = displaced {
                    self.ledger(d).free(1);
                    shard.note_stale(d, 1);
                }
                self.push_shard_fifo(si, &mut shard, vm, pid, sid, gen, placement);
            }
            JournalRecord::Take { vm, pool, addr } | JournalRecord::Evict { vm, pool, addr } => {
                let (vm, pid) = (VmId(vm), PoolId(pool));
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                if let Some(slot) = shard.pools.get_mut(&(vm, pid)).and_then(|p| p.remove(addr)) {
                    self.ledger(slot.placement).free(1);
                    shard.note_stale(slot.placement, 1);
                }
            }
            JournalRecord::Flush { vm, pool, addr } => {
                let (vm, pid) = (VmId(vm), PoolId(pool));
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                if let Some(slot) = shard.pools.get_mut(&(vm, pid)).and_then(|p| p.remove(addr)) {
                    self.ledger(slot.placement).free(1);
                    shard.note_stale(slot.placement, 1);
                }
                // Bindings are not journaled, but flush localization must
                // survive the crash: stash it for the post-recovery
                // re-bind (mirrors the serial engine).
                shard
                    .remote_stash
                    .entry((vm, pid))
                    .or_default()
                    .0
                    .push(addr);
            }
            JournalRecord::FlushFile { vm, pool, file } => {
                let (vm, pid) = (VmId(vm), PoolId(pool));
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                if let Some(p) = shard.pools.get_mut(&(vm, pid)) {
                    let (mem, ssd) = p.remove_file(file);
                    self.inner.mem.free(mem);
                    self.inner.ssd.free(ssd);
                    shard.stale_mem += mem;
                    shard.stale_ssd += ssd;
                }
                shard
                    .remote_stash
                    .entry((vm, pid))
                    .or_default()
                    .1
                    .push(file);
            }
            JournalRecord::Epoch { .. } => {}
            JournalRecord::SetMemCapacity { pages } => self.inner.mem.set_capacity(pages),
            JournalRecord::SetSsdCapacity { pages } => self.inner.ssd.set_capacity(pages),
            // The mode is fixed at construction from the recovery
            // config; the checkpoint's SetMode always matches it.
            JournalRecord::SetMode { .. } => {}
            JournalRecord::SsdDrain => {
                for (si, s) in self.inner.shards.iter().enumerate() {
                    let mut shard = s.lock().expect("shard poisoned");
                    let mut freed = 0;
                    for p in shard.pools.values_mut() {
                        freed += p.drain_placement(Placement::Ssd);
                    }
                    self.inner.ssd.free(freed);
                    shard.fifo_ssd.clear();
                    shard.stale_ssd = 0;
                    self.sync_front(si, &shard, Placement::Ssd);
                }
            }
            JournalRecord::WearTotals {
                vm,
                ssd_pages_written,
                pages_admitted,
            } => {
                // Checkpoint wear carry-over (serial semantics): the
                // checkpoint's Put records re-accrue only the *live*
                // entries' wear; this record holds the VM's true
                // cumulative totals at checkpoint time. Apply as a
                // max-correction — monotone and idempotent — into shard
                // 0's retired accumulator (the record lives on segment 0
                // with the other control records; device totals sum
                // retirements across shards, so the home is arbitrary).
                let vm = VmId(vm);
                let current = self.vm_wear(vm);
                let mut shard = self.lock_shard(0);
                let r = shard.retired_wear.entry(vm).or_default();
                if ssd_pages_written > current.ssd_pages_written {
                    r.ssd_pages_written += ssd_pages_written - current.ssd_pages_written;
                }
                if pages_admitted > current.pages_admitted {
                    r.pages_admitted += pages_admitted - current.pages_admitted;
                }
            }
        }
    }

    /// Every resident entry as `(vm, pool, addr, version)`, sorted —
    /// byte-compatible with the serial engine's
    /// [`entries`](ddc_hypercache::DoubleDeckerCache::entries), used by
    /// the stale-read oracle and the equivalence reports.
    pub fn entries(&self) -> Vec<(VmId, PoolId, BlockAddr, PageVersion)> {
        let reg = self.inner.registry.read().expect("registry poisoned");
        let shards = self.lock_all_shards();
        let mut out = Vec::new();
        for (&vm, meta) in &reg.vms {
            for &(pid, _, _) in &meta.pools {
                let shard = &shards[self.shard_of(vm, pid)];
                if let Some(pool) = shard.pools.get(&(vm, pid)) {
                    for (addr, slot) in pool.iter() {
                        out.push((vm, pid, addr, slot.version));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Runs `f` with the registry read-locked and every shard locked in
    /// ascending order (the crate's lock-all discipline). Used by the
    /// invariant auditor.
    pub(crate) fn with_all_locked<R>(
        &self,
        f: impl FnOnce(&Registry, &[MutexGuard<'_, Shard>], &Ledger, &Ledger, u64) -> R,
    ) -> R {
        let reg = self.inner.registry.read().expect("registry poisoned");
        let shards = self.lock_all_shards();
        f(
            &reg,
            &shards,
            &self.inner.mem,
            &self.inner.ssd,
            self.inner.next_seq.load(Ordering::Relaxed),
        )
    }

    // ------------------------------------------------------------------
    // Endurance plane: wear accounting and TTL demotion.
    // ------------------------------------------------------------------

    /// Every VM with wear on the books (live VMs plus retired wear),
    /// sorted — computed from already-held locks.
    fn wear_vm_ids_in(reg: &Registry, shards: &[MutexGuard<'_, Shard>]) -> Vec<VmId> {
        let mut ids: Vec<VmId> = reg.vms.keys().copied().collect();
        for shard in shards.iter() {
            for &vm in shard.retired_wear.keys() {
                if let Err(i) = ids.binary_search(&vm) {
                    ids.insert(i, vm);
                }
            }
        }
        ids
    }

    /// One VM's cumulative wear from already-held locks: retirements
    /// across every shard plus its live pools.
    fn vm_wear_in(
        &self,
        reg: &Registry,
        shards: &[MutexGuard<'_, Shard>],
        vm: VmId,
    ) -> WearCounters {
        let mut t = WearCounters::default();
        for shard in shards.iter() {
            if let Some(w) = shard.retired_wear.get(&vm) {
                t.absorb(w);
            }
        }
        if let Some(meta) = reg.vms.get(&vm) {
            for &(pid, _, _) in &meta.pools {
                if let Some(p) = shards[self.shard_of(vm, pid)].pools.get(&(vm, pid)) {
                    t.absorb(&p.wear.totals());
                }
            }
        }
        t
    }

    /// Every VM with wear on the books: live VMs plus VMs whose pools
    /// were all destroyed but whose retired wear persists. Sorted.
    pub fn wear_vm_ids(&self) -> Vec<VmId> {
        let reg = self.inner.registry.read().expect("registry poisoned");
        let shards = self.lock_all_shards();
        Self::wear_vm_ids_in(&reg, &shards)
    }

    /// Cumulative wear charged to one VM: its live pools plus everything
    /// retired when pools were destroyed. Never decreases.
    pub fn vm_wear(&self, vm: VmId) -> WearCounters {
        let reg = self.inner.registry.read().expect("registry poisoned");
        let shards = self.lock_all_shards();
        self.vm_wear_in(&reg, &shards, vm)
    }

    /// Device-level wear totals across every VM ever seen.
    pub fn wear_totals(&self) -> WearCounters {
        let reg = self.inner.registry.read().expect("registry poisoned");
        let shards = self.lock_all_shards();
        let mut t = WearCounters::default();
        for vm in Self::wear_vm_ids_in(&reg, &shards) {
            t.absorb(&self.vm_wear_in(&reg, &shards, vm));
        }
        t
    }

    /// The admission plane this cache runs under.
    pub fn admission_config(&self) -> AdmissionConfig {
        self.inner.admission
    }

    /// TTL staleness sweep: demotes (drops) SSD-resident entries older
    /// than the configured `ssd_ttl`, measured in per-pool insert
    /// distance — the same engine-independent clock the serial sweep
    /// uses, so the engines demote the same entries in the same order.
    /// Demotions are journaled as evictions. Returns pages demoted; a
    /// no-op when `ssd_ttl` is 0.
    ///
    /// Driver-invoked at deterministic points (tick boundaries) only —
    /// never from the threaded fast path.
    pub fn ttl_sweep(&mut self) -> u64 {
        let ttl = self.inner.admission.ssd_ttl;
        if ttl == 0 {
            return 0;
        }
        let mut demoted = 0;
        let targets: Vec<(VmId, Vec<PoolId>)> = {
            let reg = self.inner.registry.read().expect("registry poisoned");
            reg.vms
                .iter()
                .map(|(&vm, m)| (vm, m.pools.iter().map(|r| r.0).collect()))
                .collect()
        };
        for (vm, pids) in targets {
            for pid in pids {
                let si = self.shard_of(vm, pid);
                let mut shard = self.lock_shard(si);
                let stale = shard
                    .pools
                    .get(&(vm, pid))
                    .map(|p| p.stale_ssd_entries(ttl))
                    .unwrap_or_default();
                for addr in stale {
                    let Some(p) = shard.pools.get_mut(&(vm, pid)) else {
                        break;
                    };
                    if p.remove(addr).is_none() {
                        continue;
                    }
                    p.counters.evictions += 1;
                    p.wear.ttl_demotions += 1;
                    self.inner.ssd.free(1);
                    self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                    demoted += 1;
                    shard.note_stale(Placement::Ssd, 1);
                    self.log_in(
                        &mut shard,
                        JournalRecord::Evict {
                            vm: vm.0,
                            pool: pid.0,
                            addr,
                        },
                    );
                }
                self.sync_front(si, &shard, Placement::Ssd);
            }
        }
        demoted
    }

    // ------------------------------------------------------------------
    // Internal helpers.
    // ------------------------------------------------------------------

    fn ledger(&self, placement: Placement) -> &Ledger {
        match placement {
            Placement::Mem => &self.inner.mem,
            Placement::Ssd => &self.inner.ssd,
        }
    }

    fn alloc_seq(&self) -> u64 {
        self.inner.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Locks every shard in ascending index order.
    fn lock_all_shards(&self) -> Vec<MutexGuard<'_, Shard>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned"))
            .collect()
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        self.inner.shards[idx].lock().expect("shard poisoned")
    }

    /// Pushes a FIFO entry on the pool's home shard and compacts the
    /// shard queue with the serial engine's amortized heuristic
    /// (tombstone-dominated, or oversized relative to the global store
    /// occupancy).
    #[allow(clippy::too_many_arguments)]
    fn push_shard_fifo(
        &self,
        si: usize,
        shard: &mut Shard,
        vm: VmId,
        pool: PoolId,
        sid: SlotId,
        seq: u64,
        placement: Placement,
    ) {
        let store_used = self.ledger(placement).used_pages();
        let stale = shard.stale(placement);
        let queue = shard.fifo(placement);
        queue.push_back((vm, pool, sid, seq));
        let len = queue.len() as u64;
        let dominated = stale * 2 > len && len >= 1024;
        let oversized = len > store_used.saturating_mul(8).max(1024);
        if dominated || oversized {
            let Shard {
                pools,
                fifo_mem,
                fifo_ssd,
                stale_mem,
                stale_ssd,
                journal: _,
                remote_bindings: _,
                remote_stash: _,
                retired_wear: _,
            } = shard;
            let (queue, stale) = match placement {
                Placement::Mem => (fifo_mem, stale_mem),
                Placement::Ssd => (fifo_ssd, stale_ssd),
            };
            queue.retain(|&(v, p, id, s)| {
                pools
                    .get(&(v, p))
                    .and_then(|pool| pool.fifo_probe(id, s, placement))
                    .is_some()
            });
            *stale = 0;
        }
        // The push (into a possibly-empty queue) or the compaction may
        // have changed the head tuple — republish it for the evictor.
        self.sync_front(si, shard, placement);
    }

    // ------------------------------------------------------------------
    // Entitlements (fresh rebuild — provably equal to the serial engine's
    // cached table, which debug-asserts against the same rebuild).
    // ------------------------------------------------------------------

    fn pool_by_policy(policy: CachePolicy, placement: Placement) -> bool {
        match placement {
            Placement::Mem => policy.store.uses_mem(),
            Placement::Ssd => policy.store.uses_ssd(),
        }
    }

    /// Share rows for one store: `(vm, vm_entitlement, vm_weight)` plus
    /// per-VM `(pool, entitlement, weight)` rows, in `(VmId, PoolId)`
    /// order — the serial `build_share_table` verbatim, reading usage
    /// through `used_of` (locked shards for the exact paths, the atomic
    /// mirrors for phase 1 of two-phase eviction).
    #[allow(clippy::type_complexity)]
    fn build_share_table_with(
        &self,
        reg: &Registry,
        placement: Placement,
        used_of: impl Fn(VmId, PoolId, &Arc<UsageMirror>) -> u64,
    ) -> (Vec<(VmId, u64, u64)>, Vec<Vec<(PoolId, u64, u64)>>) {
        let mut vm_ids = Vec::new();
        let mut vm_weights = Vec::new();
        let mut pool_meta: Vec<Vec<(PoolId, u64)>> = Vec::new();
        for (&vm, meta) in &reg.vms {
            let mut pools_here = Vec::new();
            for (pid, policy, mirror) in &meta.pools {
                let (pid, policy) = (*pid, *policy);
                let used = used_of(vm, pid, mirror);
                let by_policy = Self::pool_by_policy(policy, placement);
                // Participates: assigned by policy, or legacy objects left.
                if by_policy || used > 0 {
                    let weight = if by_policy { policy.weight as u64 } else { 0 };
                    pools_here.push((pid, weight));
                }
            }
            if !pools_here.is_empty() {
                vm_ids.push(vm);
                vm_weights.push(meta.weight_for(placement));
                pool_meta.push(pools_here);
            }
        }
        let capacity = self.ledger(placement).capacity_pages();
        let vm_shares = entitlements(capacity, &vm_weights);
        let mut vm_rows = Vec::with_capacity(vm_ids.len());
        let mut pool_rows = Vec::with_capacity(vm_ids.len());
        for (i, &vm) in vm_ids.iter().enumerate() {
            vm_rows.push((vm, vm_shares[i], vm_weights[i]));
            let weights: Vec<u64> = pool_meta[i].iter().map(|&(_, w)| w).collect();
            let shares = entitlements(vm_shares[i], &weights);
            pool_rows.push(
                pool_meta[i]
                    .iter()
                    .zip(shares)
                    .map(|(&(p, w), s)| (p, s, w))
                    .collect(),
            );
        }
        (vm_rows, pool_rows)
    }

    /// The exact share table, reading usage from the locked shards.
    #[allow(clippy::type_complexity)]
    pub(crate) fn build_share_table(
        &self,
        reg: &Registry,
        shards: &[MutexGuard<'_, Shard>],
        placement: Placement,
    ) -> (Vec<(VmId, u64, u64)>, Vec<Vec<(PoolId, u64, u64)>>) {
        self.build_share_table_with(reg, placement, |vm, pid, _| {
            shards[self.shard_of(vm, pid)]
                .pools
                .get(&(vm, pid))
                .map(|p| p.used(placement))
                .unwrap_or(0)
        })
    }

    fn pool_entitlement_in(
        &self,
        reg: &Registry,
        shards: &[MutexGuard<'_, Shard>],
        vm: VmId,
        pool: PoolId,
        placement: Placement,
    ) -> u64 {
        let (vm_rows, pool_rows) = self.build_share_table(reg, shards, placement);
        let Ok(vi) = vm_rows.binary_search_by_key(&vm, |r| r.0) else {
            return 0;
        };
        pool_rows[vi]
            .binary_search_by_key(&pool, |r| r.0)
            .map(|pi| pool_rows[vi][pi].1)
            .unwrap_or(0)
    }

    /// Runs `f` against the handle-local memoized share table for one
    /// store, rebuilding it first if it is stale.
    ///
    /// The memo is *exact*, not approximate: the table is a pure
    /// function of the registry contents (weights, policies), the
    /// store capacity, and the participant set — and usage enters only
    /// through the participation test of pools the policy does not
    /// assign to the store (`by_policy || used > 0`). All three inputs
    /// are revalidated here on every call (version, a capacity load,
    /// and a participation probe of the usually-empty legacy list), so
    /// the answer is identical to a from-scratch
    /// [`Self::build_share_table_with`] over the current mirrors —
    /// just without the per-call allocations and fair-share division
    /// that made per-op entitlement queries the dominant cost of
    /// hybrid-pool put batches.
    fn with_share_memo<R>(
        &self,
        reg: &Registry,
        placement: Placement,
        f: impl FnOnce(&MemoTable) -> R,
    ) -> R {
        let mut memo = self.local.entitlements.lock().expect("memo poisoned");
        // The caller holds the registry read lock, so the version
        // cannot move under us (mutations bump it under the write
        // lock).
        let version = self.inner.registry_version.load(Ordering::Acquire);
        if memo.registry_version != version {
            memo.tables = [None, None];
            memo.registry_version = version;
        }
        let idx = match placement {
            Placement::Mem => 0,
            Placement::Ssd => 1,
        };
        let capacity = self.ledger(placement).capacity_pages();
        let valid = memo.tables[idx].as_ref().is_some_and(|t| {
            t.capacity == capacity
                && t.legacy
                    .iter()
                    .all(|(m, joined)| (m.pages(placement) > 0) == *joined)
        });
        if !valid {
            memo.tables[idx] = Some(self.build_memo_table(reg, placement, capacity));
        }
        f(memo.tables[idx].as_ref().expect("filled above"))
    }

    /// Builds one store's [`MemoTable`] — [`Self::build_share_table_with`]
    /// over the usage mirrors, additionally recording every
    /// not-by-policy pool for the memo's participation revalidation.
    fn build_memo_table(&self, reg: &Registry, placement: Placement, capacity: u64) -> MemoTable {
        let mut legacy = Vec::new();
        let mut vm_ids = Vec::new();
        let mut vm_weights = Vec::new();
        let mut pool_meta: Vec<Vec<(PoolId, u64)>> = Vec::new();
        for (&vm, meta) in &reg.vms {
            let mut pools_here = Vec::new();
            for (pid, policy, mirror) in &meta.pools {
                if Self::pool_by_policy(*policy, placement) {
                    pools_here.push((*pid, policy.weight as u64));
                } else {
                    let joined = mirror.pages(placement) > 0;
                    legacy.push((mirror.clone(), joined));
                    if joined {
                        pools_here.push((*pid, 0));
                    }
                }
            }
            if !pools_here.is_empty() {
                vm_ids.push(vm);
                vm_weights.push(meta.weight_for(placement));
                pool_meta.push(pools_here);
            }
        }
        let vm_shares = entitlements(capacity, &vm_weights);
        let mut vm_rows = Vec::with_capacity(vm_ids.len());
        let mut pool_rows = Vec::with_capacity(vm_ids.len());
        for (i, &vm) in vm_ids.iter().enumerate() {
            vm_rows.push((vm, vm_shares[i], vm_weights[i]));
            let weights: Vec<u64> = pool_meta[i].iter().map(|&(_, w)| w).collect();
            let shares = entitlements(vm_shares[i], &weights);
            pool_rows.push(
                pool_meta[i]
                    .iter()
                    .zip(shares)
                    .map(|(&(p, w), s)| (p, s, w))
                    .collect(),
            );
        }
        MemoTable {
            capacity,
            vm_rows,
            pool_rows,
            legacy,
        }
    }

    /// A pool's entitlement through the handle-local memo — no shard
    /// locks, usage entering only via the memo's participation checks.
    /// The per-op entitlement query of the reservation and batched-put
    /// paths. Driven single-threaded the mirrors equal the locked
    /// usage, so this answers exactly what [`Self::pool_entitlement_in`]
    /// would; under contention it may be momentarily stale, which the
    /// reservation path tolerates by re-validating (and the batched
    /// path by deciding under the home shard's lock, where its own
    /// pool's usage is exact).
    fn pool_entitlement_memo(
        &self,
        reg: &Registry,
        vm: VmId,
        pool: PoolId,
        placement: Placement,
    ) -> u64 {
        self.with_share_memo(reg, placement, |t| {
            let Ok(vi) = t.vm_rows.binary_search_by_key(&vm, |r| r.0) else {
                return 0;
            };
            t.pool_rows[vi]
                .binary_search_by_key(&pool, |r| r.0)
                .map(|pi| t.pool_rows[vi][pi].1)
                .unwrap_or(0)
        })
    }

    // ------------------------------------------------------------------
    // Two-phase eviction (DoubleDecker mode; see the module docs).
    // ------------------------------------------------------------------

    /// Stale-snapshot retries before two-phase eviction gives up and
    /// takes the lock-all fallback. Bounds the work an adversarial
    /// interleaving can cause while keeping the common case one-shard.
    const TWO_PHASE_MAX_RETRIES: u32 = 4;

    /// Phase 1: picks the Algorithm-1 victim `(vm, pool)` from the
    /// atomic usage mirrors alone — registry read lock, no shard lock.
    /// Returns `None` when no entity is nominally over its entitlement
    /// (the rounding-slack case the serial engine answers with
    /// evict-from-largest, which needs exact usage).
    fn select_victim_unlocked(
        &self,
        reg: &Registry,
        placement: Placement,
    ) -> Option<(VmId, PoolId)> {
        self.with_share_memo(reg, placement, |t| {
            let (vm_rows, pool_rows) = (&t.vm_rows, &t.pool_rows);
            let mut vm_entities = Vec::with_capacity(vm_rows.len());
            for &(vm, share, weight) in vm_rows {
                let used: u64 = reg.vms[&vm]
                    .pools
                    .iter()
                    .map(|(_, _, m)| m.pages(placement))
                    .sum();
                vm_entities.push(EntityUsage::new(share, used, weight));
            }
            let vm_idx = select_victim(&vm_entities, EVICTION_BATCH_PAGES)?;
            let victim_vm = vm_rows[vm_idx].0;
            let meta = &reg.vms[&victim_vm];
            let rows = &pool_rows[vm_idx];
            let mut pool_entities = Vec::with_capacity(rows.len());
            for &(pid, share, weight) in rows {
                let used = meta.mirror_of(pid).map(|m| m.pages(placement)).unwrap_or(0);
                pool_entities.push(EntityUsage::new(share, used, weight));
            }
            let pool_idx = select_victim(&pool_entities, EVICTION_BATCH_PAGES).or_else(|| {
                pool_entities
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.used > 0)
                    .max_by_key(|(_, e)| e.used)
                    .map(|(i, _)| i)
            })?;
            Some((victim_vm, rows[pool_idx].0))
        })
    }

    /// Two-phase weighted eviction: snapshot-select without shard locks,
    /// then lock only the victim's shard, re-validate, and evict. A
    /// stale snapshot (Algorithm 1 would now pick someone else, or the
    /// locked pool turned out empty) retries up to
    /// [`Self::TWO_PHASE_MAX_RETRIES`] times; after that — or when no
    /// entity is nominally over its entitlement — the lock-all batch
    /// takes over, so the scheme can never loop without progress.
    ///
    /// Driven single-threaded the mirrors equal the locked usage, so the
    /// first snapshot re-validates unchanged and the victim (and every
    /// evicted object) matches the serial engine exactly — the
    /// determinism contract survives the locking change.
    fn evict_batch_two_phase(&self, now: SimTime, placement: Placement) -> u64 {
        for _ in 0..Self::TWO_PHASE_MAX_RETRIES {
            let victim = {
                let reg = self.inner.registry.read().expect("registry poisoned");
                self.select_victim_unlocked(&reg, placement)
            };
            let Some((vm, pool_id)) = victim else {
                break;
            };
            // No locks held here: the hook (tests only) and any other
            // thread are free to invalidate the snapshot before phase 2.
            self.run_eviction_hook();

            // Phase 2: registry read + the victim's home shard only.
            let reg = self.inner.registry.read().expect("registry poisoned");
            let si = self.shard_of(vm, pool_id);
            let mut shard = self.lock_shard(si);
            if self.select_victim_unlocked(&reg, placement) != Some((vm, pool_id)) {
                self.inner.two_phase_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let hybrid = reg
                .vms
                .get(&vm)
                .and_then(|m| m.policy_of(pool_id))
                .is_some_and(|p| p.store == StoreKind::Hybrid);
            let freed = self.evict_pages_from_shard(
                &mut shard,
                vm,
                pool_id,
                placement,
                EVICTION_BATCH_PAGES,
                hybrid,
            );
            if freed > 0 {
                return freed;
            }
            // The mirrors promised pages the locked shard no longer has
            // (raced with a flush or destroy): count it as a stale
            // snapshot and retry.
            self.inner.two_phase_retries.fetch_add(1, Ordering::Relaxed);
        }
        self.inner
            .two_phase_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        let reg = self.inner.registry.read().expect("registry poisoned");
        let mut shards = self.lock_all_shards();
        self.evict_batch_locked(&reg, &mut shards, now, placement)
    }

    // ------------------------------------------------------------------
    // Eviction (cross-shard; all shards locked by the caller).
    // ------------------------------------------------------------------

    /// Frees up to one eviction batch with every shard locked. Mirrors
    /// the serial `evict_batch` dispatch.
    fn evict_batch_locked(
        &self,
        reg: &Registry,
        shards: &mut [MutexGuard<'_, Shard>],
        now: SimTime,
        placement: Placement,
    ) -> u64 {
        match self.inner.mode {
            PartitionMode::Global => self.evict_batch_global_locked(shards, placement),
            PartitionMode::DoubleDecker | PartitionMode::Strict => {
                self.evict_batch_weighted_locked(reg, shards, now, placement)
            }
        }
    }

    /// Global-mode eviction: the per-shard FIFOs are merged by minimal
    /// front sequence, which reconstructs the exact store-wide FIFO
    /// order (pushes happen in strictly increasing seq order).
    fn evict_batch_global_locked(
        &self,
        shards: &mut [MutexGuard<'_, Shard>],
        placement: Placement,
    ) -> u64 {
        let mut freed = 0;
        while freed < EVICTION_BATCH_PAGES {
            // Drop dead fronts everywhere, then pick the oldest live one.
            let mut best: Option<(usize, u64)> = None;
            for (i, shard) in shards.iter_mut().enumerate() {
                while let Some(&(vm, pool, sid, seq)) = shard.fifo_ref(placement).front() {
                    let live = shard
                        .pools
                        .get(&(vm, pool))
                        .and_then(|p| p.fifo_probe(sid, seq, placement))
                        .is_some();
                    if live {
                        if best.is_none_or(|(_, s)| seq < s) {
                            best = Some((i, seq));
                        }
                        break;
                    }
                    shard.fifo(placement).pop_front();
                    shard.note_dead_popped(placement);
                }
            }
            let Some((si, _)) = best else {
                break;
            };
            let shard = &mut shards[si];
            let (vm, pool_id, sid, _) = shard
                .fifo(placement)
                .pop_front()
                .expect("front verified live");
            let pool = shard
                .pools
                .get_mut(&(vm, pool_id))
                .expect("liveness checked above");
            let (addr, _) = pool.remove_by_id(sid).expect("front verified live");
            pool.counters.evictions += 1;
            self.ledger(placement).free(1);
            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
            self.log_in(
                shard,
                JournalRecord::Evict {
                    vm: vm.0,
                    pool: pool_id.0,
                    addr,
                },
            );
            freed += 1;
        }
        // Fronts were popped all over; republish every leaf before the
        // locks drop so the tournament tree is exact at rest.
        for (si, shard) in shards.iter().enumerate() {
            self.sync_front(si, shard, placement);
        }
        freed
    }

    /// Winner re-validations before a tree-guided eviction gives up on
    /// chasing a moving front and takes the lock-all scan. Generous: a
    /// retry only happens when another thread changed a front between
    /// the root read and the shard lock.
    const FRONT_TREE_MAX_ATTEMPTS: u32 = 64;

    /// Global-mode eviction guided by the tournament tree: read the
    /// root, lock only the nominated shard, re-validate, evict while it
    /// stays the global minimum. The tree may nominate a shard whose
    /// front is lazily dead or already stale — popping dead fronts and
    /// re-running the tournament under that one shard's lock repairs
    /// it, so the victim *sequence* is identical to the lock-all scan
    /// ([`Self::evict_batch_global_locked`]); only the locking narrows.
    /// Driven single-threaded the first nomination re-validates exactly
    /// (dead-front repair included), so Global-mode determinism against
    /// the serial engine survives unchanged.
    fn evict_batch_global_tree(&self, placement: Placement) -> u64 {
        let tree = self.front_tree(placement);
        let mut freed = 0;
        let mut stale_nominations = 0u32;
        'tournament: while freed < EVICTION_BATCH_PAGES {
            let Some(leaf) = tree.winner() else {
                break;
            };
            let mut shard = self.lock_shard(leaf);
            // Repair a lazily-dead front under the lock, like the
            // lock-all scan does, then re-run the tournament: the leaf
            // may no longer be the global minimum.
            self.pop_dead_fronts(leaf, &mut shard, placement);
            if tree.winner() != Some(leaf) {
                // Fruitless nomination (dead-front repair, or another
                // thread moved the front). Each repair fixes its leaf
                // for good, so single-threaded this is bounded by the
                // shard count — the budget only trips under adversarial
                // cross-thread churn, where the lock-all scan finishes
                // the batch instead of chasing a moving front forever.
                self.inner
                    .front_tree_retries
                    .fetch_add(1, Ordering::Relaxed);
                stale_nominations += 1;
                if stale_nominations > Self::FRONT_TREE_MAX_ATTEMPTS {
                    drop(shard);
                    self.inner
                        .front_tree_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                    let mut shards = self.lock_all_shards();
                    freed += self.evict_batch_global_locked(&mut shards, placement);
                    break;
                }
                continue;
            }
            // The leaf is the (live) global minimum and we hold its
            // shard: evict from it for as long as that stays true.
            while freed < EVICTION_BATCH_PAGES {
                let Some(&(vm, pool_id, sid, _)) = shard.fifo_ref(placement).front() else {
                    continue 'tournament;
                };
                shard.fifo(placement).pop_front();
                let pool = shard
                    .pools
                    .get_mut(&(vm, pool_id))
                    .expect("front verified live");
                let (addr, _) = pool.remove_by_id(sid).expect("front verified live");
                pool.counters.evictions += 1;
                self.ledger(placement).free(1);
                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                self.log_in(
                    &mut shard,
                    JournalRecord::Evict {
                        vm: vm.0,
                        pool: pool_id.0,
                        addr,
                    },
                );
                freed += 1;
                self.pop_dead_fronts(leaf, &mut shard, placement);
                if tree.winner() != Some(leaf) {
                    continue 'tournament;
                }
            }
        }
        freed
    }

    /// Pops lazily-dead entries off one (locked) shard's FIFO front and
    /// republishes its leaf. On return the front is live or the queue is
    /// empty, and the leaf is exact.
    fn pop_dead_fronts(&self, si: usize, shard: &mut Shard, placement: Placement) {
        while let Some(&(vm, pool, sid, seq)) = shard.fifo_ref(placement).front() {
            let live = shard
                .pools
                .get(&(vm, pool))
                .and_then(|p| p.fifo_probe(sid, seq, placement))
                .is_some();
            if live {
                break;
            }
            shard.fifo(placement).pop_front();
            shard.note_dead_popped(placement);
        }
        self.sync_front(si, shard, placement);
    }

    /// Two-level weighted eviction across shards: Algorithm 1 on the
    /// fresh share table, then a FIFO batch out of the victim pool.
    fn evict_batch_weighted_locked(
        &self,
        reg: &Registry,
        shards: &mut [MutexGuard<'_, Shard>],
        now: SimTime,
        placement: Placement,
    ) -> u64 {
        let strict = self.inner.mode == PartitionMode::Strict;
        let select = if strict {
            select_victim_strict
        } else {
            select_victim
        };

        let (vm_rows, pool_rows) = self.build_share_table(reg, shards, placement);
        let mut vm_entities = Vec::with_capacity(vm_rows.len());
        for &(vm, share, weight) in &vm_rows {
            let meta = &reg.vms[&vm];
            let used: u64 = meta
                .pools
                .iter()
                .map(|&(p, _, _)| {
                    shards[self.shard_of(vm, p)]
                        .pools
                        .get(&(vm, p))
                        .map(|pool| pool.used(placement))
                        .unwrap_or(0)
                })
                .sum();
            vm_entities.push(EntityUsage::new(share, used, weight));
        }
        let Some(vm_idx) = select(&vm_entities, EVICTION_BATCH_PAGES) else {
            return self.evict_from_largest_locked(reg, shards, placement);
        };
        let victim_vm = vm_rows[vm_idx].0;
        let rows = &pool_rows[vm_idx];
        let mut pool_entities = Vec::with_capacity(rows.len());
        for &(pid, share, weight) in rows {
            let used = shards[self.shard_of(victim_vm, pid)]
                .pools
                .get(&(victim_vm, pid))
                .map(|p| p.used(placement))
                .unwrap_or(0);
            pool_entities.push(EntityUsage::new(share, used, weight));
        }
        let pool_idx = select(&pool_entities, EVICTION_BATCH_PAGES).or_else(|| {
            pool_entities
                .iter()
                .enumerate()
                .filter(|(_, e)| e.used > 0)
                .max_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
        });
        let Some(pool_idx) = pool_idx else {
            return 0;
        };
        let victim_pool = rows[pool_idx].0;
        self.evict_pages_from_pool_locked(
            reg,
            shards,
            now,
            victim_vm,
            victim_pool,
            placement,
            EVICTION_BATCH_PAGES,
        )
    }

    /// Fallback when no entity is nominally over its entitlement: evict
    /// from the largest user, walking `(VmId, PoolId)` order with the
    /// serial engine's strict-`>` first-max tie-break.
    fn evict_from_largest_locked(
        &self,
        reg: &Registry,
        shards: &mut [MutexGuard<'_, Shard>],
        placement: Placement,
    ) -> u64 {
        let mut victim: Option<(VmId, PoolId)> = None;
        let mut best = 0;
        for (&vm, meta) in &reg.vms {
            for &(pid, _, _) in &meta.pools {
                let used = shards[self.shard_of(vm, pid)]
                    .pools
                    .get(&(vm, pid))
                    .map(|p| p.used(placement))
                    .unwrap_or(0);
                if used > best {
                    best = used;
                    victim = Some((vm, pid));
                }
            }
        }
        let Some((vm, pool)) = victim else {
            return 0;
        };
        self.evict_pages_from_pool_locked(
            reg,
            shards,
            SimTime::ZERO,
            vm,
            pool,
            placement,
            EVICTION_BATCH_PAGES,
        )
    }

    /// Evicts up to `max_pages` oldest objects of one pool from one
    /// store. Lock-all wrapper around
    /// [`evict_pages_from_shard`](Self::evict_pages_from_shard).
    #[allow(clippy::too_many_arguments)]
    fn evict_pages_from_pool_locked(
        &self,
        reg: &Registry,
        shards: &mut [MutexGuard<'_, Shard>],
        _now: SimTime,
        vm: VmId,
        pool_id: PoolId,
        placement: Placement,
        max_pages: u64,
    ) -> u64 {
        let si = self.shard_of(vm, pool_id);
        let hybrid = reg
            .vms
            .get(&vm)
            .and_then(|m| m.policy_of(pool_id))
            .is_some_and(|p| p.store == StoreKind::Hybrid);
        self.evict_pages_from_shard(&mut shards[si], vm, pool_id, placement, max_pages, hybrid)
    }

    /// Evicts up to `max_pages` oldest objects of one pool out of its
    /// (locked) home shard, trickling hybrid memory evictions down to
    /// the SSD share. A pool only ever touches its home shard, so one
    /// guard suffices — this is what lets phase 2 of two-phase eviction
    /// run without stopping the world.
    fn evict_pages_from_shard(
        &self,
        shard: &mut Shard,
        vm: VmId,
        pool_id: PoolId,
        placement: Placement,
        max_pages: u64,
        hybrid: bool,
    ) -> u64 {
        let mut freed = 0;
        let mut evicted: Vec<BlockAddr> = Vec::new();
        let mut trickle: Vec<(BlockAddr, PageVersion)> = Vec::new();
        {
            let Some(pool) = shard.pools.get_mut(&(vm, pool_id)) else {
                return 0;
            };
            while freed < max_pages {
                let Some((addr, slot)) = pool.pop_oldest(placement) else {
                    break;
                };
                pool.counters.evictions += 1;
                freed += 1;
                evicted.push(addr);
                if hybrid && placement == Placement::Mem {
                    trickle.push((addr, slot.version));
                }
            }
            shard.note_stale(placement, freed);
        }
        self.ledger(placement).free(freed);
        self.inner.evictions.fetch_add(freed, Ordering::Relaxed);
        for addr in evicted {
            self.log_in(
                shard,
                JournalRecord::Evict {
                    vm: vm.0,
                    pool: pool_id.0,
                    addr,
                },
            );
        }

        // Trickle-down: keep evicted hybrid memory objects alive in the
        // SSD share while room remains. Like the serial engine, trickled
        // objects get no FIFO entry (they are policy-managed, not
        // global-FIFO-managed).
        for (addr, version) in trickle {
            // Ghost admission on the trickle path, mirroring the serial
            // engine: a rejected object is simply dropped (its Evict is
            // already journaled).
            if self.inner.admission.filters_spills() {
                let window = self.inner.admission.ghost_window;
                if let Some(pool) = shard.pools.get_mut(&(vm, pool_id)) {
                    pool.wear.spill_attempts += 1;
                    if pool.ghost.admit(addr, window) {
                        pool.wear.spill_admits += 1;
                    } else {
                        pool.wear.spill_rejects += 1;
                        continue;
                    }
                }
            }
            if !self.inner.ssd.has_room() || !self.inner.ssd.try_alloc() {
                break;
            }
            let seq = self.alloc_seq();
            match shard.pools.get_mut(&(vm, pool_id)) {
                Some(pool) => {
                    let (_, displaced) = pool.insert(addr, Placement::Ssd, version, seq);
                    if let Some(displaced) = displaced {
                        self.ledger(displaced).free(1);
                        shard.note_stale(displaced, 1);
                    }
                    self.inner.trickle_downs.fetch_add(1, Ordering::Relaxed);
                    self.log_in(
                        shard,
                        JournalRecord::Put {
                            vm: vm.0,
                            pool: pool_id.0,
                            addr,
                            version: version.0,
                            placement: Self::placement_code(Placement::Ssd),
                        },
                    );
                }
                None => self.inner.ssd.free(1),
            }
        }
        freed
    }

    // ------------------------------------------------------------------
    // Put paths.
    // ------------------------------------------------------------------

    /// Allocates one page from `placement`'s ledger, evicting until the
    /// allocation lands or eviction stops freeing (`false`: the put
    /// must reject). Caller must hold no locks.
    ///
    /// Resource-conservative enforcement against the global ledger:
    /// evict only when the store itself is full. DoubleDecker mode uses
    /// the two-phase scheme (one shard locked in the common case);
    /// Global mode runs the front-sequence tournament, locking only the
    /// nominated shard per victim; Strict stays lock-all (its victim
    /// choice needs the entitlement table).
    fn alloc_or_evict(&self, now: SimTime, placement: Placement) -> bool {
        loop {
            if self.ledger(placement).try_alloc() {
                return true;
            }
            // Single-evictor gate (see [`Inner::eviction_gate`]): blocked
            // putters back off here instead of each running a duplicate
            // batch; the re-check below usually succeeds off the winner's
            // freed pages. `try_lock` + yield rather than `lock`: parking
            // losers on the mutex would wake them one by one in a futex
            // handoff chain after every batch, and on few cores that
            // chain of context switches is what the gate exists to avoid.
            // The winner always makes progress (evicts or rejects), so
            // the spin is bounded by one batch. Single-threaded the
            // try_lock always succeeds and the re-check always fails
            // (nothing freed since the check above), so the serial victim
            // sequence — and byte-identity — is untouched.
            let _evictor = match self.inner.eviction_gate.try_lock() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::WouldBlock) => {
                    std::thread::yield_now();
                    continue;
                }
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("eviction gate poisoned"),
            };
            if self.ledger(placement).try_alloc() {
                return true;
            }
            let freed = match self.inner.mode {
                PartitionMode::DoubleDecker => self.evict_batch_two_phase(now, placement),
                PartitionMode::Global => self.evict_batch_global_tree(placement),
                PartitionMode::Strict => {
                    let reg = self.inner.registry.read().expect("registry poisoned");
                    let mut shards = self.lock_all_shards();
                    // Re-check under the locks: another thread may have
                    // freed room while we were blocking on them.
                    if self.ledger(placement).try_alloc() {
                        return true;
                    }
                    self.evict_batch_locked(&reg, &mut shards, now, placement)
                }
            };
            if freed == 0 {
                return false;
            }
        }
    }

    /// The single-shard fast path: mem- or SSD-policy puts outside
    /// strict mode. Placement is policy-determined (usage-independent),
    /// so only the home shard and the ledgers are touched unless the
    /// store is full — eviction then takes the lock-all path with no
    /// shard lock held.
    fn put_fast(
        &self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
        placement: Placement,
    ) -> PutOutcome {
        let si = self.shard_of(vm, pool);
        {
            // Exclusive overwrite: displace any stale copy first so the
            // freed page is available to this put.
            let mut shard = self.lock_shard(si);
            if let Some(old) = shard
                .pools
                .get_mut(&(vm, pool))
                .and_then(|p| p.remove(addr))
            {
                self.ledger(old.placement).free(1);
                shard.note_stale(old.placement, 1);
            }
        }

        if !self.alloc_or_evict(now, placement) {
            return PutOutcome::Rejected;
        }

        let seq = self.alloc_seq();
        let mut shard = self.lock_shard(si);
        let Some(pool_entry) = shard.pools.get_mut(&(vm, pool)) else {
            // The pool was destroyed while we were evicting; give the
            // page back.
            self.ledger(placement).free(1);
            return PutOutcome::Rejected;
        };
        pool_entry.counters.puts += 1;
        let (sid, displaced) = pool_entry.insert(addr, placement, version, seq);
        if let Some(displaced) = displaced {
            self.ledger(displaced).free(1);
            shard.note_stale(displaced, 1);
        }
        self.push_shard_fifo(si, &mut shard, vm, pool, sid, seq, placement);
        self.log_in(
            &mut shard,
            JournalRecord::Put {
                vm: vm.0,
                pool: pool.0,
                addr,
                version: version.0,
                placement: Self::placement_code(placement),
            },
        );
        drop(shard);
        self.maybe_compact_journal();
        PutOutcome::Stored { finish: now }
    }

    /// The lock-all put path: hybrid placement (needs the share table)
    /// and strict mode (needs the entitlement pre-check). Follows the
    /// serial `put` statement order exactly.
    fn put_locked(
        &self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
        policy: CachePolicy,
    ) -> PutOutcome {
        let reg = self.inner.registry.read().expect("registry poisoned");
        let mut shards = self.lock_all_shards();
        let si = self.shard_of(vm, pool);

        // Placement decision with the old copy still resident (matches
        // the serial engine, which decides before the overwrite-remove).
        let placement = match policy.store {
            StoreKind::Mem => Placement::Mem,
            StoreKind::Ssd => Placement::Ssd,
            StoreKind::Hybrid => {
                let mem_entitlement =
                    self.pool_entitlement_in(&reg, &shards, vm, pool, Placement::Mem);
                let used = shards[si]
                    .pools
                    .get(&(vm, pool))
                    .map(|p| p.used(Placement::Mem))
                    .unwrap_or(0);
                if used < mem_entitlement {
                    Placement::Mem
                } else {
                    Placement::Ssd
                }
            }
        };
        if self.ledger(placement).is_disabled() {
            return PutOutcome::Rejected;
        }

        // Ghost admission: a hybrid pool spilling into its SSD share
        // must earn the flash write (serial `put` order: checked before
        // any mutation, so the engines decide identically).
        if self.inner.admission.filters_spills()
            && placement == Placement::Ssd
            && policy.store == StoreKind::Hybrid
        {
            let window = self.inner.admission.ghost_window;
            if let Some(p) = shards[si].pools.get_mut(&(vm, pool)) {
                p.wear.spill_attempts += 1;
                if p.ghost.admit(addr, window) {
                    p.wear.spill_admits += 1;
                } else {
                    p.wear.spill_rejects += 1;
                    return PutOutcome::Rejected;
                }
            }
        }

        // Exclusive overwrite.
        {
            let shard = &mut shards[si];
            if let Some(old) = shard
                .pools
                .get_mut(&(vm, pool))
                .and_then(|p| p.remove(addr))
            {
                self.ledger(old.placement).free(1);
                shard.note_stale(old.placement, 1);
            }
        }

        // Strict-mode pre-check: a pool at its hard partition evicts
        // from itself before the store-level check.
        if self.inner.mode == PartitionMode::Strict {
            let entitlement = self.pool_entitlement_in(&reg, &shards, vm, pool, placement);
            let used = shards[si]
                .pools
                .get(&(vm, pool))
                .map(|p| p.used(placement))
                .unwrap_or(0);
            if used + 1 > entitlement {
                let freed = self.evict_pages_from_pool_locked(
                    &reg,
                    &mut shards,
                    now,
                    vm,
                    pool,
                    placement,
                    EVICTION_BATCH_PAGES,
                );
                if freed == 0 {
                    return PutOutcome::Rejected;
                }
            }
        }

        if !self.ledger(placement).has_room() {
            let freed = self.evict_batch_locked(&reg, &mut shards, now, placement);
            if freed == 0 {
                return PutOutcome::Rejected;
            }
        }
        if !self.ledger(placement).try_alloc() {
            return PutOutcome::Rejected;
        }

        let seq = self.alloc_seq();
        let shard = &mut shards[si];
        let Some(pool_entry) = shard.pools.get_mut(&(vm, pool)) else {
            self.ledger(placement).free(1);
            return PutOutcome::Rejected;
        };
        pool_entry.counters.puts += 1;
        let (sid, displaced) = pool_entry.insert(addr, placement, version, seq);
        if let Some(displaced) = displaced {
            self.ledger(displaced).free(1);
            shard.note_stale(displaced, 1);
        }
        self.push_shard_fifo(si, shard, vm, pool, sid, seq, placement);
        self.log_in(
            shard,
            JournalRecord::Put {
                vm: vm.0,
                pool: pool.0,
                addr,
                version: version.0,
                placement: Self::placement_code(placement),
            },
        );
        drop(shards);
        drop(reg);
        self.maybe_compact_journal();
        PutOutcome::Stored { finish: now }
    }

    /// Stale placement hints tolerated before a reservation-path put
    /// gives up and takes the lock-all [`Self::put_locked`] fallback —
    /// the same bounded-optimism shape as two-phase eviction.
    const RESERVATION_MAX_RETRIES: u32 = 4;

    /// Applies one Hybrid/Strict put under the home shard's lock with
    /// the placement already decided — the serial statement order of
    /// [`Self::put_locked`], minus the lock-all. `reserved` says a page
    /// was already claimed from `placement`'s ledger (the reservation);
    /// every rejecting exit gives it back. The store-full path drains
    /// `scratch`, drops both guards and runs the fast-path eviction
    /// loop, then re-acquires in lock order — so the caller gets its
    /// guards back through the return value (`None` only when the put
    /// rejected with no locks held).
    ///
    /// The Put record goes to `scratch`, not straight to the segment:
    /// batch callers drain once per shard visit, the per-op caller
    /// drains immediately after this returns.
    #[allow(clippy::too_many_arguments)]
    fn put_in_home_shard<'a>(
        &'a self,
        now: SimTime,
        guards: HomeGuards<'a>,
        si: usize,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
        policy: CachePolicy,
        placement: Placement,
        reserved: bool,
        scratch: &mut Vec<JournalRecord>,
    ) -> (PutOutcome, Option<HomeGuards<'a>>) {
        let (mut reg, mut shard) = guards;

        // Ghost admission: a hybrid pool spilling into its SSD share
        // must earn the flash write (serial `put` order: checked before
        // any mutation, so the engines decide identically).
        if self.inner.admission.filters_spills()
            && placement == Placement::Ssd
            && policy.store == StoreKind::Hybrid
        {
            let window = self.inner.admission.ghost_window;
            if let Some(p) = shard.pools.get_mut(&(vm, pool)) {
                p.wear.spill_attempts += 1;
                if p.ghost.admit(addr, window) {
                    p.wear.spill_admits += 1;
                } else {
                    p.wear.spill_rejects += 1;
                    if reserved {
                        self.ledger(placement).free(1);
                    }
                    return (PutOutcome::Rejected, Some((reg, shard)));
                }
            }
        }

        // Exclusive overwrite.
        if let Some(old) = shard
            .pools
            .get_mut(&(vm, pool))
            .and_then(|p| p.remove(addr))
        {
            self.ledger(old.placement).free(1);
            shard.note_stale(old.placement, 1);
        }

        // Strict-mode pre-check: a pool at its hard partition evicts
        // from itself before the store-level check. Entitlement comes
        // from the mirrors (exact when single-threaded); the eviction
        // itself only needs the home shard, which we hold.
        if self.inner.mode == PartitionMode::Strict {
            let entitlement = self.pool_entitlement_memo(&reg, vm, pool, placement);
            let used = shard
                .pools
                .get(&(vm, pool))
                .map(|p| p.used(placement))
                .unwrap_or(0);
            if used + 1 > entitlement {
                let hybrid = policy.store == StoreKind::Hybrid;
                // The evictor journals straight into the segment —
                // pending batch records must land first so generation
                // order stays equal to operation order.
                self.drain_scratch(&mut shard, scratch);
                let freed = self.evict_pages_from_shard(
                    &mut shard,
                    vm,
                    pool,
                    placement,
                    EVICTION_BATCH_PAGES,
                    hybrid,
                );
                if freed == 0 {
                    if reserved {
                        self.ledger(placement).free(1);
                    }
                    return (PutOutcome::Rejected, Some((reg, shard)));
                }
            }
        }

        if !reserved {
            // Serial order: the overwrite above may have freed the very
            // page this put needs, so the ledger is retried before any
            // eviction — this is why a failed phase-A reservation must
            // not reject eagerly.
            if !self.ledger(placement).try_alloc() {
                self.drain_scratch(&mut shard, scratch);
                drop(shard);
                drop(reg);
                if !self.alloc_or_evict(now, placement) {
                    return (PutOutcome::Rejected, None);
                }
                reg = self.inner.registry.read().expect("registry poisoned");
                shard = self.lock_shard(si);
            }
        }

        let seq = self.alloc_seq();
        let Some(pool_entry) = shard.pools.get_mut(&(vm, pool)) else {
            // The pool was destroyed while we were evicting; give the
            // page back.
            self.ledger(placement).free(1);
            return (PutOutcome::Rejected, Some((reg, shard)));
        };
        pool_entry.counters.puts += 1;
        let (sid, displaced) = pool_entry.insert(addr, placement, version, seq);
        if let Some(displaced) = displaced {
            self.ledger(displaced).free(1);
            shard.note_stale(displaced, 1);
        }
        self.push_shard_fifo(si, &mut shard, vm, pool, sid, seq, placement);
        if shard.journal.is_some() {
            scratch.push(JournalRecord::Put {
                vm: vm.0,
                pool: pool.0,
                addr,
                version: version.0,
                placement: Self::placement_code(placement),
            });
        }
        (PutOutcome::Stored { finish: now }, Some((reg, shard)))
    }

    /// The reservation-path put that replaces lock-all dispatch for
    /// Hybrid-store and Strict-mode puts (DESIGN.md §18). Phase A takes
    /// a placement hint from the usage mirrors and reserves the page
    /// against that ledger with no locks held; phase B locks only the
    /// home shard, re-derives the placement authoritatively, and either
    /// applies (hint held) or releases the reservation and retries
    /// (hint stale). A spent retry budget falls back to
    /// [`Self::put_locked`] — the same bounded-optimism shape as
    /// two-phase eviction, so the path can never loop without progress.
    ///
    /// Driven single-threaded the mirrors equal the locked usage: the
    /// first hint always validates and the statement order below
    /// matches the serial engine exactly.
    #[allow(clippy::too_many_arguments)]
    fn put_reserved(
        &self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
        policy: CachePolicy,
        mirror: &UsageMirror,
        scratch: &mut Vec<JournalRecord>,
    ) -> PutOutcome {
        for _ in 0..Self::RESERVATION_MAX_RETRIES {
            // Phase A: hint + reservation, no locks. The hybrid
            // placement decision is taken with the old copy still
            // resident, matching the serial engine.
            let hint = match policy.store {
                StoreKind::Mem => Placement::Mem,
                StoreKind::Ssd => Placement::Ssd,
                StoreKind::Hybrid => {
                    let reg = self.inner.registry.read().expect("registry poisoned");
                    let entitlement = self.pool_entitlement_memo(&reg, vm, pool, Placement::Mem);
                    if mirror.pages(Placement::Mem) < entitlement {
                        Placement::Mem
                    } else {
                        Placement::Ssd
                    }
                }
            };
            if self.ledger(hint).is_disabled() {
                return PutOutcome::Rejected;
            }
            // A full ledger is not a rejection: the overwrite inside
            // phase B may free the page, and the store-full eviction
            // loop runs there in serial order.
            let reserved = self.ledger(hint).try_alloc();
            // No locks held: the hook (tests only) and any other thread
            // are free to invalidate the hint before phase B.
            self.run_eviction_hook();

            // Phase B: registry read + the home shard only.
            let reg = self.inner.registry.read().expect("registry poisoned");
            let si = self.shard_of(vm, pool);
            let shard = self.lock_shard(si);
            let placement = match policy.store {
                StoreKind::Mem => Placement::Mem,
                StoreKind::Ssd => Placement::Ssd,
                StoreKind::Hybrid => {
                    let entitlement = self.pool_entitlement_memo(&reg, vm, pool, Placement::Mem);
                    let used = shard
                        .pools
                        .get(&(vm, pool))
                        .map(|p| p.used(Placement::Mem))
                        .unwrap_or(0);
                    if used < entitlement {
                        Placement::Mem
                    } else {
                        Placement::Ssd
                    }
                }
            };
            if placement != hint {
                drop(shard);
                drop(reg);
                if reserved {
                    self.ledger(hint).free(1);
                }
                self.inner
                    .reservation_retries
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }

            let (outcome, guards) = self.put_in_home_shard(
                now,
                (reg, shard),
                si,
                vm,
                pool,
                addr,
                version,
                policy,
                placement,
                reserved,
                scratch,
            );
            if let Some((reg, mut shard)) = guards {
                self.drain_scratch(&mut shard, scratch);
                drop(shard);
                drop(reg);
            }
            debug_assert!(scratch.is_empty());
            if matches!(outcome, PutOutcome::Stored { .. }) {
                self.maybe_compact_journal();
            }
            return outcome;
        }
        self.inner
            .reservation_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        self.put_locked(now, vm, pool, addr, version, policy)
    }

    // ------------------------------------------------------------------
    // Batched application (DESIGN.md §18). Every `*_many` call names one
    // `(vm, pool)`, so the whole group homes on one shard: the group
    // helpers take the shard lock once, apply the ops in call order, and
    // drain pending journal records as one contiguous generation run
    // before the lock drops. Per-op-point compaction checks keep the
    // checkpoint rewrite firing at the same operation the per-op paths
    // would, which is what preserves journal byte-identity.
    // ------------------------------------------------------------------

    /// One locked get against the (locked) home shard — the per-op
    /// `get`'s locked tail, with the Take record going to `scratch`
    /// instead of straight to the segment.
    fn get_in_shard(
        &self,
        shard: &mut Shard,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        scratch: &mut Vec<JournalRecord>,
    ) -> GetOutcome {
        let Some(p) = shard.pools.get_mut(&(vm, pool)) else {
            return Self::remote_get_in(shard, now, vm, pool, addr);
        };
        p.counters.gets += 1;
        let Some(slot) = p.remove(addr) else {
            return Self::remote_get_in(shard, now, vm, pool, addr);
        };
        p.counters.hits += 1;
        // A hit on an SSD-resident block is proven reuse: re-arm its
        // ghost entry (mirrors the per-op path exactly).
        if self.inner.admission.filters_spills()
            && slot.placement == Placement::Ssd
            && p.policy().store == StoreKind::Hybrid
        {
            p.ghost.note(addr);
        }
        self.ledger(slot.placement).free(1);
        shard.note_stale(slot.placement, 1);
        if shard.journal.is_some() {
            scratch.push(JournalRecord::Take {
                vm: vm.0,
                pool: pool.0,
                addr,
            });
        }
        GetOutcome::Hit {
            finish: now,
            version: slot.version,
        }
    }

    /// Applies the ops of a get batch that need the shard lock.
    /// `locked` holds `(index, addr)` pairs in call order; outcomes land
    /// in `out[index]`.
    #[allow(clippy::too_many_arguments)]
    fn get_group_locked(
        &self,
        now: SimTime,
        si: usize,
        vm: VmId,
        pool: PoolId,
        locked: &[(usize, BlockAddr)],
        out: &mut [GetOutcome],
        scratch: &mut Vec<JournalRecord>,
    ) {
        let mut shard = self.lock_shard(si);
        self.inner
            .batch_lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        for &(i, addr) in locked {
            let pending = scratch.len();
            out[i] = self.get_in_shard(&mut shard, now, vm, pool, addr, scratch);
            // The per-op path compacts only after a local hit (the one
            // case that journals); check at the same points.
            if scratch.len() > pending && self.compaction_due(scratch.len()) {
                self.drain_scratch(&mut shard, scratch);
                drop(shard);
                self.maybe_compact_journal();
                shard = self.lock_shard(si);
                self.inner
                    .batch_lock_acquisitions
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.drain_scratch(&mut shard, scratch);
    }

    /// The batched fast-path put group: policy-fixed placements outside
    /// strict mode, one lock acquisition in the common case.
    #[allow(clippy::too_many_arguments)]
    fn put_group_fast(
        &self,
        now: SimTime,
        si: usize,
        vm: VmId,
        pool: PoolId,
        pages: &[(BlockAddr, PageVersion)],
        placement: Placement,
        scratch: &mut Vec<JournalRecord>,
    ) -> Vec<PutOutcome> {
        let mut out = Vec::with_capacity(pages.len());
        if self.ledger(placement).is_disabled() {
            out.resize(pages.len(), PutOutcome::Rejected);
            return out;
        }
        let mut shard = self.lock_shard(si);
        self.inner
            .batch_lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        for &(addr, version) in pages {
            // Exclusive overwrite: displace any stale copy first so the
            // freed page is available to this put.
            if let Some(old) = shard
                .pools
                .get_mut(&(vm, pool))
                .and_then(|p| p.remove(addr))
            {
                self.ledger(old.placement).free(1);
                shard.note_stale(old.placement, 1);
            }
            if !self.ledger(placement).try_alloc() {
                // Store full: land pending records, drop the lock and
                // run the fast-path eviction loop, then rejoin the
                // group (the per-op path holds no shard lock there
                // either, so victim order matches serially).
                self.drain_scratch(&mut shard, scratch);
                drop(shard);
                let allocated = self.alloc_or_evict(now, placement);
                shard = self.lock_shard(si);
                self.inner
                    .batch_lock_acquisitions
                    .fetch_add(1, Ordering::Relaxed);
                if !allocated {
                    out.push(PutOutcome::Rejected);
                    continue;
                }
            }
            let seq = self.alloc_seq();
            let Some(pool_entry) = shard.pools.get_mut(&(vm, pool)) else {
                self.ledger(placement).free(1);
                out.push(PutOutcome::Rejected);
                continue;
            };
            pool_entry.counters.puts += 1;
            let (sid, displaced) = pool_entry.insert(addr, placement, version, seq);
            if let Some(displaced) = displaced {
                self.ledger(displaced).free(1);
                shard.note_stale(displaced, 1);
            }
            self.push_shard_fifo(si, &mut shard, vm, pool, sid, seq, placement);
            if shard.journal.is_some() {
                scratch.push(JournalRecord::Put {
                    vm: vm.0,
                    pool: pool.0,
                    addr,
                    version: version.0,
                    placement: Self::placement_code(placement),
                });
            }
            out.push(PutOutcome::Stored { finish: now });
            // The per-op path compacts after every stored put.
            if self.compaction_due(scratch.len()) {
                self.drain_scratch(&mut shard, scratch);
                drop(shard);
                self.maybe_compact_journal();
                shard = self.lock_shard(si);
                self.inner
                    .batch_lock_acquisitions
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.drain_scratch(&mut shard, scratch);
        out
    }

    /// The batched reservation-path put group (Hybrid store or Strict
    /// mode): one registry read + one home-shard acquisition for the
    /// whole group in the common case. Unlike the per-op
    /// [`Self::put_reserved`] there is no hint/validate dance — the
    /// placement is derived directly under the locks, where it is
    /// authoritative, so the group path never retries.
    #[allow(clippy::too_many_arguments)]
    fn put_group_reserved(
        &self,
        now: SimTime,
        si: usize,
        vm: VmId,
        pool: PoolId,
        pages: &[(BlockAddr, PageVersion)],
        policy: CachePolicy,
        scratch: &mut Vec<JournalRecord>,
    ) -> Vec<PutOutcome> {
        let mut out = Vec::with_capacity(pages.len());
        self.inner
            .batch_lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        let mut guards = Some((
            self.inner.registry.read().expect("registry poisoned"),
            self.lock_shard(si),
        ));
        for &(addr, version) in pages {
            let (reg, shard) = match guards.take() {
                Some(g) => g,
                None => {
                    self.inner
                        .batch_lock_acquisitions
                        .fetch_add(1, Ordering::Relaxed);
                    let reg = self.inner.registry.read().expect("registry poisoned");
                    let shard = self.lock_shard(si);
                    (reg, shard)
                }
            };
            // Placement decided with the old copy still resident, like
            // the serial engine. The own pool's usage is exact under
            // its lock; the entitlement table reads the mirrors.
            let placement = match policy.store {
                StoreKind::Mem => Placement::Mem,
                StoreKind::Ssd => Placement::Ssd,
                StoreKind::Hybrid => {
                    let entitlement = self.pool_entitlement_memo(&reg, vm, pool, Placement::Mem);
                    let used = shard
                        .pools
                        .get(&(vm, pool))
                        .map(|p| p.used(Placement::Mem))
                        .unwrap_or(0);
                    if used < entitlement {
                        Placement::Mem
                    } else {
                        Placement::Ssd
                    }
                }
            };
            if self.ledger(placement).is_disabled() {
                out.push(PutOutcome::Rejected);
                guards = Some((reg, shard));
                continue;
            }
            let (outcome, rest) = self.put_in_home_shard(
                now,
                (reg, shard),
                si,
                vm,
                pool,
                addr,
                version,
                policy,
                placement,
                false,
                scratch,
            );
            out.push(outcome);
            guards = rest;
            // The per-op path compacts after every stored put; a put
            // that stored always handed the guards back.
            if matches!(outcome, PutOutcome::Stored { .. }) && self.compaction_due(scratch.len()) {
                if let Some((reg, mut shard)) = guards.take() {
                    self.drain_scratch(&mut shard, scratch);
                    drop(shard);
                    drop(reg);
                }
                self.maybe_compact_journal();
            }
        }
        if let Some((reg, mut shard)) = guards.take() {
            self.drain_scratch(&mut shard, scratch);
            drop(shard);
            drop(reg);
        }
        debug_assert!(scratch.is_empty());
        out
    }

    /// The batched flush group: one lock acquisition, every Flush
    /// record drained as one generation run. Returns the flush epoch —
    /// the last generation claimed (0 with journaling off), exactly the
    /// maximum the per-op loop would fold.
    fn flush_group(
        &self,
        si: usize,
        vm: VmId,
        pool: PoolId,
        addrs: &[BlockAddr],
        scratch: &mut Vec<JournalRecord>,
    ) -> u64 {
        let mut shard = self.lock_shard(si);
        self.inner
            .batch_lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        for &addr in addrs {
            if let Some(slot) = shard
                .pools
                .get_mut(&(vm, pool))
                .and_then(|p| p.remove(addr))
            {
                self.ledger(slot.placement).free(1);
                shard.note_stale(slot.placement, 1);
            }
            // The guest is writing the backing block: the remote's copy
            // is stale forever after (stash it if the pool is not bound
            // yet).
            if let Some(b) = shard.remote_bindings.get_mut(&(vm, pool)) {
                b.localize(addr);
            } else if self.inner.remote_on.load(Ordering::Acquire) {
                shard
                    .remote_stash
                    .entry((vm, pool))
                    .or_default()
                    .0
                    .push(addr);
            }
            // Logged even when the block was absent — the epoch must
            // cover the flush regardless (see the per-op path).
            if shard.journal.is_some() {
                scratch.push(JournalRecord::Flush {
                    vm: vm.0,
                    pool: pool.0,
                    addr,
                });
            }
        }
        self.drain_scratch(&mut shard, scratch)
    }

    /// Moves one object between two pools on the *same* shard.
    fn migrate_same_shard(&self, si: usize, vm: VmId, from: PoolId, to: PoolId, addr: BlockAddr) {
        let mut shard = self.lock_shard(si);
        let Some(slot) = shard
            .pools
            .get_mut(&(vm, from))
            .and_then(|p| p.remove(addr))
        else {
            return;
        };
        // The FIFO entry the source pool pushed is a tombstone now.
        shard.note_stale(slot.placement, 1);
        self.log_in(
            &mut shard,
            JournalRecord::Take {
                vm: vm.0,
                pool: from.0,
                addr,
            },
        );
        if shard.pools.contains_key(&(vm, to)) {
            let seq = self.alloc_seq();
            let target = shard.pools.get_mut(&(vm, to)).expect("checked above");
            let (sid, displaced) = target.insert(addr, slot.placement, slot.version, seq);
            if let Some(displaced) = displaced {
                self.ledger(displaced).free(1);
                shard.note_stale(displaced, 1);
            }
            self.push_shard_fifo(si, &mut shard, vm, to, sid, seq, slot.placement);
            self.log_in(
                &mut shard,
                JournalRecord::Put {
                    vm: vm.0,
                    pool: to.0,
                    addr,
                    version: slot.version.0,
                    placement: Self::placement_code(slot.placement),
                },
            );
        } else {
            // Unknown target: the object has no owner; drop it.
            self.ledger(slot.placement).free(1);
        }
    }
}

impl SecondChanceCache for ShardedCache {
    fn create_pool(&mut self, vm: VmId, policy: CachePolicy) -> PoolId {
        let mut reg = self.inner.registry.write().expect("registry poisoned");
        reg.vms.entry(vm).or_insert_with(|| VmMeta::new(100, 100));
        let id = PoolId(reg.next_pool);
        reg.next_pool += 1;
        let mirror = Arc::new(UsageMirror::default());
        reg.vms
            .get_mut(&vm)
            .expect("inserted above")
            .pools
            .push((id, policy, mirror.clone()));
        self.bump_registry_version();
        // Registry before shard (lock-order rule); the pool becomes
        // routable the moment the shard insert lands.
        let si = self.shard_of(vm, id);
        let mut shard = self.lock_shard(si);
        let mut pool = Pool::new(vm, policy);
        pool.set_mirror(mirror);
        pool.set_read_plane(id, Arc::clone(&self.inner.read_planes[si]));
        shard.pools.insert((vm, id), pool);
        self.log_in(
            &mut shard,
            JournalRecord::CreatePool {
                vm: vm.0,
                pool: id.0,
                store: Self::store_kind_code(policy.store),
                weight: policy.weight,
            },
        );
        id
    }

    fn destroy_pool(&mut self, vm: VmId, pool: PoolId) {
        let mut reg = self.inner.registry.write().expect("registry poisoned");
        let si = self.shard_of(vm, pool);
        let mut shard = self.lock_shard(si);
        if shard.remote_bindings.remove(&(vm, pool)).is_some() {
            if let Some(m) = reg.vms.get(&vm).and_then(|meta| meta.mirror_of(pool)) {
                m.clear_remote_bound();
            }
        }
        shard.remote_stash.remove(&(vm, pool));
        if let Some(mut p) = shard.pools.remove(&(vm, pool)) {
            let (mem, ssd) = p.drain();
            let worn = p.wear.retire();
            shard.retired_wear.entry(vm).or_default().absorb(&worn);
            self.inner.mem.free(mem);
            self.inner.ssd.free(ssd);
            shard.stale_mem += mem;
            shard.stale_ssd += ssd;
            self.log_in(
                &mut shard,
                JournalRecord::DestroyPool {
                    vm: vm.0,
                    pool: pool.0,
                },
            );
        }
        if let Some(meta) = reg.vms.get_mut(&vm) {
            if let Ok(i) = meta.pools.binary_search_by_key(&pool, |r| r.0) {
                meta.pools.remove(i);
                self.bump_registry_version();
            }
        }
    }

    fn set_policy(&mut self, vm: VmId, pool: PoolId, policy: CachePolicy) {
        {
            let mut reg = self.inner.registry.write().expect("registry poisoned");
            let Some(meta) = reg.vms.get_mut(&vm) else {
                return;
            };
            let Ok(i) = meta.pools.binary_search_by_key(&pool, |r| r.0) else {
                return;
            };
            meta.pools[i].1 = policy;
            self.bump_registry_version();
        }

        let si = self.shard_of(vm, pool);
        let mut shard = self.lock_shard(si);
        let Some(p) = shard.pools.get_mut(&(vm, pool)) else {
            return;
        };
        p.set_policy(policy);

        // Re-home objects whose placement the new policy disallows
        // (mirrors the serial engine's rehome, minus the fault plane).
        let mut displaced: Vec<(BlockAddr, PageVersion, Placement)> = Vec::new();
        for (addr, slot) in p.iter() {
            let allowed = match slot.placement {
                Placement::Mem => policy.store.uses_mem(),
                Placement::Ssd => policy.store.uses_ssd(),
            };
            if !allowed && policy.is_enabled() {
                displaced.push((addr, slot.version, slot.placement));
            }
        }
        // The slab iterates in arena order, which depends on free-list
        // history; sort by address so the rehome sequence is a pure
        // function of the visible cache state.
        displaced.sort_unstable_by_key(|&(addr, _, _)| addr);
        // Journal the policy change before the re-homing records, so
        // replay applies the policy raw and then the logged evictions
        // and puts in causal order (mirrors the serial engine).
        self.log_in(
            &mut shard,
            JournalRecord::SetPolicy {
                vm: vm.0,
                pool: pool.0,
                store: Self::store_kind_code(policy.store),
                weight: policy.weight,
            },
        );
        for (addr, version, old_placement) in displaced {
            if let Some(p) = shard.pools.get_mut(&(vm, pool)) {
                p.remove(addr);
            }
            self.ledger(old_placement).free(1);
            shard.note_stale(old_placement, 1);
            self.log_in(
                &mut shard,
                JournalRecord::Evict {
                    vm: vm.0,
                    pool: pool.0,
                    addr,
                },
            );
            let new_placement = match old_placement {
                Placement::Mem => Placement::Ssd,
                Placement::Ssd => Placement::Mem,
            };
            // Move to the newly-allowed store if it has room; drop
            // otherwise (the object is clean, dropping is always safe).
            if self.ledger(new_placement).has_room() && self.ledger(new_placement).try_alloc() {
                let seq = self.alloc_seq();
                let inserted = shard
                    .pools
                    .get_mut(&(vm, pool))
                    .map(|p| p.insert(addr, new_placement, version, seq));
                match inserted {
                    Some((sid, displaced_old)) => {
                        if let Some(d) = displaced_old {
                            self.ledger(d).free(1);
                            shard.note_stale(d, 1);
                        }
                        self.push_shard_fifo(si, &mut shard, vm, pool, sid, seq, new_placement);
                        self.log_in(
                            &mut shard,
                            JournalRecord::Put {
                                vm: vm.0,
                                pool: pool.0,
                                addr,
                                version: version.0,
                                placement: Self::placement_code(new_placement),
                            },
                        );
                    }
                    None => self.ledger(new_placement).free(1),
                }
            }
        }
    }

    fn migrate_object(&mut self, vm: VmId, from: PoolId, to: PoolId, addr: BlockAddr) {
        let (si_from, si_to) = (self.shard_of(vm, from), self.shard_of(vm, to));
        if si_from == si_to {
            return self.migrate_same_shard(si_from, vm, from, to, addr);
        }
        // Lock both home shards in ascending order (lock-order rule).
        let lo = si_from.min(si_to);
        let hi = si_from.max(si_to);
        let mut guard_lo = self.lock_shard(lo);
        let mut guard_hi = self.lock_shard(hi);
        let (src, dst): (&mut Shard, &mut Shard) = if si_from == lo {
            (&mut guard_lo, &mut guard_hi)
        } else {
            (&mut guard_hi, &mut guard_lo)
        };
        let Some(slot) = src.pools.get_mut(&(vm, from)).and_then(|p| p.remove(addr)) else {
            return;
        };
        src.note_stale(slot.placement, 1);
        self.log_in(
            src,
            JournalRecord::Take {
                vm: vm.0,
                pool: from.0,
                addr,
            },
        );
        if dst.pools.contains_key(&(vm, to)) {
            let seq = self.alloc_seq();
            let target = dst.pools.get_mut(&(vm, to)).expect("checked above");
            let (sid, displaced) = target.insert(addr, slot.placement, slot.version, seq);
            if let Some(displaced) = displaced {
                self.ledger(displaced).free(1);
                dst.note_stale(displaced, 1);
            }
            self.push_shard_fifo(si_to, dst, vm, to, sid, seq, slot.placement);
            self.log_in(
                dst,
                JournalRecord::Put {
                    vm: vm.0,
                    pool: to.0,
                    addr,
                    version: slot.version.0,
                    placement: Self::placement_code(slot.placement),
                },
            );
        } else {
            self.ledger(slot.placement).free(1);
        }
    }

    fn pool_stats(&self, vm: VmId, pool: PoolId) -> Option<PoolStats> {
        let reg = self.inner.registry.read().expect("registry poisoned");
        let shards = self.lock_all_shards();
        let si = self.shard_of(vm, pool);
        let p = shards[si].pools.get(&(vm, pool))?;
        let primary = match p.policy().store {
            StoreKind::Mem | StoreKind::Hybrid => Placement::Mem,
            StoreKind::Ssd => Placement::Ssd,
        };
        let entitlement = self.pool_entitlement_in(&reg, &shards, vm, pool, primary);
        // Lock-free misses bump the pool's usage mirror instead of the
        // shard-locked counters; fold them back in so totals match the
        // serial engine exactly.
        let lockfree_gets = reg
            .vms
            .get(&vm)
            .and_then(|m| m.mirror_of(pool))
            .map(|m| m.lockfree_gets())
            .unwrap_or(0);
        Some(PoolStats {
            mem_pages: p.used(Placement::Mem),
            ssd_pages: p.used(Placement::Ssd),
            entitlement_pages: entitlement,
            gets: p.counters.gets + lockfree_gets,
            hits: p.counters.hits,
            puts: p.counters.puts,
            evictions: p.counters.evictions,
            failed_gets: p.counters.failed_gets,
            failed_puts: p.counters.failed_puts,
            ssd_writes: p.wear.pages_written,
        })
    }

    fn get(&mut self, now: SimTime, vm: VmId, pool: PoolId, addr: BlockAddr) -> GetOutcome {
        // Lock-free fast path (DESIGN.md §15). Exclusive semantics mean
        // a hit must mutate, so only the *miss* answer can be served
        // without the shard lock — which is exactly the steady-state
        // common case of a read-heavy exclusive cache. Route first
        // through the handle-local cache (unknown pool is a silent miss,
        // matching the serial engine), then the hot-miss replica, then
        // the shard's seqlock membership table.
        let Some((_, mirror)) = self.route(vm, pool) else {
            return GetOutcome::Miss;
        };
        let si = self.shard_of(vm, pool);
        // Remote-bound pools skip the whole lock-free plane: "absent
        // from the shard" stops being a definitive miss once the remote
        // tier can still serve the block, and the binding (whose
        // fault-tolerance state the lookup mutates) lives under the
        // shard lock anyway.
        if !mirror.remote_bound() {
            let slot = LocalReplica::hot_slot(vm, pool, addr);
            if let Some(h) = self.local.hot[slot] {
                if h.vm == vm
                    && h.pool == pool
                    && h.addr == addr
                    && self.inner.read_planes[si].seq() == h.stamp
                {
                    // The home shard's membership has not changed since
                    // this negative was cached: still definitively absent.
                    mirror.note_get();
                    self.local.lockfree_misses += 1;
                    self.local.replica_hits += 1;
                    return GetOutcome::Miss;
                }
            }
            let inner = &self.inner;
            let probe = inner.read_planes[si].lookup(vm, pool, addr, || {
                if inner.read_hook_on.load(Ordering::Relaxed) {
                    let hook = inner.read_hook.read().expect("hook poisoned").clone();
                    if let Some(hook) = hook {
                        hook();
                    }
                }
            });
            match probe {
                ReadProbe::Absent { stamp } => {
                    mirror.note_get();
                    self.local.lockfree_misses += 1;
                    self.local.hot[slot] = Some(HotEntry {
                        vm,
                        pool,
                        addr,
                        stamp,
                    });
                    return GetOutcome::Miss;
                }
                // Probable hit or degraded plane: take the lock and
                // answer authoritatively (the plane may have gone stale
                // between the probe and here; the locked path re-decides
                // from scratch).
                ReadProbe::Present | ReadProbe::Unavailable => {}
            }
        }

        let mut shard = self.lock_shard(si);
        let Some(p) = shard.pools.get_mut(&(vm, pool)) else {
            return Self::remote_get_in(&mut shard, now, vm, pool, addr);
        };
        p.counters.gets += 1;
        let Some(slot) = p.remove(addr) else {
            // Miss in the local tiers: fall through to the pool's remote
            // binding (if any), which fails open back to a miss.
            return Self::remote_get_in(&mut shard, now, vm, pool, addr);
        };
        p.counters.hits += 1;
        // A hit on an SSD-resident block is proven reuse: re-arm its
        // ghost entry so the block's next spill readmits without a
        // second probation pass (mirrors the serial engine exactly).
        if self.inner.admission.filters_spills()
            && slot.placement == Placement::Ssd
            && p.policy().store == StoreKind::Hybrid
        {
            p.ghost.note(addr);
        }
        // Exclusive semantics removed the object; its FIFO entry
        // outlives it as a tombstone.
        self.ledger(slot.placement).free(1);
        shard.note_stale(slot.placement, 1);
        self.log_in(
            &mut shard,
            JournalRecord::Take {
                vm: vm.0,
                pool: pool.0,
                addr,
            },
        );
        drop(shard);
        self.maybe_compact_journal();
        GetOutcome::Hit {
            finish: now,
            version: slot.version,
        }
    }

    fn put(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
    ) -> PutOutcome {
        // Policy lookup through the handle-local route cache: the fast
        // path must not take a shard lock (and, in the common case, not
        // even the registry lock) to decide the route.
        let Some((policy, mirror)) = self.route(vm, pool) else {
            return PutOutcome::Rejected;
        };
        if !policy.is_enabled() {
            return PutOutcome::Rejected;
        }
        // Hybrid placement needs the share table and strict mode needs
        // the entitlement pre-check — since PR 10 both go through the
        // reservation path (home shard only, bounded retries) instead
        // of lock-all.
        let needs_reservation =
            policy.store == StoreKind::Hybrid || self.inner.mode == PartitionMode::Strict;
        if needs_reservation {
            let mut scratch = std::mem::take(&mut self.local.scratch);
            let out =
                self.put_reserved(now, vm, pool, addr, version, policy, &mirror, &mut scratch);
            self.local.scratch = scratch;
            return out;
        }
        let placement = match policy.store {
            StoreKind::Mem => Placement::Mem,
            StoreKind::Ssd => Placement::Ssd,
            StoreKind::Hybrid => unreachable!("routed to put_reserved above"),
        };
        if self.ledger(placement).is_disabled() {
            return PutOutcome::Rejected;
        }
        self.put_fast(now, vm, pool, addr, version, placement)
    }

    fn flush(&mut self, vm: VmId, pool: PoolId, addr: BlockAddr) -> u64 {
        let si = self.shard_of(vm, pool);
        let mut shard = self.lock_shard(si);
        if let Some(slot) = shard
            .pools
            .get_mut(&(vm, pool))
            .and_then(|p| p.remove(addr))
        {
            self.ledger(slot.placement).free(1);
            shard.note_stale(slot.placement, 1);
        }
        // The guest is writing the backing block: the remote's copy is
        // stale forever after (stash it if the pool is not bound yet).
        if let Some(b) = shard.remote_bindings.get_mut(&(vm, pool)) {
            b.localize(addr);
        } else if self.inner.remote_on.load(Ordering::Acquire) {
            shard
                .remote_stash
                .entry((vm, pool))
                .or_default()
                .0
                .push(addr);
        }
        // Logged even when the block was absent: the returned epoch must
        // cover this flush regardless, since a crash may lose the
        // unsynced put that would have made the block present. Unlike
        // the serial plane this does NOT sync — durability arrives at
        // the next group-commit tick; the epoch VALUE is the same either
        // way, and recovery's per-VM discard covers the window. Live
        // compaction is NOT checked here: flushes compact at batch
        // boundaries (`flush_many`), not per op, like the serial engine.
        self.log_in(
            &mut shard,
            JournalRecord::Flush {
                vm: vm.0,
                pool: pool.0,
                addr,
            },
        )
    }

    fn flush_file(&mut self, vm: VmId, pool: PoolId, file: FileId) -> u64 {
        let si = self.shard_of(vm, pool);
        let mut shard = self.lock_shard(si);
        if let Some(p) = shard.pools.get_mut(&(vm, pool)) {
            let (mem, ssd) = p.remove_file(file);
            self.inner.mem.free(mem);
            self.inner.ssd.free(ssd);
            shard.stale_mem += mem;
            shard.stale_ssd += ssd;
        }
        if let Some(b) = shard.remote_bindings.get_mut(&(vm, pool)) {
            b.localize_file(file);
        } else if self.inner.remote_on.load(Ordering::Acquire) {
            shard
                .remote_stash
                .entry((vm, pool))
                .or_default()
                .1
                .push(file);
        }
        // Compaction hoisted to batch boundaries, like `flush`.
        self.log_in(
            &mut shard,
            JournalRecord::FlushFile {
                vm: vm.0,
                pool: pool.0,
                file,
            },
        )
    }

    fn get_many(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addrs: &[BlockAddr],
    ) -> Vec<GetOutcome> {
        if addrs.is_empty() {
            return Vec::new();
        }
        let Some((_, mirror)) = self.route(vm, pool) else {
            // Unknown pool: a silent miss for the whole group, matching
            // the per-op path (and the serial engine).
            return vec![GetOutcome::Miss; addrs.len()];
        };
        self.inner
            .batched_ops
            .fetch_add(addrs.len() as u64, Ordering::Relaxed);
        let si = self.shard_of(vm, pool);
        let mut out = vec![GetOutcome::Miss; addrs.len()];
        // First pass: answer definitive misses from the lock-free read
        // plane (hot-miss replica first), exactly like the per-op path;
        // everything else queues for one locked shard visit. Gets never
        // add membership, so an earlier op in the batch cannot
        // invalidate a later op's lock-free miss. Remote-bound pools
        // skip the plane wholesale (see `get`).
        let mut locked: Vec<(usize, BlockAddr)> = Vec::new();
        if mirror.remote_bound() {
            locked.extend(addrs.iter().copied().enumerate());
        } else {
            for (i, &addr) in addrs.iter().enumerate() {
                let slot = LocalReplica::hot_slot(vm, pool, addr);
                if let Some(h) = self.local.hot[slot] {
                    if h.vm == vm
                        && h.pool == pool
                        && h.addr == addr
                        && self.inner.read_planes[si].seq() == h.stamp
                    {
                        mirror.note_get();
                        self.local.lockfree_misses += 1;
                        self.local.replica_hits += 1;
                        continue;
                    }
                }
                let inner = &self.inner;
                let probe = inner.read_planes[si].lookup(vm, pool, addr, || {
                    if inner.read_hook_on.load(Ordering::Relaxed) {
                        let hook = inner.read_hook.read().expect("hook poisoned").clone();
                        if let Some(hook) = hook {
                            hook();
                        }
                    }
                });
                match probe {
                    ReadProbe::Absent { stamp } => {
                        mirror.note_get();
                        self.local.lockfree_misses += 1;
                        self.local.hot[slot] = Some(HotEntry {
                            vm,
                            pool,
                            addr,
                            stamp,
                        });
                    }
                    ReadProbe::Present | ReadProbe::Unavailable => locked.push((i, addr)),
                }
            }
        }
        if !locked.is_empty() {
            let mut scratch = std::mem::take(&mut self.local.scratch);
            self.get_group_locked(now, si, vm, pool, &locked, &mut out, &mut scratch);
            debug_assert!(scratch.is_empty());
            self.local.scratch = scratch;
        }
        out
    }

    fn put_many(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        pages: &[(BlockAddr, PageVersion)],
    ) -> Vec<PutOutcome> {
        if pages.is_empty() {
            return Vec::new();
        }
        let Some((policy, _)) = self.route(vm, pool) else {
            return vec![PutOutcome::Rejected; pages.len()];
        };
        if !policy.is_enabled() {
            return vec![PutOutcome::Rejected; pages.len()];
        }
        self.inner
            .batched_ops
            .fetch_add(pages.len() as u64, Ordering::Relaxed);
        let si = self.shard_of(vm, pool);
        let mut scratch = std::mem::take(&mut self.local.scratch);
        let out = if policy.store == StoreKind::Hybrid || self.inner.mode == PartitionMode::Strict {
            self.put_group_reserved(now, si, vm, pool, pages, policy, &mut scratch)
        } else {
            let placement = match policy.store {
                StoreKind::Mem => Placement::Mem,
                StoreKind::Ssd => Placement::Ssd,
                StoreKind::Hybrid => unreachable!("dispatched to the reserved group above"),
            };
            self.put_group_fast(now, si, vm, pool, pages, placement, &mut scratch)
        };
        debug_assert!(scratch.is_empty());
        self.local.scratch = scratch;
        out
    }

    fn flush_many(&mut self, vm: VmId, pool: PoolId, addrs: &[BlockAddr]) -> u64 {
        if addrs.is_empty() {
            return 0;
        }
        self.inner
            .batched_ops
            .fetch_add(addrs.len() as u64, Ordering::Relaxed);
        let si = self.shard_of(vm, pool);
        let mut scratch = std::mem::take(&mut self.local.scratch);
        let epoch = self.flush_group(si, vm, pool, addrs, &mut scratch);
        debug_assert!(scratch.is_empty());
        self.local.scratch = scratch;
        // Live compaction once per batch, not once per flush — the
        // serial engine hoists identically, so the checkpoint rewrite
        // still fires at the same operation on both planes.
        self.maybe_compact_journal();
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::audit;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    #[test]
    fn shard_map_is_deterministic_and_spreads() {
        let cache = ShardedCache::new(CacheConfig::mem_only(64), 8);
        let mut hit = vec![false; 8];
        for v in 0..16 {
            for p in 0..16 {
                let si = cache.shard_of(VmId(v), PoolId(p));
                assert!(si < 8);
                assert_eq!(si, cache.shard_of(VmId(v), PoolId(p)));
                hit[si] = true;
            }
        }
        assert!(
            hit.iter().all(|&h| h),
            "256 keys left a shard empty: {hit:?}"
        );
    }

    #[test]
    fn pressure_ledger_never_oversubscribes_and_evicts_globally() {
        let mut cache = ShardedCache::new(CacheConfig::mem_only(64), 4);
        cache.add_vm(VmId(0), 100);
        cache.add_vm(VmId(1), 300);
        let a = cache.create_pool(VmId(0), CachePolicy::mem(100));
        let b = cache.create_pool(VmId(1), CachePolicy::mem(100));
        for i in 0..200 {
            cache.put(SimTime::ZERO, VmId(0), a, addr(1, i), PageVersion(i));
            cache.put(SimTime::ZERO, VmId(1), b, addr(2, i), PageVersion(i));
        }
        assert!(cache.mem_used_pages() <= 64);
        assert!(cache.evictions() > 0, "a full store must have evicted");
        let findings = audit(&cache);
        assert!(findings.is_empty(), "{findings:?}");
        // Weighted eviction kept the heavier VM ahead: with a 1:3 weight
        // split the light VM must not out-occupy the heavy one.
        let sa = cache.pool_stats(VmId(0), a).unwrap();
        let sb = cache.pool_stats(VmId(1), b).unwrap();
        assert!(
            sb.mem_pages >= sa.mem_pages,
            "weights ignored: light VM holds {} pages, heavy {}",
            sa.mem_pages,
            sb.mem_pages
        );
    }

    #[test]
    fn migrate_moves_objects_between_shards() {
        let mut cache = ShardedCache::new(CacheConfig::mem_only(64), 8);
        cache.add_vm(VmId(0), 100);
        let from = cache.create_pool(VmId(0), CachePolicy::mem(50));
        let to = cache.create_pool(VmId(0), CachePolicy::mem(50));
        // With 8 shards and sequential pool ids the two pools usually
        // land on different shards; the test is valid either way.
        for i in 0..10 {
            cache.put(SimTime::ZERO, VmId(0), from, addr(1, i), PageVersion(i));
        }
        for i in 0..10 {
            cache.migrate_object(VmId(0), from, to, addr(1, i));
        }
        let sf = cache.pool_stats(VmId(0), from).unwrap();
        let st = cache.pool_stats(VmId(0), to).unwrap();
        assert_eq!(sf.mem_pages, 0);
        assert_eq!(st.mem_pages, 10);
        assert_eq!(cache.mem_used_pages(), 10);
        let findings = audit(&cache);
        assert!(findings.is_empty(), "{findings:?}");
        // The moved objects are servable from the target pool.
        for i in 0..10 {
            assert!(matches!(
                cache.get(SimTime::ZERO, VmId(0), to, addr(1, i)),
                GetOutcome::Hit { version, .. } if version == PageVersion(i)
            ));
        }
    }

    #[test]
    fn destroy_pool_returns_pages_to_the_ledger() {
        let mut cache = ShardedCache::new(CacheConfig::mem_and_ssd(32, 32), 4);
        cache.add_vm(VmId(0), 100);
        let p = cache.create_pool(VmId(0), CachePolicy::hybrid(100));
        for i in 0..40 {
            cache.put(SimTime::ZERO, VmId(0), p, addr(1, i), PageVersion(i));
        }
        assert!(cache.mem_used_pages() + cache.ssd_used_pages() > 0);
        cache.destroy_pool(VmId(0), p);
        assert_eq!(cache.mem_used_pages(), 0);
        assert_eq!(cache.ssd_used_pages(), 0);
        let findings = audit(&cache);
        assert!(findings.is_empty(), "{findings:?}");
        // Later puts against the destroyed pool are rejected cleanly.
        assert_eq!(
            cache.put(SimTime::ZERO, VmId(0), p, addr(1, 0), PageVersion(0)),
            PutOutcome::Rejected
        );
    }

    #[test]
    fn journaled_flushes_return_real_epochs_and_survive_recovery() {
        let config = CacheConfig::mem_and_ssd(64, 64);
        let mut cache = ShardedCache::new(config, 4);
        cache.enable_journal();
        cache.add_vm(VmId(1), 100);
        let p = cache.create_pool(VmId(1), CachePolicy::mem(100));
        for i in 0..20 {
            assert!(matches!(
                cache.put(SimTime::ZERO, VmId(1), p, addr(1, i), PageVersion(i + 1)),
                PutOutcome::Stored { .. }
            ));
        }
        let e1 = cache.flush(VmId(1), p, addr(1, 0));
        let e2 = cache.flush(VmId(1), p, addr(1, 1));
        assert!(e1 > 0, "journaled flush must return a real epoch");
        assert!(e2 > e1, "epochs are monotone");
        // Group commit: nothing durable until the tick.
        assert_eq!(cache.commit_epoch(), 0);
        let tick = cache.commit_tick();
        assert_eq!(tick, e2, "watermark covers the last flush");
        assert_eq!(cache.commit_epoch(), e2);
        assert!(cache
            .journal_durable_lens()
            .unwrap()
            .iter()
            .zip(cache.journal_images().unwrap())
            .all(|(&d, img)| d == img.len()));

        let images = cache.journal_images().unwrap();
        let (rec, report) = ShardedCache::recover(config, &images, &[(VmId(1), e2)]);
        // All flushes replayed, so nothing is epoch-suspect.
        assert_eq!(report.discarded_stale, 0);
        assert_eq!(report.recovered_entries, 18);
        assert_eq!(report.gap_discarded, 0);
        let entries = rec.entries();
        assert_eq!(entries.len(), 18);
        assert!(
            !entries
                .iter()
                .any(|&(_, _, a, _)| a == addr(1, 0) || a == addr(1, 1)),
            "flushed blocks must not come back"
        );
        let findings = audit(&rec);
        assert!(findings.is_empty(), "{findings:?}");
        // The survivor journals on: epochs keep advancing past the
        // recovery checkpoint's.
        assert!(rec.journal_enabled());
        let ckpt_top = report.new_epochs.iter().map(|&(_, e)| e).max().unwrap();
        let mut rec = rec;
        let e3 = rec.flush(VmId(1), p, addr(1, 2));
        assert!(e3 > ckpt_top, "post-recovery epochs continue the line");
    }

    #[test]
    fn recovery_truncates_at_the_first_generation_gap() {
        let config = CacheConfig::mem_and_ssd(128, 0);
        let mut cache = ShardedCache::new(config, 8);
        cache.enable_journal();
        cache.add_vm(VmId(1), 100);
        // Two pools on different home shards, so their records land in
        // different segments and the generations interleave.
        let pa = cache.create_pool(VmId(1), CachePolicy::mem(50));
        let mut pb = cache.create_pool(VmId(1), CachePolicy::mem(50));
        while cache.shard_of(VmId(1), pb) == cache.shard_of(VmId(1), pa) {
            pb = cache.create_pool(VmId(1), CachePolicy::mem(50));
        }
        for i in 0..24 {
            cache.put(SimTime::ZERO, VmId(1), pa, addr(1, i), PageVersion(i + 1));
            cache.put(SimTime::ZERO, VmId(1), pb, addr(2, i), PageVersion(i + 1));
        }
        let mut images = cache.journal_images().unwrap();
        // Lose a suffix of pool A's segment: every record of pool B
        // interleaved after the cut rides above lost generations and
        // must fall to the gap barrier.
        let sa = cache.shard_of(VmId(1), pa);
        let bounds = Journal::record_boundaries(&images[sa]);
        assert!(bounds.len() >= 8);
        images[sa].truncate(bounds[bounds.len() / 2]);
        let (rec, report) = ShardedCache::recover(config, &images, &[(VmId(1), 0)]);
        assert!(
            report.gap_discarded > 0,
            "interleaved records after the lost suffix must be dropped"
        );
        assert!(report.recovered_entries < 48);
        let findings = audit(&rec);
        assert!(findings.is_empty(), "{findings:?}");
        // Survivors still serve.
        let mut rec = rec;
        let mut hits = 0;
        for i in 0..24 {
            if let GetOutcome::Hit { version, .. } = rec.get(SimTime::ZERO, VmId(1), pa, addr(1, i))
            {
                assert_eq!(version, PageVersion(i + 1));
                hits += 1;
            }
        }
        assert!(hits > 0, "the kept prefix preserves pool A's entries");
    }

    #[test]
    fn recovery_with_future_epochs_discards_everything_suspect() {
        let config = CacheConfig::mem_and_ssd(64, 64);
        let mut cache = ShardedCache::new(config, 4);
        cache.enable_journal();
        cache.add_vm(VmId(1), 100);
        let p = cache.create_pool(VmId(1), CachePolicy::mem(100));
        for i in 0..16 {
            cache.put(SimTime::ZERO, VmId(1), p, addr(1, i), PageVersion(1));
        }
        let images = cache.journal_images().unwrap();
        let (rec, report) = ShardedCache::recover(config, &images, &[(VmId(1), u64::MAX)]);
        assert_eq!(
            rec.entries().len(),
            0,
            "an epoch above the journal makes every entry suspect"
        );
        assert!(report.discarded_stale > 0);
        assert!(audit(&rec).is_empty());
    }

    #[test]
    fn seqlock_forced_interleaving_retries_and_never_tears() {
        use std::sync::atomic::AtomicU32;
        let mut cache = ShardedCache::new(CacheConfig::mem_only(64), 1);
        cache.add_vm(VmId(0), 100);
        let p = cache.create_pool(VmId(0), CachePolicy::mem(100));
        cache.put(SimTime::ZERO, VmId(0), p, addr(1, 0), PageVersion(7));

        // Fire exactly once, from inside the reader's seqlock window
        // (no locks held there): publish a new block, changing the
        // plane's membership out from under the in-flight snapshot.
        let fires = Arc::new(AtomicU32::new(0));
        let mutator = Mutex::new(cache.clone());
        let hook_fires = Arc::clone(&fires);
        cache.set_read_hook(Some(Arc::new(move || {
            if hook_fires.fetch_add(1, Ordering::Relaxed) == 0 {
                let mut h = mutator.lock().expect("mutator handle");
                h.put(SimTime::ZERO, VmId(0), p, addr(1, 1), PageVersion(9));
            }
        })));

        let before = cache.seqlock_retries();
        let out = cache.get(SimTime::ZERO, VmId(0), p, addr(1, 2));
        assert!(matches!(out, GetOutcome::Miss), "absent block must miss");
        assert!(
            cache.seqlock_retries() > before,
            "the mid-read mutation must have forced a snapshot retry"
        );
        assert!(
            fires.load(Ordering::Relaxed) >= 2,
            "retry re-ran the window"
        );
        cache.set_read_hook(None);

        // Nothing tore: both the pre-existing block and the one
        // published mid-read are served intact.
        assert!(matches!(
            cache.get(SimTime::ZERO, VmId(0), p, addr(1, 1)),
            GetOutcome::Hit { version, .. } if version == PageVersion(9)
        ));
        assert!(matches!(
            cache.get(SimTime::ZERO, VmId(0), p, addr(1, 0)),
            GetOutcome::Hit { version, .. } if version == PageVersion(7)
        ));
        let findings = audit(&cache);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn racing_gets_linearize_against_the_put_history() {
        use ddc_sim::SimRng;
        let mut cache = ShardedCache::new(CacheConfig::mem_only(256), 4);
        cache.add_vm(VmId(0), 100);
        let pool = cache.create_pool(VmId(0), CachePolicy::mem(100));
        const KEYS: u64 = 16;
        const ROUNDS: u64 = 400;

        // One writer puts every block with a strictly increasing
        // version per round while readers race gets against it. In any
        // linearization of an exclusive cache, a hit (a) returns a
        // version some put actually stored for that block and (b)
        // consumes it — so no (block, version) pair is ever served
        // twice.
        let done = AtomicBool::new(false);
        let hits: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let readers: Vec<_> = (0..3)
                .map(|r| {
                    let mut h = cache.clone();
                    let done = &done;
                    scope.spawn(move || {
                        let mut rng = SimRng::new(0xA11 + r);
                        let mut got = Vec::new();
                        while !done.load(Ordering::Acquire) {
                            let b = rng.range_u64(0, KEYS);
                            if let GetOutcome::Hit { version, .. } =
                                h.get(SimTime::ZERO, VmId(0), pool, addr(1, b))
                            {
                                got.push((b, version.0));
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut writer = cache.clone();
            for round in 0..ROUNDS {
                for b in 0..KEYS {
                    writer.put(
                        SimTime::ZERO,
                        VmId(0),
                        pool,
                        addr(1, b),
                        PageVersion(round + 1),
                    );
                }
            }
            done.store(true, Ordering::Release);
            readers
                .into_iter()
                .flat_map(|h| h.join().expect("reader panicked"))
                .collect()
        });

        for &(b, v) in &hits {
            assert!(
                (1..=ROUNDS).contains(&v),
                "block {b} returned version {v}, which no put ever stored"
            );
        }
        let mut seen = hits.clone();
        seen.sort_unstable();
        assert!(
            seen.windows(2).all(|w| w[0] != w[1]),
            "exclusivity violated: a (block, version) pair was served twice"
        );
        let findings = audit(&cache);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn strict_mode_confines_a_pool_to_its_partition() {
        let mut cache = ShardedCache::new(
            CacheConfig::mem_only(64).with_mode(PartitionMode::Strict),
            4,
        );
        cache.add_vm(VmId(0), 100);
        cache.add_vm(VmId(1), 100);
        let a = cache.create_pool(VmId(0), CachePolicy::mem(100));
        let _b = cache.create_pool(VmId(1), CachePolicy::mem(100));
        for i in 0..200 {
            cache.put(SimTime::ZERO, VmId(0), a, addr(1, i), PageVersion(i));
        }
        let sa = cache.pool_stats(VmId(0), a).unwrap();
        assert!(
            sa.mem_pages <= sa.entitlement_pages,
            "strict pool overflowed: {} used, {} entitled",
            sa.mem_pages,
            sa.entitlement_pages
        );
        let findings = audit(&cache);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
