//! The tournament tree over per-shard front sequences.
//!
//! Global-mode eviction must evict in one cross-shard FIFO order: the
//! victim is always the entry with the globally smallest insertion
//! sequence. PR 5's implementation found it by locking *every* shard
//! and merging their queue fronts — correct, but the lock-all convoy is
//! exactly what a batch of evicting writers serializes on. [`FrontTree`]
//! replaces the scan with a classic loser-style tournament: one atomic
//! leaf per shard holding the sequence stamp of that shard's FIFO front
//! entry, and a binary heap of internal nodes each holding the winning
//! (minimum) leaf below it. Finding the global victim is a root read;
//! maintaining the tree after a front change replays one leaf-to-root
//! path. An evictor therefore touches only the winner's shard lock plus
//! the `log2(shards)` path of the shard it changed.
//!
//! # What a leaf means
//!
//! A leaf holds the sequence stamp of the *front entry* of the shard's
//! FIFO for one placement — live or lazily-deleted alike — or
//! [`EMPTY_FRONT`] when the queue is empty. Tracking the raw front
//! (rather than the first *live* entry) keeps the maintenance rule
//! local: operations that merely kill an entry in place (flush, exclusive
//! get, pool destroy) leave the queue untouched and need no tree update;
//! only operations that change the queue head or tail tuple re-sync the
//! leaf. The evictor pops dead fronts under the winner's shard lock and
//! re-syncs, exactly as the lock-all path did — the tree may briefly
//! point at a dead front, which costs one extra validation round, never
//! a wrong victim.
//!
//! # Consistency
//!
//! Leaves are published with a release store under the owning shard's
//! lock. Node propagation is serialized by a tiny internal mutex —
//! without it, two racing propagations could leave an internal node
//! stale *at rest*, which would be unauditable. The mutex is cheap
//! ([`FrontTree::set_leaf`] early-outs when the leaf value is unchanged,
//! and front changes are rare relative to gets) and is always acquired
//! after any shard locks, so it extends the existing lock order instead
//! of complicating it. Because sequence stamps are globally unique,
//! ties cannot occur between distinct live fronts; the left child wins
//! on equal [`EMPTY_FRONT`] entries.
//!
//! A reader racing a propagation can see a stale root. The eviction
//! loop therefore re-validates the winner *after* locking the winning
//! shard and re-syncing its leaf, retrying on mismatch — the same
//! optimistic shape as PR 5's two-phase eviction.

#![allow(clippy::needless_range_loop)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Leaf value for a shard whose FIFO (for this placement) is empty.
pub const EMPTY_FRONT: u64 = u64::MAX;

/// A tournament (winner) tree of per-shard front sequences. One
/// instance per placement. See the module docs.
#[derive(Debug)]
pub struct FrontTree {
    /// `leaves[s]` = front entry seq of shard `s`, or [`EMPTY_FRONT`].
    leaves: Vec<AtomicU64>,
    /// Internal winner nodes, heap-shaped: `nodes[1]` is the root,
    /// `nodes[i]`'s children are `2i`/`2i+1`. Each node stores the
    /// winning *leaf index* below it (as u64; `EMPTY_FRONT` when the
    /// whole subtree is empty). `nodes[0]` is unused.
    nodes: Vec<AtomicU64>,
    /// First heap slot that maps to a leaf: heap slot `leaf_base + s`
    /// is leaf `s`. Power of two ≥ the leaf count.
    leaf_base: usize,
    /// Serializes node propagation (never leaf publication).
    propagate: Mutex<()>,
}

impl FrontTree {
    /// Builds a tree for `shards` leaves, all empty.
    pub fn new(shards: usize) -> FrontTree {
        // At least 2 so the root `nodes[1]` exists even for one shard.
        let leaf_base = shards.max(2).next_power_of_two();
        FrontTree {
            leaves: (0..shards).map(|_| AtomicU64::new(EMPTY_FRONT)).collect(),
            nodes: (0..leaf_base)
                .map(|_| AtomicU64::new(EMPTY_FRONT))
                .collect(),
            leaf_base,
            propagate: Mutex::new(()),
        }
    }

    /// The seq a heap slot currently competes with.
    fn slot_seq(&self, slot: usize) -> u64 {
        if slot >= self.leaf_base {
            // Leaf slot (possibly beyond the real leaf count → empty).
            match self.leaves.get(slot - self.leaf_base) {
                Some(l) => l.load(Ordering::Acquire),
                None => EMPTY_FRONT,
            }
        } else {
            // Internal node: competes with its winner's leaf value.
            match self.nodes[slot].load(Ordering::Acquire) {
                EMPTY_FRONT => EMPTY_FRONT,
                winner => self.leaves[winner as usize].load(Ordering::Acquire),
            }
        }
    }

    /// The leaf index a heap slot's subtree currently nominates.
    fn slot_winner(&self, slot: usize) -> u64 {
        if slot >= self.leaf_base {
            let leaf = slot - self.leaf_base;
            match self.leaves.get(leaf) {
                Some(l) if l.load(Ordering::Acquire) != EMPTY_FRONT => leaf as u64,
                _ => EMPTY_FRONT,
            }
        } else {
            self.nodes[slot].load(Ordering::Acquire)
        }
    }

    /// Publishes shard `leaf`'s current front seq (`EMPTY_FRONT` for an
    /// empty queue) and replays its leaf-to-root path. Call under the
    /// owning shard's lock so the published value cannot go stale
    /// unnoticed. No-op when the value is unchanged.
    pub fn set_leaf(&self, leaf: usize, seq: u64) {
        if self.leaves[leaf].swap(seq, Ordering::AcqRel) == seq {
            return;
        }
        let _guard = self.propagate.lock().expect("front tree poisoned");
        let mut slot = (self.leaf_base + leaf) / 2;
        while slot >= 1 {
            let left = self.slot_winner(slot * 2);
            let left_seq = self.slot_seq(slot * 2);
            let right_seq = self.slot_seq(slot * 2 + 1);
            // Unique seqs make real ties impossible; left wins the
            // empty-vs-empty case.
            let winner = if left_seq <= right_seq {
                if left_seq == EMPTY_FRONT {
                    EMPTY_FRONT
                } else {
                    left
                }
            } else {
                self.slot_winner(slot * 2 + 1)
            };
            self.nodes[slot].store(winner, Ordering::Release);
            slot /= 2;
        }
    }

    /// The current leaf value for shard `leaf` (auditor use).
    pub fn leaf(&self, leaf: usize) -> u64 {
        self.leaves[leaf].load(Ordering::Acquire)
    }

    /// The shard currently holding the globally oldest front entry, or
    /// `None` if every leaf is empty. A stale answer is possible under
    /// concurrent front changes; callers re-validate under the winner's
    /// shard lock.
    pub fn winner(&self) -> Option<usize> {
        match self.nodes[1].load(Ordering::Acquire) {
            EMPTY_FRONT => None,
            w => Some(w as usize),
        }
    }

    /// Recomputes the winner from the leaves alone, ignoring internal
    /// nodes (the auditor checks the stored root against this).
    pub fn recompute_winner(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, l) in self.leaves.iter().enumerate() {
            let seq = l.load(Ordering::Acquire);
            if seq != EMPTY_FRONT && best.is_none_or(|(b, _)| seq < b) {
                best = Some((seq, i));
            }
        }
        best.map(|(_, i)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_has_no_winner() {
        let t = FrontTree::new(8);
        assert_eq!(t.winner(), None);
        assert_eq!(t.recompute_winner(), None);
    }

    #[test]
    fn winner_tracks_minimum_leaf() {
        let t = FrontTree::new(5); // non-power-of-two leaf count
        t.set_leaf(3, 40);
        assert_eq!(t.winner(), Some(3));
        t.set_leaf(0, 10);
        assert_eq!(t.winner(), Some(0));
        t.set_leaf(4, 5);
        assert_eq!(t.winner(), Some(4));
        t.set_leaf(4, EMPTY_FRONT);
        assert_eq!(t.winner(), Some(0));
        t.set_leaf(0, 99);
        assert_eq!(t.winner(), Some(3));
        assert_eq!(t.winner(), t.recompute_winner());
    }

    #[test]
    fn single_shard_tree() {
        let t = FrontTree::new(1);
        assert_eq!(t.winner(), None);
        t.set_leaf(0, 7);
        assert_eq!(t.winner(), Some(0));
        t.set_leaf(0, EMPTY_FRONT);
        assert_eq!(t.winner(), None);
    }

    #[test]
    fn randomized_matches_linear_scan() {
        use ddc_sim::SimRng;
        let mut rng = SimRng::new(0xF207);
        for case in 0..100 {
            let mut case_rng = rng.fork(case);
            let shards = case_rng.range_u64(1, 17) as usize;
            let t = FrontTree::new(shards);
            for _ in 0..200 {
                let leaf = case_rng.range_u64(0, shards as u64) as usize;
                let seq = if case_rng.chance(0.2) {
                    EMPTY_FRONT
                } else {
                    case_rng.range_u64(0, 1000)
                };
                t.set_leaf(leaf, seq);
                // Nodes must be exactly consistent at rest (the
                // propagation mutex guarantees it even under races;
                // single-threaded it is trivially true).
                let want = t.recompute_winner();
                let got = t.winner();
                match (want, got) {
                    (None, None) => {}
                    (Some(w), Some(g)) => {
                        // Distinct leaves may share a seq in this test;
                        // accept any leaf holding the minimum value.
                        assert_eq!(t.leaf(g), t.leaf(w), "winner not minimal");
                    }
                    other => panic!("winner mismatch: {other:?}"),
                }
            }
        }
    }
}
