//! One snapshot/merge interface for the ad-hoc counter blocks
//! (`FaultTotals`, `RemoteCounters`, `WearCounters`, ...).
//!
//! Every subsystem used to hand-roll the same three things for its
//! counter struct: a field-wise `absorb`, a field-by-field JSON
//! renderer, and a field-by-field JSON parser. [`CounterSnapshot`]
//! centralizes the shape — implementors list their fields once via
//! [`counter_snapshot!`] and the render/parse/merge plumbing falls out
//! of the field list, in a stable declared order (which is what keeps
//! the byte-identical report contracts honest).

use ddc_json::Json;

/// A plain block of `u64` counters that can be snapshotted into JSON,
/// parsed back, and merged field-wise.
pub trait CounterSnapshot: Default {
    /// Stable subsystem name (used as a JSON key / report label).
    const NAME: &'static str;

    /// `(field name, value)` pairs in declared order — the JSON render
    /// order and the parse schema.
    fn fields(&self) -> Vec<(&'static str, u64)>;

    /// Sets one field by name; `false` if the name is unknown.
    fn set_field(&mut self, name: &str, value: u64) -> bool;

    /// Field-wise accumulation of another snapshot.
    fn absorb(&mut self, other: &Self);
}

/// Implements [`CounterSnapshot`] for a struct of `u64` fields. The
/// field list is the single source of truth for merge order, JSON
/// render order and the parse schema.
#[macro_export]
macro_rules! counter_snapshot {
    ($ty:ty, $name:literal, { $($field:ident),+ $(,)? }) => {
        impl $crate::CounterSnapshot for $ty {
            const NAME: &'static str = $name;

            fn fields(&self) -> ::std::vec::Vec<(&'static str, u64)> {
                ::std::vec![$((stringify!($field), self.$field)),+]
            }

            fn set_field(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($field) => {
                        self.$field = value;
                        true
                    })+
                    _ => false,
                }
            }

            fn absorb(&mut self, other: &Self) {
                $(self.$field += other.$field;)+
            }
        }
    };
}

/// Renders a snapshot as a JSON object, fields in declared order.
pub fn snapshot_json<T: CounterSnapshot>(t: &T) -> Json {
    let mut o = Json::object();
    for (name, value) in t.fields() {
        o.set(name, value);
    }
    o
}

/// Parses a snapshot from a JSON object. Every declared field must be
/// present as a number; unknown extra keys are ignored.
pub fn snapshot_from_json<T: CounterSnapshot>(v: &Json) -> Option<T> {
    let mut out = T::default();
    for (name, _) in T::default().fields() {
        let value = v.get(name).and_then(Json::as_f64)? as u64;
        out.set_field(name, value);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, PartialEq, Debug)]
    struct Demo {
        alpha: u64,
        beta: u64,
    }
    counter_snapshot!(Demo, "demo", { alpha, beta });

    #[test]
    fn fields_render_parse_roundtrip() {
        let d = Demo { alpha: 3, beta: 9 };
        assert_eq!(Demo::NAME, "demo");
        assert_eq!(d.fields(), vec![("alpha", 3), ("beta", 9)]);
        let json = snapshot_json(&d);
        let back: Demo = snapshot_from_json(&json).expect("roundtrip");
        assert_eq!(back, d);
        // A missing field refuses to parse.
        let mut partial = Json::object();
        partial.set("alpha", 1u64);
        assert!(snapshot_from_json::<Demo>(&partial).is_none());
    }

    #[test]
    fn absorb_is_field_wise() {
        let mut a = Demo { alpha: 1, beta: 2 };
        a.absorb(&Demo {
            alpha: 10,
            beta: 20,
        });
        assert_eq!(
            a,
            Demo {
                alpha: 11,
                beta: 22
            }
        );
    }

    #[test]
    fn set_field_rejects_unknown() {
        let mut d = Demo::default();
        assert!(d.set_field("alpha", 5));
        assert!(!d.set_field("gamma", 5));
        assert_eq!(d.alpha, 5);
    }
}
