//! Counters for the batched write plane (DESIGN.md §18).
//!
//! The sharded engine's `*_many` entry points group operations per
//! destination shard and apply each group under one lock acquisition,
//! draining pending journal records as contiguous generation runs.
//! This block is the attribution story for that plane:
//! `batched_ops / lock_acquisitions` is the amortization actually
//! achieved, `journal_appends` counts scratch drains (batch appends),
//! and the reservation pair tracks how often the optimistic
//! home-shard-only put path had to retry or fall back to lock-all.

/// Counters for the batched write plane, snapshotted from the sharded
/// engine's atomics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchCounters {
    /// Operations applied through the batched (`*_many`) entry points.
    pub batched_ops: u64,
    /// Shard-lock acquisitions charged to those entry points (group
    /// entries plus mid-group re-locks around eviction/compaction).
    pub lock_acquisitions: u64,
    /// Scratch drains — journal batch appends, each claiming one
    /// contiguous generation run.
    pub journal_appends: u64,
    /// Reservation-path puts that re-validated stale and retried.
    pub reservation_retries: u64,
    /// Reservation-path puts that fell back to the lock-all path.
    pub reservation_fallbacks: u64,
}

crate::counter_snapshot!(BatchCounters, "batch", {
    batched_ops,
    lock_acquisitions,
    journal_appends,
    reservation_retries,
    reservation_fallbacks,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{snapshot_from_json, snapshot_json, CounterSnapshot};

    #[test]
    fn batch_counters_roundtrip_and_absorb() {
        let mut a = BatchCounters {
            batched_ops: 10,
            lock_acquisitions: 2,
            journal_appends: 1,
            reservation_retries: 3,
            reservation_fallbacks: 1,
        };
        let json = snapshot_json(&a);
        let back: BatchCounters = snapshot_from_json(&json).expect("roundtrip");
        assert_eq!(back, a);
        a.absorb(&back);
        assert_eq!(a.batched_ops, 20);
        assert_eq!(a.reservation_fallbacks, 2);
    }
}
