//! Log-bucketed latency histogram.

use std::fmt;

use ddc_sim::SimDuration;

/// A latency histogram with logarithmic buckets from 1 ns to ~18 s.
///
/// Records exact sums for the mean and bucketed counts for quantiles, which
/// is plenty of resolution for the millisecond-scale latencies the paper's
/// Table 2 reports.
///
/// # Example
///
/// ```
/// use ddc_metrics::LatencyHistogram;
/// use ddc_sim::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for us in [100, 200, 300] {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.mean(), SimDuration::from_micros(200));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    // Bucket i holds samples with floor(log2(nanos)) == i.
    buckets: [u64; 64],
    count: u64,
    total: u128,
    max: SimDuration,
    min: Option<SimDuration>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            total: 0,
            max: SimDuration::ZERO,
            min: None,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, latency: SimDuration) {
        let nanos = latency.as_nanos();
        let bucket = if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total += nanos as u128;
        self.max = self.max.max(latency);
        self.min = Some(match self.min {
            Some(m) => m.min(latency),
            None => latency,
        });
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.total / self.count as u128) as u64)
    }

    /// Largest sample seen.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Smallest sample seen (zero if empty).
    pub fn min(&self) -> SimDuration {
        self.min.unwrap_or(SimDuration::ZERO)
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i, clamped by the true max.
                let bound = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimDuration::from_nanos(bound).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(10));
        h.record(SimDuration::from_nanos(30));
        assert_eq!(h.mean(), SimDuration::from_nanos(20));
    }

    #[test]
    fn min_max_track_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(5));
        h.record(SimDuration::from_micros(1));
        h.record(SimDuration::from_micros(9));
        assert_eq!(h.min(), SimDuration::from_micros(1));
        assert_eq!(h.max(), SimDuration::from_micros(9));
    }

    #[test]
    fn quantile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p10 = h.quantile(0.1);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p10 <= p50 && p50 <= p99);
        assert!(p99 <= h.max());
    }

    #[test]
    fn quantile_single_sample() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(3));
        assert_eq!(h.quantile(0.0), SimDuration::from_millis(3));
        assert_eq!(h.quantile(1.0), SimDuration::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_rejects_out_of_range() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn zero_latency_sample_ok() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_micros(20));
        assert_eq!(a.max(), SimDuration::from_micros(30));
        assert_eq!(a.min(), SimDuration::from_micros(10));
    }

    #[test]
    fn merge_into_empty() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        b.record(SimDuration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), SimDuration::from_micros(7));
    }

    #[test]
    fn display_mentions_fields() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(100));
        let s = h.to_string();
        assert!(s.contains("n=1"));
        assert!(s.contains("mean="));
    }
}
