//! Measurement and reporting utilities for the DoubleDecker reproduction.
//!
//! The paper reports application throughput (ops/sec and MB/s), IO latency,
//! cache hit ("lookup-to-store") ratios, eviction counts, and cache
//! occupancy over time. This crate provides the collection types
//! ([`Counter`], [`LatencyHistogram`], [`OpsRecorder`]) and the plain-text
//! table/figure renderers the `repro` harness uses to print paper-style
//! output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod histogram;
mod recorder;
mod snapshot;
mod table;

pub use batch::BatchCounters;
pub use histogram::LatencyHistogram;
pub use recorder::{Counter, OpsRecorder, ThroughputReport};
pub use snapshot::{snapshot_from_json, snapshot_json, CounterSnapshot};
pub use table::{render_ascii_chart, TextTable};
