//! Operation counters and throughput reporting.

use std::fmt;

use ddc_sim::{SimDuration, SimTime};

use crate::LatencyHistogram;

/// A simple monotone counter.
///
/// # Example
///
/// ```
/// use ddc_metrics::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Records completed application operations: count, bytes moved, and
/// per-operation latency. One recorder per workload/container.
///
/// A *measurement window* can be opened with [`mark`](Self::mark) after
/// warm-up; [`window_report`](Self::window_report) then reports
/// steady-state rates, the way the paper's evaluation measures after its
/// ramp phase.
#[derive(Clone, Debug, Default)]
pub struct OpsRecorder {
    ops: u64,
    bytes: u64,
    latency: LatencyHistogram,
    first_at: Option<SimTime>,
    last_at: Option<SimTime>,
    mark_at: Option<SimTime>,
    window_ops: u64,
    window_bytes: u64,
    window_latency: LatencyHistogram,
}

impl OpsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> OpsRecorder {
        OpsRecorder::default()
    }

    /// Records one completed operation that moved `bytes` bytes and took
    /// `latency`, finishing at `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64, latency: SimDuration) {
        self.ops += 1;
        self.bytes += bytes;
        self.latency.record(latency);
        if self.first_at.is_none() {
            self.first_at = Some(at);
        }
        self.last_at = Some(at);
        if self.mark_at.is_some() {
            self.window_ops += 1;
            self.window_bytes += bytes;
            self.window_latency.record(latency);
        }
    }

    /// Opens (or reopens) a measurement window at `at`: subsequent
    /// operations also count toward the window, and
    /// [`window_report`](Self::window_report) reports rates since `at`.
    pub fn mark(&mut self, at: SimTime) {
        self.mark_at = Some(at);
        self.window_ops = 0;
        self.window_bytes = 0;
        self.window_latency = LatencyHistogram::new();
    }

    /// The window-open instant, if a window was marked.
    pub fn mark_at(&self) -> Option<SimTime> {
        self.mark_at
    }

    /// Throughput report over the marked window `[mark, until]`; falls
    /// back to the whole-run report when no window was marked.
    pub fn window_report(&self, until: SimTime) -> ThroughputReport {
        let Some(mark) = self.mark_at else {
            return self.report(until);
        };
        let secs = until
            .saturating_since(mark)
            .as_secs_f64()
            .max(f64::MIN_POSITIVE);
        ThroughputReport {
            ops: self.window_ops,
            ops_per_sec: self.window_ops as f64 / secs,
            mb_per_sec: self.window_bytes as f64 / 1e6 / secs,
            mean_latency: self.window_latency.mean(),
            p99_latency: self.window_latency.quantile(0.99),
        }
    }

    /// Completed operation count.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total bytes moved by completed operations.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Builds a throughput report over the duration `[SimTime::ZERO, until]`.
    pub fn report(&self, until: SimTime) -> ThroughputReport {
        let secs = until.as_secs_f64().max(f64::MIN_POSITIVE);
        ThroughputReport {
            ops: self.ops,
            ops_per_sec: self.ops as f64 / secs,
            mb_per_sec: self.bytes as f64 / 1e6 / secs,
            mean_latency: self.latency.mean(),
            p99_latency: self.latency.quantile(0.99),
        }
    }
}

/// A summarized throughput/latency report, the unit of Table 2/Table 4
/// rows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputReport {
    /// Operations completed.
    pub ops: u64,
    /// Operations per second of virtual time.
    pub ops_per_sec: f64,
    /// Megabytes per second of virtual time.
    pub mb_per_sec: f64,
    /// Mean operation latency.
    pub mean_latency: SimDuration,
    /// 99th-percentile operation latency.
    pub p99_latency: SimDuration,
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ops/s, {:.2} MB/s, mean latency {:.2} ms",
            self.ops_per_sec,
            self.mb_per_sec,
            self.mean_latency.as_millis_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn recorder_accumulates() {
        let mut r = OpsRecorder::new();
        r.record(SimTime::from_secs(1), 4096, SimDuration::from_micros(100));
        r.record(SimTime::from_secs(2), 4096, SimDuration::from_micros(300));
        assert_eq!(r.ops(), 2);
        assert_eq!(r.bytes(), 8192);
        assert_eq!(r.latency().count(), 2);
    }

    #[test]
    fn report_rates() {
        let mut r = OpsRecorder::new();
        for i in 0..100 {
            r.record(
                SimTime::from_secs(i),
                1_000_000,
                SimDuration::from_millis(1),
            );
        }
        let rep = r.report(SimTime::from_secs(100));
        assert!((rep.ops_per_sec - 1.0).abs() < 1e-9);
        assert!((rep.mb_per_sec - 1.0).abs() < 1e-9);
        assert_eq!(rep.ops, 100);
        assert_eq!(rep.mean_latency, SimDuration::from_millis(1));
    }

    #[test]
    fn window_report_measures_steady_state() {
        let mut r = OpsRecorder::new();
        // Slow warm-up: 10 ops in 10 s.
        for i in 0..10 {
            r.record(
                SimTime::from_secs(i),
                1_000_000,
                SimDuration::from_millis(100),
            );
        }
        r.mark(SimTime::from_secs(10));
        assert_eq!(r.mark_at(), Some(SimTime::from_secs(10)));
        // Fast steady state: 100 ops in 10 s.
        for i in 0..100 {
            r.record(
                SimTime::from_secs(10) + SimDuration::from_millis(i * 100),
                1_000_000,
                SimDuration::from_millis(1),
            );
        }
        let whole = r.report(SimTime::from_secs(20));
        let window = r.window_report(SimTime::from_secs(20));
        assert_eq!(whole.ops, 110);
        assert_eq!(window.ops, 100);
        assert!((window.ops_per_sec - 10.0).abs() < 1e-9);
        assert_eq!(window.mean_latency, SimDuration::from_millis(1));
        assert!(whole.mean_latency > window.mean_latency);
    }

    #[test]
    fn window_report_without_mark_falls_back() {
        let mut r = OpsRecorder::new();
        r.record(SimTime::from_secs(1), 1_000, SimDuration::from_millis(1));
        assert_eq!(
            r.window_report(SimTime::from_secs(2)),
            r.report(SimTime::from_secs(2))
        );
    }

    #[test]
    fn remark_resets_window() {
        let mut r = OpsRecorder::new();
        r.mark(SimTime::from_secs(0));
        r.record(SimTime::from_secs(1), 1_000, SimDuration::from_millis(1));
        r.mark(SimTime::from_secs(2));
        let w = r.window_report(SimTime::from_secs(3));
        assert_eq!(w.ops, 0);
    }

    #[test]
    fn empty_report_is_zero() {
        let rep = OpsRecorder::new().report(SimTime::from_secs(10));
        assert_eq!(rep.ops, 0);
        assert_eq!(rep.ops_per_sec, 0.0);
        assert_eq!(rep.mb_per_sec, 0.0);
    }

    #[test]
    fn report_display() {
        let mut r = OpsRecorder::new();
        r.record(
            SimTime::from_secs(1),
            2_000_000,
            SimDuration::from_millis(2),
        );
        let s = r.report(SimTime::from_secs(2)).to_string();
        assert!(s.contains("ops/s"));
        assert!(s.contains("MB/s"));
    }
}
