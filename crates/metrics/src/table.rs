//! Plain-text rendering for paper-style tables and figures.

use std::fmt::Write as _;

use ddc_sim::TimeSeries;

/// An ASCII table builder used by the `repro` harness to print rows in the
/// same layout as the paper's tables.
///
/// # Example
///
/// ```
/// use ddc_metrics::TextTable;
///
/// let mut t = TextTable::new(vec!["Workload", "Throughput"]);
/// t.row(vec!["Webserver".into(), "93.7".into()]);
/// let s = t.render();
/// assert!(s.contains("Webserver"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let _ = write!(line, " {:<width$} ", cells[i], width = widths[i]);
                if i + 1 < cols {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders one or more time series as a shared-axis ASCII chart, the
/// textual analogue of the paper's occupancy figures.
///
/// Each series becomes one braille-free line chart row block of height
/// `height`; values are scaled to the global maximum.
pub fn render_ascii_chart(series: &[&TimeSeries], width: usize, height: usize) -> String {
    if series.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let global_max = series
        .iter()
        .filter_map(|s| s.max_value())
        .fold(0.0_f64, f64::max);
    let mut out = String::new();
    for s in series {
        let pts = s.thin(width);
        let _ = writeln!(
            out,
            "{} (max {:.1})",
            s.name(),
            s.max_value().unwrap_or(0.0)
        );
        if pts.is_empty() || global_max <= 0.0 {
            let _ = writeln!(out, "  (no data)");
            continue;
        }
        let mut grid = vec![vec![' '; pts.len()]; height];
        for (x, p) in pts.iter().enumerate() {
            let scaled = (p.value / global_max * (height as f64 - 1.0)).round() as usize;
            let y = scaled.min(height - 1);
            for row in grid.iter().take(y + 1) {
                let _ = row; // fill below the curve
            }
            for (level, row) in grid.iter_mut().enumerate() {
                if level <= y {
                    row[x] = if level == y { '*' } else { '.' };
                }
            }
        }
        for level in (0..height).rev() {
            let line: String = grid[level].iter().collect();
            let _ = writeln!(out, "  |{line}");
        }
        let _ = writeln!(out, "  +{}", "-".repeat(pts.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::SimTime;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "workload"]);
        t.row(vec!["1".into(), "web".into()]);
        t.row(vec!["22".into(), "videoserver".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('|'));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.row_count(), 2);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn chart_renders_series() {
        let mut s = TimeSeries::new("cache");
        for sec in 0..50 {
            s.record(SimTime::from_secs(sec), sec as f64);
        }
        let out = render_ascii_chart(&[&s], 40, 8);
        assert!(out.contains("cache"));
        assert!(out.contains('*'));
        assert!(out.lines().count() > 8);
    }

    #[test]
    fn chart_empty_inputs() {
        assert_eq!(render_ascii_chart(&[], 40, 8), "");
        let s = TimeSeries::new("empty");
        let out = render_ascii_chart(&[&s], 40, 8);
        assert!(out.contains("no data"));
    }

    #[test]
    fn chart_scales_to_global_max() {
        let mut a = TimeSeries::new("small");
        let mut b = TimeSeries::new("big");
        a.record(SimTime::from_secs(1), 1.0);
        b.record(SimTime::from_secs(1), 100.0);
        let out = render_ascii_chart(&[&a, &b], 10, 4);
        // The small series should sit at the bottom row of its block.
        assert!(out.contains("small (max 1.0)"));
        assert!(out.contains("big (max 100.0)"));
    }
}
