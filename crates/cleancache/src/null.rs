//! A backend with caching disabled.

use ddc_sim::SimTime;
use ddc_storage::{BlockAddr, FileId};

use crate::{
    CachePolicy, GetOutcome, PageVersion, PoolId, PoolStats, PutOutcome, SecondChanceCache, VmId,
};

/// A second-chance cache that stores nothing: every `get` misses and every
/// `put` is rejected. Pool lifecycle still hands out unique ids so the
/// guest-side plumbing is exercised.
///
/// Used as the "no hypervisor cache" baseline and in guest-layer tests.
#[derive(Clone, Debug, Default)]
pub struct NullCache {
    next_pool: u32,
    live_pools: u64,
}

impl NullCache {
    /// Creates an empty backend.
    pub fn new() -> NullCache {
        NullCache::default()
    }

    /// Number of pools currently registered.
    pub fn live_pools(&self) -> u64 {
        self.live_pools
    }
}

impl SecondChanceCache for NullCache {
    fn create_pool(&mut self, _vm: VmId, _policy: CachePolicy) -> PoolId {
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        self.live_pools += 1;
        id
    }

    fn destroy_pool(&mut self, _vm: VmId, _pool: PoolId) {
        self.live_pools = self.live_pools.saturating_sub(1);
    }

    fn set_policy(&mut self, _vm: VmId, _pool: PoolId, _policy: CachePolicy) {}

    fn migrate_object(&mut self, _vm: VmId, _from: PoolId, _to: PoolId, _addr: BlockAddr) {}

    fn pool_stats(&self, _vm: VmId, _pool: PoolId) -> Option<PoolStats> {
        Some(PoolStats::default())
    }

    fn get(&mut self, _now: SimTime, _vm: VmId, _pool: PoolId, _addr: BlockAddr) -> GetOutcome {
        GetOutcome::Miss
    }

    fn put(
        &mut self,
        _now: SimTime,
        _vm: VmId,
        _pool: PoolId,
        _addr: BlockAddr,
        _version: PageVersion,
    ) -> PutOutcome {
        PutOutcome::Rejected
    }

    fn flush(&mut self, _vm: VmId, _pool: PoolId, _addr: BlockAddr) -> u64 {
        0
    }

    fn flush_file(&mut self, _vm: VmId, _pool: PoolId, _file: FileId) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_misses_and_rejects() {
        let mut c = NullCache::new();
        let pool = c.create_pool(VmId(0), CachePolicy::default());
        let addr = BlockAddr::new(FileId(1), 2);
        assert_eq!(c.get(SimTime::ZERO, VmId(0), pool, addr), GetOutcome::Miss);
        assert_eq!(
            c.put(SimTime::ZERO, VmId(0), pool, addr, PageVersion(0)),
            PutOutcome::Rejected
        );
        c.flush(VmId(0), pool, addr);
        c.flush_file(VmId(0), pool, FileId(1));
        assert_eq!(c.pool_stats(VmId(0), pool), Some(PoolStats::default()));
    }

    #[test]
    fn pool_ids_unique() {
        let mut c = NullCache::new();
        let a = c.create_pool(VmId(0), CachePolicy::default());
        let b = c.create_pool(VmId(1), CachePolicy::default());
        assert_ne!(a, b);
        assert_eq!(c.live_pools(), 2);
        c.destroy_pool(VmId(0), a);
        assert_eq!(c.live_pools(), 1);
    }

    #[test]
    fn is_object_safe() {
        fn takes_dyn(_: &mut dyn SecondChanceCache) {}
        takes_dyn(&mut NullCache::new());
    }
}
