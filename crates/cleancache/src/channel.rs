//! The guest→hypervisor hypercall channel.
//!
//! Every cleancache operation issued from inside a VM traps to the
//! hypervisor via a VMCALL and copies its arguments to host memory (paper
//! §4). The channel charges that fixed cost on the caller's virtual clock
//! and keeps the per-VM operation counters used in the evaluation.
//!
//! # Failure semantics (fail-open)
//!
//! The channel is the guest's failure boundary. Cleancache is best-effort
//! by contract, so every data-path failure degrades to the slow path
//! rather than an error the guest has to handle:
//!
//! * a backend `get` failure is translated to a **miss** (the guest falls
//!   back to its virtual disk) and counted in
//!   [`ChannelCounters::fail_opens`],
//! * a *dropped* call (injected via [`FaultSchedule`]) behaves like a
//!   miss / rejection and is counted in
//!   [`ChannelCounters::dropped_calls`],
//! * repeated `put` failures trip a **circuit breaker**: the channel
//!   stops issuing puts to the failing store and probes for recovery
//!   with exponential backoff, so a sick backend is not hammered with
//!   hypercalls that will fail anyway.
//!
//! Only `get`/`put` may fail or drop. `flush` and the control operations
//! are defined reliable: a dropped flush would leave a stale page in the
//! cache and break coherence, so invalidations are modelled as
//! synchronous-reliable (the real implementation spins until the
//! hypercall is acknowledged).

use ddc_sim::{BreakerConfig, CircuitBreaker, FaultDecision, FaultSchedule, SimDuration, SimTime};
use ddc_storage::{BlockAddr, FileId};

use crate::{
    CachePolicy, GetOutcome, PageVersion, PoolId, PoolStats, PutOutcome, SecondChanceCache, VmId,
};

/// Counters kept by a [`HypercallChannel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Total hypercalls issued (all operation kinds).
    pub calls: u64,
    /// `get` operations issued.
    pub gets: u64,
    /// `get` operations that hit.
    pub get_hits: u64,
    /// `put` operations issued.
    pub puts: u64,
    /// `put` operations accepted.
    pub put_stores: u64,
    /// `flush` operations issued (block and whole-file).
    pub flushes: u64,
    /// Control-plane operations (pool lifecycle, policy, stats).
    pub control_ops: u64,
    /// Backend failures served fail-open: `get` failures translated
    /// into misses, `put` failures the guest treats as not-retained.
    pub fail_opens: u64,
    /// Data-path calls dropped by the channel's fault schedule.
    pub dropped_calls: u64,
    /// Times the put circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Puts skipped locally while the breaker was open.
    pub breaker_skipped_puts: u64,
    /// Times an open breaker's probe put succeeded and closed it.
    pub breaker_recoveries: u64,
}

// The put circuit breaker is the shared `ddc_sim::CircuitBreaker` state
// machine, configured with this channel's thresholds below.

/// The per-VM hypercall path to a second-chance cache backend.
///
/// The channel does not own the backend: the host owns it, and the guest
/// passes `&mut dyn SecondChanceCache` per call. This mirrors the real
/// structure (the cache store lives in the hypervisor; the guest merely
/// traps into it) and keeps the simulation single-owner.
///
/// # Example
///
/// ```
/// use ddc_cleancache::{CachePolicy, HypercallChannel, NullCache, VmId};
/// use ddc_sim::SimTime;
/// use ddc_storage::{BlockAddr, FileId};
///
/// let mut backend = NullCache::new();
/// let mut chan = HypercallChannel::new(VmId(0));
/// let pool = chan.create_pool(&mut backend, CachePolicy::default());
/// let out = chan.get(&mut backend, SimTime::ZERO, pool, BlockAddr::new(FileId(1), 0));
/// assert!(!out.is_hit()); // NullCache always misses
/// assert_eq!(chan.counters().gets, 1);
/// ```
#[derive(Clone, Debug)]
pub struct HypercallChannel {
    vm: VmId,
    call_cost: SimDuration,
    counters: ChannelCounters,
    enabled: bool,
    faults: Option<FaultSchedule>,
    breaker: CircuitBreaker,
    flush_epoch: u64,
}

impl HypercallChannel {
    /// Default VMCALL + argument copy cost: ~2 µs round trip, the order of
    /// magnitude measured for KVM hypercalls on the paper's era of
    /// hardware.
    pub const DEFAULT_CALL_COST: SimDuration = SimDuration::from_micros(2);

    /// Consecutive put failures that trip the circuit breaker open.
    pub const BREAKER_THRESHOLD: u32 = 3;

    /// First recovery-probe delay after the breaker trips.
    pub const BREAKER_INITIAL_BACKOFF: SimDuration = SimDuration::from_millis(10);

    /// Backoff ceiling for repeated failed probes.
    pub const BREAKER_MAX_BACKOFF: SimDuration = SimDuration::from_secs(10);

    /// Creates a channel for a VM with the default hypercall cost.
    pub fn new(vm: VmId) -> HypercallChannel {
        HypercallChannel::with_call_cost(vm, Self::DEFAULT_CALL_COST)
    }

    /// Creates a channel with an explicit per-call cost (for sensitivity
    /// experiments).
    pub fn with_call_cost(vm: VmId, call_cost: SimDuration) -> HypercallChannel {
        HypercallChannel {
            vm,
            call_cost,
            counters: ChannelCounters::default(),
            enabled: true,
            faults: None,
            breaker: CircuitBreaker::new(BreakerConfig {
                threshold: Self::BREAKER_THRESHOLD,
                initial_backoff: Self::BREAKER_INITIAL_BACKOFF,
                max_backoff: Self::BREAKER_MAX_BACKOFF,
            }),
            flush_epoch: 0,
        }
    }

    /// The VM this channel belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Disables the data path (as if the guest booted without cleancache):
    /// `get` always misses, `put` is always rejected, flushes are no-ops.
    /// Control operations still work so pools can be pre-created.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the data path is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Accumulated counters.
    pub fn counters(&self) -> ChannelCounters {
        self.counters
    }

    /// Attaches (or clears) a fault schedule dropping data-path calls.
    /// Only `get`/`put` consult it; flush and control operations are
    /// reliable by definition (see the module docs).
    pub fn set_fault_schedule(&mut self, faults: Option<FaultSchedule>) {
        self.faults = faults;
    }

    /// Whether the put circuit breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    /// The guest's **flush epoch**: the largest journal generation any
    /// acked flush hypercall returned. Because flushes are
    /// synchronous-reliable and the backend journals them durably before
    /// acking, every page version this VM has invalidated is covered by
    /// a journal record at or below this generation — crash recovery
    /// uses it to guarantee no invalidated version is resurrected.
    pub fn flush_epoch(&self) -> u64 {
        self.flush_epoch
    }

    /// Installs a recovery-issued flush epoch (after the hypervisor
    /// cache warm-restarts with a fresh journal, the checkpoint assigns
    /// each VM a new epoch in the new generation sequence).
    pub fn set_flush_epoch(&mut self, epoch: u64) {
        self.flush_epoch = epoch;
    }

    /// Consults the drop schedule for one data-path call at `now`.
    /// A `Slow` decision stretches the effective call cost.
    fn channel_decision(&mut self, now: SimTime) -> FaultDecision {
        match &mut self.faults {
            Some(f) => f.decide(now),
            None => FaultDecision::Ok,
        }
    }

    /// Records a put failure on the breaker; trips it after
    /// [`BREAKER_THRESHOLD`](Self::BREAKER_THRESHOLD) consecutive
    /// failures, doubles the backoff on a failed probe.
    fn breaker_note_failure(&mut self, now: SimTime) {
        if self.breaker.note_failure(now) {
            self.counters.breaker_trips += 1;
        }
    }

    /// Records a successful (or policy-rejected) put: the backend is
    /// reachable, so the breaker closes / the failure streak resets.
    fn breaker_note_success(&mut self) {
        if self.breaker.note_success() {
            self.counters.breaker_recoveries += 1;
        }
    }

    /// CREATE_CGROUP hypercall.
    pub fn create_pool(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        policy: CachePolicy,
    ) -> PoolId {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.create_pool(self.vm, policy)
    }

    /// DESTROY_CGROUP hypercall.
    pub fn destroy_pool(&mut self, backend: &mut dyn SecondChanceCache, pool: PoolId) {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.destroy_pool(self.vm, pool);
    }

    /// SET_CG_WEIGHT hypercall.
    pub fn set_policy(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        pool: PoolId,
        policy: CachePolicy,
    ) {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.set_policy(self.vm, pool, policy);
    }

    /// MIGRATE_OBJECT hypercall.
    pub fn migrate_object(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        from: PoolId,
        to: PoolId,
        addr: BlockAddr,
    ) {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.migrate_object(self.vm, from, to, addr);
    }

    /// GET_STATS hypercall.
    pub fn pool_stats(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        pool: PoolId,
    ) -> Option<PoolStats> {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.pool_stats(self.vm, pool)
    }

    /// `get` hypercall: lookup-and-remove. The returned finish time
    /// includes the hypercall cost.
    ///
    /// Fail-open: a backend [`GetOutcome::Failed`] or a dropped call is
    /// translated to a miss — the guest falls back to its virtual disk
    /// and never observes the failure directly.
    pub fn get(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        now: SimTime,
        pool: PoolId,
        addr: BlockAddr,
    ) -> GetOutcome {
        self.counters.calls += 1;
        self.counters.gets += 1;
        if !self.enabled {
            return GetOutcome::Miss;
        }
        let mut call_cost = self.call_cost;
        match self.channel_decision(now) {
            FaultDecision::Error | FaultDecision::Stall(_) => {
                // The call (or its reply) was lost: the cost is paid but
                // the guest learns nothing and treats it as a miss.
                self.counters.dropped_calls += 1;
                return GetOutcome::Miss;
            }
            FaultDecision::Slow(extra) => call_cost += extra,
            // The channel has no edge cache; a flap decision is a no-op.
            FaultDecision::Ok | FaultDecision::EdgeMiss => {}
        }
        let entered = now + call_cost;
        match backend.get(entered, self.vm, pool, addr) {
            GetOutcome::Hit { finish, version } => {
                self.counters.get_hits += 1;
                GetOutcome::Hit {
                    finish: finish + call_cost,
                    version,
                }
            }
            GetOutcome::Miss => GetOutcome::Miss,
            GetOutcome::Failed { .. } => {
                self.counters.fail_opens += 1;
                GetOutcome::Miss
            }
        }
    }

    /// `put` hypercall: store a clean evicted page.
    ///
    /// Backend failures feed the circuit breaker; while it is open, puts
    /// are skipped locally (no hypercall is issued, no cost charged)
    /// until the next scheduled recovery probe.
    pub fn put(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        now: SimTime,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
    ) -> PutOutcome {
        if !self.enabled {
            self.counters.calls += 1;
            self.counters.puts += 1;
            return PutOutcome::Rejected;
        }
        if !self.breaker.allows(now) {
            // Skipped locally: the guest never traps, so this is the
            // one outcome that charges no hypercall.
            self.counters.breaker_skipped_puts += 1;
            return PutOutcome::Rejected;
        }
        self.counters.calls += 1;
        self.counters.puts += 1;
        let mut call_cost = self.call_cost;
        match self.channel_decision(now) {
            FaultDecision::Error | FaultDecision::Stall(_) => {
                self.counters.dropped_calls += 1;
                self.breaker_note_failure(now);
                return PutOutcome::Rejected;
            }
            FaultDecision::Slow(extra) => call_cost += extra,
            // The channel has no edge cache; a flap decision is a no-op.
            FaultDecision::Ok | FaultDecision::EdgeMiss => {}
        }
        let entered = now + call_cost;
        match backend.put(entered, self.vm, pool, addr, version) {
            PutOutcome::Stored { finish } => {
                self.counters.put_stores += 1;
                self.breaker_note_success();
                PutOutcome::Stored {
                    finish: finish + call_cost,
                }
            }
            PutOutcome::Rejected => {
                // Policy rejection, not infrastructure failure: the
                // backend is reachable, so the breaker resets.
                self.breaker_note_success();
                PutOutcome::Rejected
            }
            PutOutcome::Failed { finish } => {
                // The guest proceeds as if the page were merely not
                // retained, so this too is a fail-open outcome.
                self.counters.fail_opens += 1;
                self.breaker_note_failure(now);
                PutOutcome::Failed {
                    finish: finish + call_cost,
                }
            }
        }
    }

    /// `flush` hypercall for one block. Returns the backend's flush
    /// epoch for this invalidation (0 if unjournaled or disabled) and
    /// folds it into [`HypercallChannel::flush_epoch`].
    pub fn flush(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        pool: PoolId,
        addr: BlockAddr,
    ) -> u64 {
        self.counters.calls += 1;
        self.counters.flushes += 1;
        if self.enabled {
            let epoch = backend.flush(self.vm, pool, addr);
            self.flush_epoch = self.flush_epoch.max(epoch);
            epoch
        } else {
            0
        }
    }

    /// `flush` hypercall for a whole file. Epoch semantics as
    /// [`HypercallChannel::flush`].
    pub fn flush_file(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        pool: PoolId,
        file: FileId,
    ) -> u64 {
        self.counters.calls += 1;
        self.counters.flushes += 1;
        if self.enabled {
            let epoch = backend.flush_file(self.vm, pool, file);
            self.flush_epoch = self.flush_epoch.max(epoch);
            epoch
        } else {
            0
        }
    }

    // ------------------------------------------------------------------
    // Batched hypercalls: one VMCALL carries a whole sampling tick's ops.
    //
    // Per-operation counters (`gets`, `puts`, `flushes`, hit/store/fail
    // tallies) advance exactly as if each op were issued alone; only
    // `calls` — and with it the fixed trap cost and the fault-schedule /
    // breaker consultations — is charged once per batch. An empty batch
    // charges nothing.
    // ------------------------------------------------------------------

    /// Batched `get` hypercall: one trap, one outcome per address with
    /// [`HypercallChannel::get`] semantics. A dropped batch loses every
    /// lookup in it (all misses, one `dropped_calls` tick).
    pub fn get_many(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        now: SimTime,
        pool: PoolId,
        addrs: &[BlockAddr],
    ) -> Vec<GetOutcome> {
        if addrs.is_empty() {
            return Vec::new();
        }
        self.counters.calls += 1;
        self.counters.gets += addrs.len() as u64;
        if !self.enabled {
            return vec![GetOutcome::Miss; addrs.len()];
        }
        let mut call_cost = self.call_cost;
        match self.channel_decision(now) {
            FaultDecision::Error | FaultDecision::Stall(_) => {
                self.counters.dropped_calls += 1;
                return vec![GetOutcome::Miss; addrs.len()];
            }
            FaultDecision::Slow(extra) => call_cost += extra,
            // The channel has no edge cache; a flap decision is a no-op.
            FaultDecision::Ok | FaultDecision::EdgeMiss => {}
        }
        let entered = now + call_cost;
        // Adjust the backend's outcomes in place: batching must never
        // cost an extra allocation-and-move pass over what the per-op
        // loop pays (the old map/collect here was half of the
        // `channel_batched_mix` inversion).
        let mut outs = backend.get_many(entered, self.vm, pool, addrs);
        for out in &mut outs {
            match out {
                GetOutcome::Hit { finish, .. } => {
                    self.counters.get_hits += 1;
                    *finish += call_cost;
                }
                GetOutcome::Miss => {}
                GetOutcome::Failed { .. } => {
                    self.counters.fail_opens += 1;
                    *out = GetOutcome::Miss;
                }
            }
        }
        outs
    }

    /// Batched `put` hypercall: one trap, one outcome per page with
    /// [`HypercallChannel::put`] semantics. An open breaker skips the
    /// whole batch locally (no trap, no cost); per-page backend outcomes
    /// feed the breaker exactly as individual puts would.
    pub fn put_many(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        now: SimTime,
        pool: PoolId,
        pages: &[(BlockAddr, PageVersion)],
    ) -> Vec<PutOutcome> {
        if pages.is_empty() {
            return Vec::new();
        }
        if !self.enabled {
            self.counters.calls += 1;
            self.counters.puts += pages.len() as u64;
            return vec![PutOutcome::Rejected; pages.len()];
        }
        if !self.breaker.allows(now) {
            self.counters.breaker_skipped_puts += pages.len() as u64;
            return vec![PutOutcome::Rejected; pages.len()];
        }
        self.counters.calls += 1;
        self.counters.puts += pages.len() as u64;
        let mut call_cost = self.call_cost;
        match self.channel_decision(now) {
            FaultDecision::Error | FaultDecision::Stall(_) => {
                self.counters.dropped_calls += 1;
                self.breaker_note_failure(now);
                return vec![PutOutcome::Rejected; pages.len()];
            }
            FaultDecision::Slow(extra) => call_cost += extra,
            // The channel has no edge cache; a flap decision is a no-op.
            FaultDecision::Ok | FaultDecision::EdgeMiss => {}
        }
        let entered = now + call_cost;
        // In-place adjustment, same as `get_many`: no second Vec.
        let mut outs = backend.put_many(entered, self.vm, pool, pages);
        for out in &mut outs {
            match out {
                PutOutcome::Stored { finish } => {
                    self.counters.put_stores += 1;
                    self.breaker_note_success();
                    *finish += call_cost;
                }
                PutOutcome::Rejected => {
                    self.breaker_note_success();
                }
                PutOutcome::Failed { finish } => {
                    self.counters.fail_opens += 1;
                    self.breaker_note_failure(now);
                    *finish += call_cost;
                }
            }
        }
        outs
    }

    /// Batched `flush` hypercall: one trap invalidating every address,
    /// returning the largest flush epoch produced (folded into
    /// [`HypercallChannel::flush_epoch`]). Flushes stay reliable —
    /// batching never consults the fault schedule.
    pub fn flush_many(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        pool: PoolId,
        addrs: &[BlockAddr],
    ) -> u64 {
        if addrs.is_empty() {
            return 0;
        }
        self.counters.calls += 1;
        self.counters.flushes += addrs.len() as u64;
        if self.enabled {
            let epoch = backend.flush_many(self.vm, pool, addrs);
            self.flush_epoch = self.flush_epoch.max(epoch);
            epoch
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullCache;

    fn addr() -> BlockAddr {
        BlockAddr::new(FileId(1), 0)
    }

    #[test]
    fn counters_track_ops() {
        let mut b = NullCache::new();
        let mut ch = HypercallChannel::new(VmId(3));
        assert_eq!(ch.vm(), VmId(3));
        let pool = ch.create_pool(&mut b, CachePolicy::default());
        ch.get(&mut b, SimTime::ZERO, pool, addr());
        ch.put(&mut b, SimTime::ZERO, pool, addr(), PageVersion(0));
        ch.flush(&mut b, pool, addr());
        ch.flush_file(&mut b, pool, FileId(1));
        ch.pool_stats(&mut b, pool);
        ch.set_policy(&mut b, pool, CachePolicy::ssd(100));
        ch.migrate_object(&mut b, pool, pool, addr());
        ch.destroy_pool(&mut b, pool);
        let c = ch.counters();
        assert_eq!(c.calls, 9);
        assert_eq!(c.gets, 1);
        assert_eq!(c.get_hits, 0);
        assert_eq!(c.puts, 1);
        assert_eq!(c.put_stores, 0);
        assert_eq!(c.flushes, 2);
        assert_eq!(c.control_ops, 5);
    }

    #[test]
    fn batched_ops_charge_one_call_per_batch() {
        let mut b = NullCache::new();
        let mut ch = HypercallChannel::new(VmId(1));
        let pool = ch.create_pool(&mut b, CachePolicy::default());
        let addrs: Vec<BlockAddr> = (0..5).map(|i| BlockAddr::new(FileId(1), i)).collect();
        let pages: Vec<(BlockAddr, PageVersion)> =
            addrs.iter().map(|&a| (a, PageVersion(1))).collect();
        let outs = ch.get_many(&mut b, SimTime::ZERO, pool, &addrs);
        assert_eq!(outs.len(), 5);
        let outs = ch.put_many(&mut b, SimTime::ZERO, pool, &pages);
        assert_eq!(outs.len(), 5);
        ch.flush_many(&mut b, pool, &addrs);
        let c = ch.counters();
        assert_eq!(c.calls, 4, "create_pool + three batched traps");
        assert_eq!(c.gets, 5);
        assert_eq!(c.puts, 5);
        assert_eq!(c.flushes, 5);
        // Empty batches are free: no trap, no per-op counters.
        ch.get_many(&mut b, SimTime::ZERO, pool, &[]);
        ch.put_many(&mut b, SimTime::ZERO, pool, &[]);
        assert_eq!(ch.flush_many(&mut b, pool, &[]), 0);
        assert_eq!(ch.counters().calls, 4);
    }

    #[test]
    fn batched_puts_respect_open_breaker() {
        let mut b = Flaky {
            failing: true,
            puts_seen: 0,
        };
        let mut ch = HypercallChannel::new(VmId(0));
        let pages: Vec<(BlockAddr, PageVersion)> = (0..HypercallChannel::BREAKER_THRESHOLD as u64)
            .map(|i| (BlockAddr::new(FileId(1), i), PageVersion(0)))
            .collect();
        // One failing batch trips the breaker: each per-page failure
        // counts, exactly as individual puts would.
        let outs = ch.put_many(&mut b, SimTime::ZERO, PoolId(0), &pages);
        assert!(outs.iter().all(|o| o.is_failed()));
        assert!(ch.breaker_open());
        assert_eq!(ch.counters().breaker_trips, 1);
        let seen = b.puts_seen;
        // While open, the whole batch is skipped locally — no trap.
        let outs = ch.put_many(&mut b, SimTime::ZERO, PoolId(0), &pages);
        assert!(outs.iter().all(|o| *o == PutOutcome::Rejected));
        assert_eq!(b.puts_seen, seen);
        assert_eq!(
            ch.counters().breaker_skipped_puts,
            pages.len() as u64,
            "every page of the skipped batch is counted"
        );
    }

    #[test]
    fn batched_gets_fail_open_per_page() {
        let mut b = Flaky {
            failing: true,
            puts_seen: 0,
        };
        let mut ch = HypercallChannel::new(VmId(0));
        let addrs = [addr(), BlockAddr::new(FileId(1), 1)];
        let outs = ch.get_many(&mut b, SimTime::ZERO, PoolId(0), &addrs);
        assert!(outs.iter().all(|o| *o == GetOutcome::Miss));
        assert_eq!(ch.counters().fail_opens, 2);
        assert_eq!(ch.counters().calls, 1);
    }

    #[test]
    fn disabled_channel_misses_and_rejects() {
        let mut b = NullCache::new();
        let mut ch = HypercallChannel::new(VmId(0));
        let pool = ch.create_pool(&mut b, CachePolicy::default());
        ch.set_enabled(false);
        assert!(!ch.is_enabled());
        assert_eq!(
            ch.get(&mut b, SimTime::ZERO, pool, addr()),
            GetOutcome::Miss
        );
        assert_eq!(
            ch.put(&mut b, SimTime::ZERO, pool, addr(), PageVersion(0)),
            PutOutcome::Rejected
        );
        // Flushes are silently dropped.
        ch.flush(&mut b, pool, addr());
    }

    #[test]
    fn call_cost_is_charged() {
        // A backend that records the entry time it was called with.
        struct Probe {
            seen: Option<SimTime>,
        }
        impl SecondChanceCache for Probe {
            fn create_pool(&mut self, _: VmId, _: CachePolicy) -> PoolId {
                PoolId(0)
            }
            fn destroy_pool(&mut self, _: VmId, _: PoolId) {}
            fn set_policy(&mut self, _: VmId, _: PoolId, _: CachePolicy) {}
            fn migrate_object(&mut self, _: VmId, _: PoolId, _: PoolId, _: BlockAddr) {}
            fn pool_stats(&self, _: VmId, _: PoolId) -> Option<PoolStats> {
                None
            }
            fn get(&mut self, now: SimTime, _: VmId, _: PoolId, _: BlockAddr) -> GetOutcome {
                self.seen = Some(now);
                GetOutcome::Hit {
                    finish: now,
                    version: PageVersion(7),
                }
            }
            fn put(
                &mut self,
                now: SimTime,
                _: VmId,
                _: PoolId,
                _: BlockAddr,
                _: PageVersion,
            ) -> PutOutcome {
                PutOutcome::Stored { finish: now }
            }
            fn flush(&mut self, _: VmId, _: PoolId, _: BlockAddr) -> u64 {
                0
            }
            fn flush_file(&mut self, _: VmId, _: PoolId, _: FileId) -> u64 {
                0
            }
        }

        let mut probe = Probe { seen: None };
        let cost = SimDuration::from_micros(5);
        let mut ch = HypercallChannel::with_call_cost(VmId(0), cost);
        let out = ch.get(&mut probe, SimTime::ZERO, PoolId(0), addr());
        // Backend entered after one call cost...
        assert_eq!(probe.seen, Some(SimTime::ZERO + cost));
        // ...and the caller resumes after the return trip.
        match out {
            GetOutcome::Hit { finish, version } => {
                assert_eq!(finish, SimTime::ZERO + cost + cost);
                assert_eq!(version, PageVersion(7));
            }
            _ => panic!("expected hit"),
        }
        let put = ch.put(&mut probe, SimTime::ZERO, PoolId(0), addr(), PageVersion(0));
        match put {
            PutOutcome::Stored { finish } => assert_eq!(finish, SimTime::ZERO + cost + cost),
            _ => panic!("expected store"),
        }
        assert_eq!(ch.counters().get_hits, 1);
        assert_eq!(ch.counters().put_stores, 1);
    }

    /// A backend whose data path fails on demand.
    struct Flaky {
        failing: bool,
        puts_seen: u64,
    }
    impl SecondChanceCache for Flaky {
        fn create_pool(&mut self, _: VmId, _: CachePolicy) -> PoolId {
            PoolId(0)
        }
        fn destroy_pool(&mut self, _: VmId, _: PoolId) {}
        fn set_policy(&mut self, _: VmId, _: PoolId, _: CachePolicy) {}
        fn migrate_object(&mut self, _: VmId, _: PoolId, _: PoolId, _: BlockAddr) {}
        fn pool_stats(&self, _: VmId, _: PoolId) -> Option<PoolStats> {
            None
        }
        fn get(&mut self, now: SimTime, _: VmId, _: PoolId, _: BlockAddr) -> GetOutcome {
            if self.failing {
                GetOutcome::Failed { finish: now }
            } else {
                GetOutcome::Hit {
                    finish: now,
                    version: PageVersion(1),
                }
            }
        }
        fn put(
            &mut self,
            now: SimTime,
            _: VmId,
            _: PoolId,
            _: BlockAddr,
            _: PageVersion,
        ) -> PutOutcome {
            self.puts_seen += 1;
            if self.failing {
                PutOutcome::Failed { finish: now }
            } else {
                PutOutcome::Stored { finish: now }
            }
        }
        fn flush(&mut self, _: VmId, _: PoolId, _: BlockAddr) -> u64 {
            0
        }
        fn flush_file(&mut self, _: VmId, _: PoolId, _: FileId) -> u64 {
            0
        }
    }

    #[test]
    fn failed_get_is_fail_open_miss() {
        let mut b = Flaky {
            failing: true,
            puts_seen: 0,
        };
        let mut ch = HypercallChannel::new(VmId(0));
        let out = ch.get(&mut b, SimTime::ZERO, PoolId(0), addr());
        assert_eq!(out, GetOutcome::Miss, "guest sees a plain miss");
        assert_eq!(ch.counters().fail_opens, 1);
        assert_eq!(ch.counters().get_hits, 0);
    }

    #[test]
    fn breaker_trips_after_threshold_and_probes_recovery() {
        let mut b = Flaky {
            failing: true,
            puts_seen: 0,
        };
        let mut ch = HypercallChannel::new(VmId(0));
        let mut now = SimTime::ZERO;
        // Threshold consecutive failures trip the breaker.
        for _ in 0..HypercallChannel::BREAKER_THRESHOLD {
            assert!(!ch.breaker_open());
            let out = ch.put(&mut b, now, PoolId(0), addr(), PageVersion(0));
            assert!(out.is_failed());
            now += SimDuration::from_micros(10);
        }
        assert!(ch.breaker_open());
        assert_eq!(ch.counters().breaker_trips, 1);
        let puts_at_trip = b.puts_seen;
        // While open and before the probe time, puts are skipped locally.
        let out = ch.put(&mut b, now, PoolId(0), addr(), PageVersion(0));
        assert_eq!(out, PutOutcome::Rejected);
        assert_eq!(b.puts_seen, puts_at_trip, "no hypercall issued");
        assert_eq!(ch.counters().breaker_skipped_puts, 1);
        // A failed probe doubles the backoff...
        now += HypercallChannel::BREAKER_INITIAL_BACKOFF;
        assert!(ch
            .put(&mut b, now, PoolId(0), addr(), PageVersion(0))
            .is_failed());
        assert_eq!(
            b.puts_seen,
            puts_at_trip + 1,
            "the probe reached the backend"
        );
        // ...so a put after the *old* backoff is still skipped.
        now += HypercallChannel::BREAKER_INITIAL_BACKOFF;
        assert_eq!(
            ch.put(&mut b, now, PoolId(0), addr(), PageVersion(0)),
            PutOutcome::Rejected
        );
        assert_eq!(b.puts_seen, puts_at_trip + 1);
        // Once the backend heals, the next probe closes the breaker.
        b.failing = false;
        now += SimDuration::from_secs(30);
        assert!(ch
            .put(&mut b, now, PoolId(0), addr(), PageVersion(0))
            .is_stored());
        assert!(!ch.breaker_open());
        assert_eq!(ch.counters().breaker_recoveries, 1);
        // And subsequent puts flow normally.
        assert!(ch
            .put(&mut b, now, PoolId(0), addr(), PageVersion(0))
            .is_stored());
    }

    #[test]
    fn policy_rejection_does_not_trip_breaker() {
        let mut b = NullCache::new();
        let mut ch = HypercallChannel::new(VmId(0));
        let pool = ch.create_pool(&mut b, CachePolicy::default());
        for _ in 0..20 {
            assert_eq!(
                ch.put(&mut b, SimTime::ZERO, pool, addr(), PageVersion(0)),
                PutOutcome::Rejected
            );
        }
        assert!(!ch.breaker_open());
        assert_eq!(ch.counters().breaker_trips, 0);
    }

    #[test]
    fn dropped_calls_fail_open_and_flushes_stay_reliable() {
        use ddc_sim::{FaultKind, FaultSchedule};
        struct FlushCounter {
            flushes: u64,
        }
        impl SecondChanceCache for FlushCounter {
            fn create_pool(&mut self, _: VmId, _: CachePolicy) -> PoolId {
                PoolId(0)
            }
            fn destroy_pool(&mut self, _: VmId, _: PoolId) {}
            fn set_policy(&mut self, _: VmId, _: PoolId, _: CachePolicy) {}
            fn migrate_object(&mut self, _: VmId, _: PoolId, _: PoolId, _: BlockAddr) {}
            fn pool_stats(&self, _: VmId, _: PoolId) -> Option<PoolStats> {
                None
            }
            fn get(&mut self, _: SimTime, _: VmId, _: PoolId, _: BlockAddr) -> GetOutcome {
                GetOutcome::Hit {
                    finish: SimTime::ZERO,
                    version: PageVersion(1),
                }
            }
            fn put(
                &mut self,
                now: SimTime,
                _: VmId,
                _: PoolId,
                _: BlockAddr,
                _: PageVersion,
            ) -> PutOutcome {
                PutOutcome::Stored { finish: now }
            }
            fn flush(&mut self, _: VmId, _: PoolId, _: BlockAddr) -> u64 {
                self.flushes += 1;
                self.flushes
            }
            fn flush_file(&mut self, _: VmId, _: PoolId, _: FileId) -> u64 {
                self.flushes += 1;
                self.flushes
            }
        }
        let mut b = FlushCounter { flushes: 0 };
        let mut ch = HypercallChannel::new(VmId(0));
        ch.set_fault_schedule(Some(FaultSchedule::new(1).with_window(
            SimTime::ZERO,
            None,
            FaultKind::TransientErrors { rate: 1.0 },
        )));
        // Every data-path call drops...
        assert_eq!(
            ch.get(&mut b, SimTime::ZERO, PoolId(0), addr()),
            GetOutcome::Miss
        );
        assert_eq!(ch.counters().dropped_calls, 1);
        // ...but flushes always reach the backend (coherence-critical).
        assert_eq!(ch.flush(&mut b, PoolId(0), addr()), 1);
        assert_eq!(ch.flush_file(&mut b, PoolId(0), FileId(1)), 2);
        assert_eq!(b.flushes, 2);
        assert_eq!(
            ch.flush_epoch(),
            2,
            "the channel remembers the max acked flush generation"
        );
        ch.set_flush_epoch(10);
        assert_eq!(ch.flush_epoch(), 10);
    }
}
