//! The guest→hypervisor hypercall channel.
//!
//! Every cleancache operation issued from inside a VM traps to the
//! hypervisor via a VMCALL and copies its arguments to host memory (paper
//! §4). The channel charges that fixed cost on the caller's virtual clock
//! and keeps the per-VM operation counters used in the evaluation.

use ddc_sim::{SimDuration, SimTime};
use ddc_storage::{BlockAddr, FileId};

use crate::{
    CachePolicy, GetOutcome, PageVersion, PoolId, PoolStats, PutOutcome, SecondChanceCache, VmId,
};

/// Counters kept by a [`HypercallChannel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Total hypercalls issued (all operation kinds).
    pub calls: u64,
    /// `get` operations issued.
    pub gets: u64,
    /// `get` operations that hit.
    pub get_hits: u64,
    /// `put` operations issued.
    pub puts: u64,
    /// `put` operations accepted.
    pub put_stores: u64,
    /// `flush` operations issued (block and whole-file).
    pub flushes: u64,
    /// Control-plane operations (pool lifecycle, policy, stats).
    pub control_ops: u64,
}

/// The per-VM hypercall path to a second-chance cache backend.
///
/// The channel does not own the backend: the host owns it, and the guest
/// passes `&mut dyn SecondChanceCache` per call. This mirrors the real
/// structure (the cache store lives in the hypervisor; the guest merely
/// traps into it) and keeps the simulation single-owner.
///
/// # Example
///
/// ```
/// use ddc_cleancache::{CachePolicy, HypercallChannel, NullCache, VmId};
/// use ddc_sim::SimTime;
/// use ddc_storage::{BlockAddr, FileId};
///
/// let mut backend = NullCache::new();
/// let mut chan = HypercallChannel::new(VmId(0));
/// let pool = chan.create_pool(&mut backend, CachePolicy::default());
/// let out = chan.get(&mut backend, SimTime::ZERO, pool, BlockAddr::new(FileId(1), 0));
/// assert!(!out.is_hit()); // NullCache always misses
/// assert_eq!(chan.counters().gets, 1);
/// ```
#[derive(Clone, Debug)]
pub struct HypercallChannel {
    vm: VmId,
    call_cost: SimDuration,
    counters: ChannelCounters,
    enabled: bool,
}

impl HypercallChannel {
    /// Default VMCALL + argument copy cost: ~2 µs round trip, the order of
    /// magnitude measured for KVM hypercalls on the paper's era of
    /// hardware.
    pub const DEFAULT_CALL_COST: SimDuration = SimDuration::from_micros(2);

    /// Creates a channel for a VM with the default hypercall cost.
    pub fn new(vm: VmId) -> HypercallChannel {
        HypercallChannel::with_call_cost(vm, Self::DEFAULT_CALL_COST)
    }

    /// Creates a channel with an explicit per-call cost (for sensitivity
    /// experiments).
    pub fn with_call_cost(vm: VmId, call_cost: SimDuration) -> HypercallChannel {
        HypercallChannel {
            vm,
            call_cost,
            counters: ChannelCounters::default(),
            enabled: true,
        }
    }

    /// The VM this channel belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Disables the data path (as if the guest booted without cleancache):
    /// `get` always misses, `put` is always rejected, flushes are no-ops.
    /// Control operations still work so pools can be pre-created.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the data path is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Accumulated counters.
    pub fn counters(&self) -> ChannelCounters {
        self.counters
    }

    /// CREATE_CGROUP hypercall.
    pub fn create_pool(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        policy: CachePolicy,
    ) -> PoolId {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.create_pool(self.vm, policy)
    }

    /// DESTROY_CGROUP hypercall.
    pub fn destroy_pool(&mut self, backend: &mut dyn SecondChanceCache, pool: PoolId) {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.destroy_pool(self.vm, pool);
    }

    /// SET_CG_WEIGHT hypercall.
    pub fn set_policy(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        pool: PoolId,
        policy: CachePolicy,
    ) {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.set_policy(self.vm, pool, policy);
    }

    /// MIGRATE_OBJECT hypercall.
    pub fn migrate_object(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        from: PoolId,
        to: PoolId,
        addr: BlockAddr,
    ) {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.migrate_object(self.vm, from, to, addr);
    }

    /// GET_STATS hypercall.
    pub fn pool_stats(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        pool: PoolId,
    ) -> Option<PoolStats> {
        self.counters.calls += 1;
        self.counters.control_ops += 1;
        backend.pool_stats(self.vm, pool)
    }

    /// `get` hypercall: lookup-and-remove. The returned finish time
    /// includes the hypercall cost.
    pub fn get(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        now: SimTime,
        pool: PoolId,
        addr: BlockAddr,
    ) -> GetOutcome {
        self.counters.calls += 1;
        self.counters.gets += 1;
        if !self.enabled {
            return GetOutcome::Miss;
        }
        let entered = now + self.call_cost;
        match backend.get(entered, self.vm, pool, addr) {
            GetOutcome::Hit { finish, version } => {
                self.counters.get_hits += 1;
                GetOutcome::Hit {
                    finish: finish + self.call_cost,
                    version,
                }
            }
            GetOutcome::Miss => GetOutcome::Miss,
        }
    }

    /// `put` hypercall: store a clean evicted page.
    pub fn put(
        &mut self,
        backend: &mut dyn SecondChanceCache,
        now: SimTime,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
    ) -> PutOutcome {
        self.counters.calls += 1;
        self.counters.puts += 1;
        if !self.enabled {
            return PutOutcome::Rejected;
        }
        let entered = now + self.call_cost;
        match backend.put(entered, self.vm, pool, addr, version) {
            PutOutcome::Stored { finish } => {
                self.counters.put_stores += 1;
                PutOutcome::Stored {
                    finish: finish + self.call_cost,
                }
            }
            PutOutcome::Rejected => PutOutcome::Rejected,
        }
    }

    /// `flush` hypercall for one block.
    pub fn flush(&mut self, backend: &mut dyn SecondChanceCache, pool: PoolId, addr: BlockAddr) {
        self.counters.calls += 1;
        self.counters.flushes += 1;
        if self.enabled {
            backend.flush(self.vm, pool, addr);
        }
    }

    /// `flush` hypercall for a whole file.
    pub fn flush_file(&mut self, backend: &mut dyn SecondChanceCache, pool: PoolId, file: FileId) {
        self.counters.calls += 1;
        self.counters.flushes += 1;
        if self.enabled {
            backend.flush_file(self.vm, pool, file);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullCache;

    fn addr() -> BlockAddr {
        BlockAddr::new(FileId(1), 0)
    }

    #[test]
    fn counters_track_ops() {
        let mut b = NullCache::new();
        let mut ch = HypercallChannel::new(VmId(3));
        assert_eq!(ch.vm(), VmId(3));
        let pool = ch.create_pool(&mut b, CachePolicy::default());
        ch.get(&mut b, SimTime::ZERO, pool, addr());
        ch.put(&mut b, SimTime::ZERO, pool, addr(), PageVersion(0));
        ch.flush(&mut b, pool, addr());
        ch.flush_file(&mut b, pool, FileId(1));
        ch.pool_stats(&mut b, pool);
        ch.set_policy(&mut b, pool, CachePolicy::ssd(100));
        ch.migrate_object(&mut b, pool, pool, addr());
        ch.destroy_pool(&mut b, pool);
        let c = ch.counters();
        assert_eq!(c.calls, 9);
        assert_eq!(c.gets, 1);
        assert_eq!(c.get_hits, 0);
        assert_eq!(c.puts, 1);
        assert_eq!(c.put_stores, 0);
        assert_eq!(c.flushes, 2);
        assert_eq!(c.control_ops, 5);
    }

    #[test]
    fn disabled_channel_misses_and_rejects() {
        let mut b = NullCache::new();
        let mut ch = HypercallChannel::new(VmId(0));
        let pool = ch.create_pool(&mut b, CachePolicy::default());
        ch.set_enabled(false);
        assert!(!ch.is_enabled());
        assert_eq!(
            ch.get(&mut b, SimTime::ZERO, pool, addr()),
            GetOutcome::Miss
        );
        assert_eq!(
            ch.put(&mut b, SimTime::ZERO, pool, addr(), PageVersion(0)),
            PutOutcome::Rejected
        );
        // Flushes are silently dropped.
        ch.flush(&mut b, pool, addr());
    }

    #[test]
    fn call_cost_is_charged() {
        // A backend that records the entry time it was called with.
        struct Probe {
            seen: Option<SimTime>,
        }
        impl SecondChanceCache for Probe {
            fn create_pool(&mut self, _: VmId, _: CachePolicy) -> PoolId {
                PoolId(0)
            }
            fn destroy_pool(&mut self, _: VmId, _: PoolId) {}
            fn set_policy(&mut self, _: VmId, _: PoolId, _: CachePolicy) {}
            fn migrate_object(&mut self, _: VmId, _: PoolId, _: PoolId, _: BlockAddr) {}
            fn pool_stats(&self, _: VmId, _: PoolId) -> Option<PoolStats> {
                None
            }
            fn get(&mut self, now: SimTime, _: VmId, _: PoolId, _: BlockAddr) -> GetOutcome {
                self.seen = Some(now);
                GetOutcome::Hit {
                    finish: now,
                    version: PageVersion(7),
                }
            }
            fn put(
                &mut self,
                now: SimTime,
                _: VmId,
                _: PoolId,
                _: BlockAddr,
                _: PageVersion,
            ) -> PutOutcome {
                PutOutcome::Stored { finish: now }
            }
            fn flush(&mut self, _: VmId, _: PoolId, _: BlockAddr) {}
            fn flush_file(&mut self, _: VmId, _: PoolId, _: FileId) {}
        }

        let mut probe = Probe { seen: None };
        let cost = SimDuration::from_micros(5);
        let mut ch = HypercallChannel::with_call_cost(VmId(0), cost);
        let out = ch.get(&mut probe, SimTime::ZERO, PoolId(0), addr());
        // Backend entered after one call cost...
        assert_eq!(probe.seen, Some(SimTime::ZERO + cost));
        // ...and the caller resumes after the return trip.
        match out {
            GetOutcome::Hit { finish, version } => {
                assert_eq!(finish, SimTime::ZERO + cost + cost);
                assert_eq!(version, PageVersion(7));
            }
            GetOutcome::Miss => panic!("expected hit"),
        }
        let put = ch.put(&mut probe, SimTime::ZERO, PoolId(0), addr(), PageVersion(0));
        match put {
            PutOutcome::Stored { finish } => assert_eq!(finish, SimTime::ZERO + cost + cost),
            PutOutcome::Rejected => panic!("expected store"),
        }
        assert_eq!(ch.counters().get_hits, 1);
        assert_eq!(ch.counters().put_stores, 1);
    }
}
