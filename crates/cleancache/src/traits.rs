//! The second-chance cache backend trait.

use ddc_sim::SimTime;
use ddc_storage::{BlockAddr, FileId};

use crate::{CachePolicy, PageVersion, PoolId, VmId};

/// Result of a cache lookup (`get`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GetOutcome {
    /// Object found; per the exclusivity contract it has been *removed*
    /// from the cache and transferred to the caller.
    Hit {
        /// When the object copy completed (store read + transfer).
        finish: SimTime,
        /// Version stamp the object carried.
        version: PageVersion,
    },
    /// Object not present.
    Miss,
    /// The backend failed mid-lookup (injected store fault). The object
    /// — if it existed — has been invalidated, never served: a failed
    /// store must not return potentially-corrupt data. Callers treat
    /// this like a miss (fail-open) and fall back to the virtual disk.
    Failed {
        /// When the failure was reported (the store attempted the read).
        finish: SimTime,
    },
}

impl GetOutcome {
    /// Whether this outcome is a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, GetOutcome::Hit { .. })
    }

    /// Whether the backend failed servicing the lookup.
    pub fn is_failed(&self) -> bool {
        matches!(self, GetOutcome::Failed { .. })
    }
}

/// Result of a cache store (`put`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutOutcome {
    /// Object accepted into the cache.
    Stored {
        /// When the caller may proceed. For the memory store this includes
        /// the page copy; for the (asynchronous-write) SSD store the
        /// caller does not wait for the device.
        finish: SimTime,
    },
    /// Object rejected (pool unknown, caching disabled for the container,
    /// or zero capacity). Rejection is always legal: cleancache is
    /// best-effort by contract.
    Rejected,
    /// The backend failed mid-store (injected store fault). The object
    /// was *not* retained — a put that fails leaves no trace, so a later
    /// get cannot surface a partially-written page. Distinct from
    /// [`Rejected`](PutOutcome::Rejected) so callers can trip circuit
    /// breakers on infrastructure failure but not on policy rejection.
    Failed {
        /// When the failure was reported (the store attempted the write).
        finish: SimTime,
    },
}

impl PutOutcome {
    /// Whether the object was stored.
    pub fn is_stored(&self) -> bool {
        matches!(self, PutOutcome::Stored { .. })
    }

    /// Whether the backend failed servicing the store.
    pub fn is_failed(&self) -> bool {
        matches!(self, PutOutcome::Failed { .. })
    }
}

/// Per-pool statistics returned by the GET_STATS control operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages currently held in the memory store.
    pub mem_pages: u64,
    /// Pages currently held in the SSD store.
    pub ssd_pages: u64,
    /// Current entitlement in the pool's primary store, in pages.
    pub entitlement_pages: u64,
    /// Lookups issued against this pool.
    pub gets: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Stores accepted into this pool.
    pub puts: u64,
    /// Objects evicted from this pool by the policy module.
    pub evictions: u64,
    /// Lookups against this pool that failed on a store fault.
    pub failed_gets: u64,
    /// Stores into this pool that failed on a store fault.
    pub failed_puts: u64,
    /// Cumulative physical SSD-tier writes charged to this pool (wear
    /// accounting; never decreases while the pool lives).
    pub ssd_writes: u64,
}

impl PoolStats {
    /// Total pages resident across both stores.
    pub fn total_pages(&self) -> u64 {
        self.mem_pages + self.ssd_pages
    }

    /// The paper's "lookup-to-store ratio (%)": successful lookups as a
    /// percentage of stores — how much of what the pool stored was later
    /// actually consumed.
    pub fn lookup_to_store_ratio(&self) -> f64 {
        if self.puts == 0 {
            return 0.0;
        }
        self.hits as f64 * 100.0 / self.puts as f64
    }

    /// Hit rate of lookups, in percent.
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            return 0.0;
        }
        self.hits as f64 * 100.0 / self.gets as f64
    }
}

/// A second-chance cache backend: the interface between the guest OS
/// cleancache layer and a hypervisor cache store.
///
/// Implementations: the DoubleDecker store and the Global (tmem-like)
/// store in `ddc-hypercache`, and [`crate::NullCache`] (caching disabled).
///
/// The trait is object-safe; the guest holds `&mut dyn SecondChanceCache`.
pub trait SecondChanceCache {
    /// CREATE_CGROUP: registers a new container and returns its pool id.
    fn create_pool(&mut self, vm: VmId, policy: CachePolicy) -> PoolId;

    /// DESTROY_CGROUP: frees all objects of the pool and retires the id.
    fn destroy_pool(&mut self, vm: VmId, pool: PoolId);

    /// SET_CG_WEIGHT: updates the container's `<T, W>` specification.
    fn set_policy(&mut self, vm: VmId, pool: PoolId, policy: CachePolicy);

    /// MIGRATE_OBJECT: transfers ownership of one cached block between two
    /// pools of the same VM (shared files crossing container boundaries).
    fn migrate_object(&mut self, vm: VmId, from: PoolId, to: PoolId, addr: BlockAddr);

    /// GET_STATS: per-pool usage and counters; `None` for unknown pools.
    fn pool_stats(&self, vm: VmId, pool: PoolId) -> Option<PoolStats>;

    /// Lookup-and-remove (exclusive `get`).
    fn get(&mut self, now: SimTime, vm: VmId, pool: PoolId, addr: BlockAddr) -> GetOutcome;

    /// Store a clean page evicted from the guest page cache (`put`).
    fn put(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addr: BlockAddr,
        version: PageVersion,
    ) -> PutOutcome;

    /// Invalidate one block (`flush`), if present.
    ///
    /// Returns the backend's durable journal generation for this flush
    /// (its **flush epoch**), or 0 if the backend does not journal.
    /// Flushes are synchronous-reliable: the backend makes the flush
    /// durable before returning, so after a hypervisor crash a recovered
    /// cache can never resurrect a page version this flush invalidated
    /// (see `ddc-hypercache`'s recovery model).
    fn flush(&mut self, vm: VmId, pool: PoolId, addr: BlockAddr) -> u64;

    /// Invalidate every cached block of a file (`flush` on truncate/delete).
    ///
    /// Returns the flush epoch like [`SecondChanceCache::flush`].
    fn flush_file(&mut self, vm: VmId, pool: PoolId, file: FileId) -> u64;

    /// Vectorized lookup: one outcome per address, in order, each with
    /// [`SecondChanceCache::get`] semantics (exclusive removal on hit).
    ///
    /// The default loops over `get`; backends that can amortize
    /// per-operation overhead (the batched hypercall path) override it.
    /// Slice parameters keep the trait object-safe.
    fn get_many(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        addrs: &[BlockAddr],
    ) -> Vec<GetOutcome> {
        addrs.iter().map(|&a| self.get(now, vm, pool, a)).collect()
    }

    /// Vectorized store: one outcome per `(addr, version)` pair, in
    /// order, each with [`SecondChanceCache::put`] semantics.
    fn put_many(
        &mut self,
        now: SimTime,
        vm: VmId,
        pool: PoolId,
        pages: &[(BlockAddr, PageVersion)],
    ) -> Vec<PutOutcome> {
        pages
            .iter()
            .map(|&(a, v)| self.put(now, vm, pool, a, v))
            .collect()
    }

    /// Vectorized invalidation: flushes every address and returns the
    /// largest flush epoch produced (0 for an empty batch or a
    /// non-journaling backend). Each address carries
    /// [`SecondChanceCache::flush`] semantics.
    fn flush_many(&mut self, vm: VmId, pool: PoolId, addrs: &[BlockAddr]) -> u64 {
        addrs
            .iter()
            .map(|&a| self.flush(vm, pool, a))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        let hit = GetOutcome::Hit {
            finish: SimTime::ZERO,
            version: PageVersion(1),
        };
        assert!(hit.is_hit());
        assert!(!GetOutcome::Miss.is_hit());
        let stored = PutOutcome::Stored {
            finish: SimTime::ZERO,
        };
        assert!(stored.is_stored());
        assert!(!PutOutcome::Rejected.is_stored());
        let failed_get = GetOutcome::Failed {
            finish: SimTime::ZERO,
        };
        assert!(failed_get.is_failed() && !failed_get.is_hit());
        let failed_put = PutOutcome::Failed {
            finish: SimTime::ZERO,
        };
        assert!(failed_put.is_failed() && !failed_put.is_stored());
        assert!(!PutOutcome::Rejected.is_failed());
    }

    #[test]
    fn pool_stats_ratios() {
        let s = PoolStats {
            mem_pages: 10,
            ssd_pages: 5,
            entitlement_pages: 100,
            gets: 200,
            hits: 50,
            puts: 100,
            evictions: 3,
            failed_gets: 0,
            failed_puts: 0,
            ssd_writes: 7,
        };
        assert_eq!(s.total_pages(), 15);
        assert!((s.lookup_to_store_ratio() - 50.0).abs() < 1e-9);
        assert!((s.hit_rate() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn pool_stats_zero_denominators() {
        let s = PoolStats::default();
        assert_eq!(s.lookup_to_store_ratio(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }
}
