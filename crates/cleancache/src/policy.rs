//! Per-container cache policy: the paper's `<T, W>` tuple.

use std::fmt;

/// The cache store backend a container is assigned to — the `T` of the
/// paper's `<T, W>` policy tuple (§3), plus the hybrid mode the paper
//  sketches as a configuration option (§3.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Memory-backed hypervisor cache store.
    #[default]
    Mem,
    /// SSD-backed hypervisor cache store.
    Ssd,
    /// Hybrid: memory share first, spill to the SSD share when the memory
    /// share is exhausted (trickle-down).
    Hybrid,
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StoreKind::Mem => "Mem",
            StoreKind::Ssd => "SSD",
            StoreKind::Hybrid => "Hybrid",
        };
        f.write_str(s)
    }
}

impl StoreKind {
    /// Whether objects for this policy may be placed in the memory store.
    pub fn uses_mem(self) -> bool {
        matches!(self, StoreKind::Mem | StoreKind::Hybrid)
    }

    /// Whether objects for this policy may be placed in the SSD store.
    pub fn uses_ssd(self) -> bool {
        matches!(self, StoreKind::Ssd | StoreKind::Hybrid)
    }
}

/// A container's hypervisor-cache specification `<T, W>`: store type and
/// weight (relative share in percent among the containers of the same VM
/// that use the same store).
///
/// # Example
///
/// ```
/// use ddc_cleancache::{CachePolicy, StoreKind};
///
/// let p = CachePolicy::new(StoreKind::Mem, 40);
/// assert_eq!(p.to_string(), "<Mem, 40>");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CachePolicy {
    /// Store type `T`.
    pub store: StoreKind,
    /// Weight `W` (relative; the paper uses percentages).
    pub weight: u32,
}

impl CachePolicy {
    /// Creates a policy tuple.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero and the store is not SSD-only — a
    /// zero-weight memory share would make the container's entitlement
    /// permanently empty, which the paper expresses instead by assigning
    /// the container to the other store (e.g. `Mem: 0` in Table 3 means
    /// "not in the memory store").
    pub fn new(store: StoreKind, weight: u32) -> CachePolicy {
        CachePolicy { store, weight }
    }

    /// A memory-store policy.
    pub fn mem(weight: u32) -> CachePolicy {
        CachePolicy::new(StoreKind::Mem, weight)
    }

    /// An SSD-store policy.
    pub fn ssd(weight: u32) -> CachePolicy {
        CachePolicy::new(StoreKind::Ssd, weight)
    }

    /// A hybrid (memory-then-SSD) policy.
    pub fn hybrid(weight: u32) -> CachePolicy {
        CachePolicy::new(StoreKind::Hybrid, weight)
    }

    /// A policy that effectively disables hypervisor caching for the
    /// container (zero weight in the memory store).
    pub fn disabled() -> CachePolicy {
        CachePolicy::new(StoreKind::Mem, 0)
    }

    /// Whether the container can hold any cache space at all.
    pub fn is_enabled(&self) -> bool {
        self.weight > 0
    }
}

impl Default for CachePolicy {
    /// An equal-weight memory policy (`<Mem, 100>`).
    fn default() -> CachePolicy {
        CachePolicy::mem(100)
    }
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.store, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_kind_usage_matrix() {
        assert!(StoreKind::Mem.uses_mem() && !StoreKind::Mem.uses_ssd());
        assert!(!StoreKind::Ssd.uses_mem() && StoreKind::Ssd.uses_ssd());
        assert!(StoreKind::Hybrid.uses_mem() && StoreKind::Hybrid.uses_ssd());
    }

    #[test]
    fn constructors() {
        assert_eq!(CachePolicy::mem(30).store, StoreKind::Mem);
        assert_eq!(CachePolicy::ssd(100).store, StoreKind::Ssd);
        assert_eq!(CachePolicy::hybrid(50).store, StoreKind::Hybrid);
        assert_eq!(CachePolicy::default(), CachePolicy::mem(100));
    }

    #[test]
    fn disabled_policy() {
        let p = CachePolicy::disabled();
        assert!(!p.is_enabled());
        assert!(CachePolicy::mem(1).is_enabled());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(CachePolicy::ssd(100).to_string(), "<SSD, 100>");
        assert_eq!(CachePolicy::mem(25).to_string(), "<Mem, 25>");
        assert_eq!(CachePolicy::hybrid(10).to_string(), "<Hybrid, 10>");
    }
}
