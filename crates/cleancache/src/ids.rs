//! Identifier newtypes shared between the guest and hypervisor sides.

use std::fmt;

use ddc_storage::BlockAddr;

/// Identifies one virtual machine at the hypervisor. The hypervisor cache
/// extends every guest-provided key with the VM id (paper §2.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// A cache pool identifier. In vanilla cleancache a pool corresponds to a
/// file system; in DoubleDecker a pool is assigned to each *application
/// container* when its cgroup is created (paper §3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool{}", self.0)
    }
}

/// A monotone per-page version stamp used to verify cache coherence: the
/// guest bumps the version when it dirties a page, so a hit returning an
/// older version than the guest last wrote would be a staleness bug.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageVersion(pub u64);

impl PageVersion {
    /// The version of a never-written page.
    pub const INITIAL: PageVersion = PageVersion(0);

    /// The next version after an overwrite.
    pub fn bump(self) -> PageVersion {
        PageVersion(self.0 + 1)
    }
}

impl fmt::Display for PageVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The full key of one cached object: `(vm-id, pool-id, inode, block)` —
/// exactly the tuple the paper's indexing module maps to a storage object
/// (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectKey {
    /// Originating virtual machine.
    pub vm: VmId,
    /// Container pool inside the VM.
    pub pool: PoolId,
    /// File and page-offset address.
    pub addr: BlockAddr,
}

impl ObjectKey {
    /// Assembles a key.
    pub const fn new(vm: VmId, pool: PoolId, addr: BlockAddr) -> ObjectKey {
        ObjectKey { vm, pool, addr }
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.vm, self.pool, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_storage::FileId;

    #[test]
    fn displays() {
        assert_eq!(VmId(1).to_string(), "vm1");
        assert_eq!(PoolId(2).to_string(), "pool2");
        assert_eq!(PageVersion(3).to_string(), "v3");
        let key = ObjectKey::new(VmId(1), PoolId(2), BlockAddr::new(FileId(3), 4));
        assert_eq!(key.to_string(), "vm1/pool2/inode3:4");
    }

    #[test]
    fn version_bump_monotone() {
        let v = PageVersion::INITIAL;
        let v2 = v.bump();
        assert!(v2 > v);
        assert_eq!(v2, PageVersion(1));
    }

    #[test]
    fn keys_hash_and_order() {
        use std::collections::HashSet;
        let a = ObjectKey::new(VmId(1), PoolId(1), BlockAddr::new(FileId(1), 1));
        let b = ObjectKey::new(VmId(1), PoolId(1), BlockAddr::new(FileId(1), 2));
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(a);
        assert_eq!(set.len(), 2);
        assert!(a < b);
    }
}
