//! The second-chance cache access interface ("cleancache") and the
//! guest↔hypervisor hypercall channel.
//!
//! In the paper (§2.1, §4.1) the guest OS page cache talks to the
//! hypervisor cache through Linux's *cleancache* interface, extended with
//! five DoubleDecker control operations driven by the cgroup subsystem:
//!
//! | Paper operation    | This crate                                      |
//! |--------------------|-------------------------------------------------|
//! | `get` (lookup)     | [`SecondChanceCache::get`]                      |
//! | `put` (store)      | [`SecondChanceCache::put`]                      |
//! | `flush`            | [`SecondChanceCache::flush`] / [`SecondChanceCache::flush_file`] |
//! | CREATE_CGROUP      | [`SecondChanceCache::create_pool`]              |
//! | SET_CG_WEIGHT      | [`SecondChanceCache::set_policy`]               |
//! | MIGRATE_OBJECT     | [`SecondChanceCache::migrate_object`]           |
//! | DESTROY_CGROUP     | [`SecondChanceCache::destroy_pool`]             |
//! | GET_STATS          | [`SecondChanceCache::pool_stats`]               |
//!
//! Exclusivity contract (paper §2.1): a successful `get` **removes** the
//! object from the second-chance cache; `put` is issued only when a clean
//! page is evicted from the guest page cache; `flush` invalidates a stale
//! object when the guest dirties a page. The [`PageVersion`] carried by
//! every object lets tests verify that a guest can never observe stale
//! data.
//!
//! Calls from inside a VM cross the [`HypercallChannel`], which charges the
//! VMCALL + argument-copy cost and keeps the per-pool counters that the
//! paper's Table 2 reports (lookup-to-store ratio, eviction counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod ids;
mod null;
mod policy;
mod traits;

pub use channel::{ChannelCounters, HypercallChannel};
pub use ids::{ObjectKey, PageVersion, PoolId, VmId};
pub use null::NullCache;
pub use policy::{CachePolicy, StoreKind};
pub use traits::{GetOutcome, PoolStats, PutOutcome, SecondChanceCache};
