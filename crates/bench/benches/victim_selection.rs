//! Micro-benchmarks of the policy module: Algorithm 1 victim selection
//! scaling with entity count, and the entitlement computation — the costs
//! that bound eviction and reconfiguration latency.

use ddc_bench::harness;
use ddc_core::hypercache::policy::entitlements;
use ddc_core::hypercache::{select_victim, select_victim_strict, EntityUsage};
use ddc_core::prelude::SimRng;

fn entities(n: usize, seed: u64) -> Vec<EntityUsage> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| {
            EntityUsage::new(
                rng.range_u64(100, 10_000),
                rng.range_u64(0, 12_000),
                rng.range_u64(1, 100),
            )
        })
        .collect()
}

fn bench_select_victim() {
    for n in [2usize, 8, 64, 512] {
        let es = entities(n, n as u64);
        harness::time(
            &format!("algorithm1/select_victim_{n}_entities"),
            n as u64,
            || select_victim(std::hint::black_box(&es), 32),
        );
        harness::time(
            &format!("algorithm1/select_victim_strict_{n}_entities"),
            n as u64,
            || select_victim_strict(std::hint::black_box(&es), 32),
        );
    }
}

fn bench_entitlements() {
    for n in [2usize, 8, 64, 512] {
        let mut rng = SimRng::new(7);
        let weights: Vec<u64> = (0..n).map(|_| rng.range_u64(1, 100)).collect();
        harness::time(
            &format!("entitlements/entitlements_{n}_entities"),
            n as u64,
            || entitlements(std::hint::black_box(1 << 20), &weights),
        );
    }
}

fn main() {
    bench_select_victim();
    bench_entitlements();
}
