//! Micro-benchmarks of the DoubleDecker cache store's data path:
//! put/get/flush throughput, hit and miss paths, and the overwrite path —
//! the hypervisor-side costs behind every guest IO.

use ddc_bench::harness;
use ddc_core::cleancache::SecondChanceCache;
use ddc_core::prelude::*;

const VM: VmId = VmId(1);

fn addr(block: u64) -> BlockAddr {
    BlockAddr::new(FileId(1), block)
}

fn full_cache(capacity: u64) -> (DoubleDeckerCache, PoolId) {
    let mut cache = DoubleDeckerCache::new(CacheConfig::mem_only(capacity));
    cache.add_vm(VM, 100);
    let pool =
        ddc_core::cleancache::SecondChanceCache::create_pool(&mut cache, VM, CachePolicy::mem(100));
    (cache, pool)
}

fn bench_put() {
    // Put into a cache with room: the common store path.
    harness::time_batched(
        "cache_put/put_with_room",
        1024,
        || full_cache(1 << 20).0,
        |cache| {
            let pool = cache.create_pool(VM, CachePolicy::mem(100));
            for block in 0..1024 {
                cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
            }
        },
    );
    // Put into a full cache: every put triggers batch eviction logic.
    harness::time_batched(
        "cache_put/put_under_pressure",
        64,
        || {
            let (mut cache, pool) = full_cache(2048);
            for block in 0..2048 {
                cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
            }
            (cache, pool, 2048u64)
        },
        |(cache, pool, next)| {
            for _ in 0..64 {
                cache.put(SimTime::ZERO, VM, *pool, addr(*next), PageVersion(1));
                *next += 1;
            }
        },
    );
}

fn bench_get() {
    harness::time_batched(
        "cache_get/get_hit_exclusive",
        1024,
        || {
            let (mut cache, pool) = full_cache(1 << 16);
            for block in 0..4096 {
                cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
            }
            (cache, pool)
        },
        |(cache, pool)| {
            // Hits remove the object (exclusive), so walk forward.
            for block in 0..1024 {
                cache.get(SimTime::ZERO, VM, *pool, addr(block));
            }
        },
    );
    let (mut cache, pool) = full_cache(1 << 16);
    let mut block = 1u64 << 30;
    harness::time("cache_get/get_miss", 1, || {
        block += 1;
        cache.get(SimTime::ZERO, VM, pool, addr(block))
    });
}

fn bench_flush() {
    harness::time_batched(
        "cache_flush/flush_file_1024_blocks",
        1024,
        || {
            let (mut cache, pool) = full_cache(1 << 16);
            for block in 0..1024 {
                cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
            }
            (cache, pool)
        },
        |(cache, pool)| cache.flush_file(VM, *pool, FileId(1)),
    );
}

fn bench_stats() {
    // GET_STATS recomputes entitlements: measure with many pools.
    for pools in [4u32, 32, 128] {
        let mut cache = DoubleDeckerCache::new(CacheConfig::mem_only(1 << 16));
        cache.add_vm(VM, 100);
        let ids: Vec<PoolId> = (0..pools)
            .map(|_| cache.create_pool(VM, CachePolicy::mem(10)))
            .collect();
        for (i, pool) in ids.iter().enumerate() {
            cache.put(
                SimTime::ZERO,
                VM,
                *pool,
                BlockAddr::new(FileId(i as u64), 0),
                PageVersion(1),
            );
        }
        harness::time(&format!("cache_stats/pool_stats_{pools}_pools"), 1, || {
            cache.pool_stats(VM, ids[0])
        });
    }
}

fn main() {
    bench_put();
    bench_get();
    bench_flush();
    bench_stats();
}
