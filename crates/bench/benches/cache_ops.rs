//! Criterion micro-benchmarks of the DoubleDecker cache store's data
//! path: put/get/flush throughput, hit and miss paths, and the overwrite
//! path — the hypervisor-side costs behind every guest IO.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ddc_core::prelude::*;

const VM: VmId = VmId(1);

fn addr(block: u64) -> BlockAddr {
    BlockAddr::new(FileId(1), block)
}

fn full_cache(capacity: u64) -> (DoubleDeckerCache, PoolId) {
    let mut cache = DoubleDeckerCache::new(CacheConfig::mem_only(capacity));
    cache.add_vm(VM, 100);
    let pool =
        ddc_core::cleancache::SecondChanceCache::create_pool(&mut cache, VM, CachePolicy::mem(100));
    (cache, pool)
}

fn bench_put(c: &mut Criterion) {
    use ddc_core::cleancache::SecondChanceCache;
    let mut group = c.benchmark_group("cache_put");
    group.throughput(Throughput::Elements(1));
    // Put into a cache with room: the common store path.
    group.bench_function("put_with_room", |b| {
        b.iter_batched_ref(
            || full_cache(1 << 20).0,
            |cache| {
                let pool = cache.create_pool(VM, CachePolicy::mem(100));
                let mut block = 0u64;
                for _ in 0..1024 {
                    cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
                    block += 1;
                }
            },
            BatchSize::SmallInput,
        )
    });
    // Put into a full cache: every put triggers batch eviction logic.
    group.bench_function("put_under_pressure", |b| {
        b.iter_batched_ref(
            || {
                let (mut cache, pool) = full_cache(2048);
                for block in 0..2048 {
                    cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
                }
                (cache, pool, 2048u64)
            },
            |(cache, pool, next)| {
                for _ in 0..64 {
                    cache.put(SimTime::ZERO, VM, *pool, addr(*next), PageVersion(1));
                    *next += 1;
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    use ddc_core::cleancache::SecondChanceCache;
    let mut group = c.benchmark_group("cache_get");
    group.throughput(Throughput::Elements(1));
    group.bench_function("get_hit_exclusive", |b| {
        b.iter_batched_ref(
            || {
                let (mut cache, pool) = full_cache(1 << 16);
                for block in 0..4096 {
                    cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
                }
                (cache, pool, 0u64)
            },
            |(cache, pool, next)| {
                // Hits remove the object (exclusive), so walk forward.
                let out = cache.get(SimTime::ZERO, VM, *pool, addr(*next % 4096));
                *next += 1;
                out
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("get_miss", |b| {
        let (mut cache, pool) = full_cache(1 << 16);
        let mut block = 1 << 30;
        b.iter(|| {
            block += 1;
            cache.get(SimTime::ZERO, VM, pool, addr(block))
        })
    });
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    use ddc_core::cleancache::SecondChanceCache;
    let mut group = c.benchmark_group("cache_flush");
    group.bench_function("flush_file_1024_blocks", |b| {
        b.iter_batched_ref(
            || {
                let (mut cache, pool) = full_cache(1 << 16);
                for block in 0..1024 {
                    cache.put(SimTime::ZERO, VM, pool, addr(block), PageVersion(1));
                }
                (cache, pool)
            },
            |(cache, pool)| cache.flush_file(VM, *pool, FileId(1)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    use ddc_core::cleancache::SecondChanceCache;
    let mut group = c.benchmark_group("cache_stats");
    // GET_STATS recomputes entitlements: measure with many pools.
    for pools in [4u32, 32, 128] {
        group.bench_function(format!("pool_stats_{pools}_pools"), |b| {
            let mut cache = DoubleDeckerCache::new(CacheConfig::mem_only(1 << 16));
            cache.add_vm(VM, 100);
            let ids: Vec<PoolId> = (0..pools)
                .map(|_| cache.create_pool(VM, CachePolicy::mem(10)))
                .collect();
            for (i, pool) in ids.iter().enumerate() {
                cache.put(
                    SimTime::ZERO,
                    VM,
                    *pool,
                    BlockAddr::new(FileId(i as u64), 0),
                    PageVersion(1),
                );
            }
            b.iter(|| cache.pool_stats(VM, ids[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_put, bench_get, bench_flush, bench_stats);
criterion_main!(benches);
