//! Micro-benchmarks of the guest IO path: page-cache hits, second-chance
//! hits and the eviction/put cycle — the per-operation simulation costs,
//! and equally the modelled per-IO work a real guest would do.

use ddc_bench::harness;
use ddc_core::prelude::*;

fn setup(cache_blocks: u64, cg_limit: u64) -> (Host, VmId, CgroupId) {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(cache_blocks)));
    let vm = host.boot_vm(64, 100);
    let cg = host.create_container(vm, "bench", cg_limit, CachePolicy::mem(100));
    (host, vm, cg)
}

fn addr(vm: VmId, block: u64) -> BlockAddr {
    BlockAddr::new(vm_file(vm, 1), block)
}

fn bench_read_paths() {
    {
        let (mut host, vm, cg) = setup(4096, 512);
        let mut now = host.read(SimTime::ZERO, vm, cg, addr(vm, 0)).finish;
        harness::time("guest_read/page_cache_hit", 1, || {
            let r = host.read(now, vm, cg, addr(vm, 0));
            now = r.finish;
            r
        });
    }
    {
        // Working set of 2x the cgroup limit: every read alternates
        // between page-cache hit and cleancache hit with an eviction/put.
        let (mut host, vm, cg) = setup(4096, 128);
        let mut now = SimTime::ZERO;
        for blk in 0..256 {
            now = host.read(now, vm, cg, addr(vm, blk)).finish;
        }
        let mut blk = 0u64;
        harness::time("guest_read/second_chance_hit_cycle", 1, || {
            let r = host.read(now, vm, cg, addr(vm, blk % 256));
            blk += 1;
            now = r.finish;
            r
        });
    }
    harness::time_batched(
        "guest_read/cold_disk_read",
        64,
        || setup(4096, 2048),
        |(host, vm, cg)| {
            let mut now = SimTime::ZERO;
            for blk in 0..64 {
                now = host.read(now, *vm, *cg, addr(*vm, blk)).finish;
            }
        },
    );
}

fn bench_write_paths() {
    {
        let (mut host, vm, cg) = setup(4096, 512);
        let mut now = SimTime::ZERO;
        let mut blk = 0u64;
        harness::time("guest_write/page_cache_write", 1, || {
            let w = host.write(now, vm, cg, addr(vm, blk % 64));
            blk += 1;
            now = w.finish;
            w
        });
    }
    harness::time_batched(
        "guest_write/write_fsync_4_blocks",
        4,
        || setup(4096, 512),
        |(host, vm, cg)| {
            let mut now = SimTime::ZERO;
            for blk in 0..4 {
                now = host.write(now, *vm, *cg, addr(*vm, blk)).finish;
            }
            host.fsync(now, *vm, *cg, vm_file(*vm, 1))
        },
    );
}

fn bench_end_to_end() {
    // One virtual second of a cache-heavy webserver: the simulator's
    // aggregate events-per-second figure.
    for mode in [PartitionMode::Global, PartitionMode::DoubleDecker] {
        harness::time_batched(
            &format!("end_to_end/webserver_1s_{mode}"),
            1,
            || {
                let config = CacheConfig::mem_only(2048).with_mode(mode);
                let mut host = Host::new(HostConfig::new(config));
                let vm = host.boot_vm(32, 100);
                let cg = host.create_container(vm, "web", 256, CachePolicy::mem(100));
                let web = Webserver::new(
                    "web/t0",
                    vm,
                    cg,
                    WebConfig {
                        files: 600,
                        think_time: SimDuration::from_micros(100),
                        ..WebConfig::default()
                    },
                    1,
                );
                let mut exp = Experiment::new(host, SimDuration::from_secs(1));
                exp.add_thread(Box::new(web));
                exp
            },
            |exp| exp.run_until(SimTime::from_secs(1)),
        );
    }
}

fn main() {
    bench_read_paths();
    bench_write_paths();
    bench_end_to_end();
}
