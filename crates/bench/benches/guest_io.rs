//! Criterion micro-benchmarks of the guest IO path: page-cache hits,
//! second-chance hits and the eviction/put cycle — the per-operation
//! simulation costs, and equally the modelled per-IO work a real guest
//! would do.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ddc_core::prelude::*;

fn setup(cache_blocks: u64, cg_limit: u64) -> (Host, VmId, CgroupId) {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(cache_blocks)));
    let vm = host.boot_vm(64, 100);
    let cg = host.create_container(vm, "bench", cg_limit, CachePolicy::mem(100));
    (host, vm, cg)
}

fn addr(vm: VmId, block: u64) -> BlockAddr {
    BlockAddr::new(vm_file(vm, 1), block)
}

fn bench_read_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("guest_read");
    group.throughput(Throughput::Elements(1));

    group.bench_function("page_cache_hit", |b| {
        let (mut host, vm, cg) = setup(4096, 512);
        let mut now = host.read(SimTime::ZERO, vm, cg, addr(vm, 0)).finish;
        b.iter(|| {
            let r = host.read(now, vm, cg, addr(vm, 0));
            now = r.finish;
            r
        })
    });

    group.bench_function("second_chance_hit_cycle", |b| {
        // Working set of 2x the cgroup limit: every read alternates
        // between page-cache hit and cleancache hit with an eviction/put.
        let (mut host, vm, cg) = setup(4096, 128);
        let mut now = SimTime::ZERO;
        for blk in 0..256 {
            now = host.read(now, vm, cg, addr(vm, blk)).finish;
        }
        let mut blk = 0u64;
        b.iter(|| {
            let r = host.read(now, vm, cg, addr(vm, blk % 256));
            blk += 1;
            now = r.finish;
            r
        })
    });

    group.bench_function("cold_disk_read", |b| {
        b.iter_batched_ref(
            || setup(4096, 2048),
            |(host, vm, cg)| {
                let mut now = SimTime::ZERO;
                for blk in 0..64 {
                    now = host.read(now, *vm, *cg, addr(*vm, blk)).finish;
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_write_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("guest_write");
    group.throughput(Throughput::Elements(1));
    group.bench_function("page_cache_write", |b| {
        let (mut host, vm, cg) = setup(4096, 512);
        let mut now = SimTime::ZERO;
        let mut blk = 0u64;
        b.iter(|| {
            let w = host.write(now, vm, cg, addr(vm, blk % 64));
            blk += 1;
            now = w.finish;
            w
        })
    });
    group.bench_function("write_fsync_4_blocks", |b| {
        b.iter_batched_ref(
            || setup(4096, 512),
            |(host, vm, cg)| {
                let mut now = SimTime::ZERO;
                for blk in 0..4 {
                    now = host.write(now, *vm, *cg, addr(*vm, blk)).finish;
                }
                host.fsync(now, *vm, *cg, vm_file(*vm, 1))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    // One virtual second of a cache-heavy webserver: the simulator's
    // aggregate events-per-second figure.
    for mode in [PartitionMode::Global, PartitionMode::DoubleDecker] {
        group.bench_function(format!("webserver_1s_{mode}"), |b| {
            b.iter_batched_ref(
                || {
                    let config = CacheConfig::mem_only(2048).with_mode(mode);
                    let mut host = Host::new(HostConfig::new(config));
                    let vm = host.boot_vm(32, 100);
                    let cg = host.create_container(vm, "web", 256, CachePolicy::mem(100));
                    let web = Webserver::new(
                        "web/t0",
                        vm,
                        cg,
                        WebConfig {
                            files: 600,
                            think_time: SimDuration::from_micros(100),
                            ..WebConfig::default()
                        },
                        1,
                    );
                    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
                    exp.add_thread(Box::new(web));
                    exp
                },
                |exp| exp.run_until(SimTime::from_secs(1)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_read_paths,
    bench_write_paths,
    bench_end_to_end
);
criterion_main!(benches);
