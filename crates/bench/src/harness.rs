//! Minimal wall-clock timing harness for the `cargo bench` targets.
//!
//! The workspace builds offline, so the benches use this dependency-free
//! helper instead of Criterion: fixed iteration counts (tunable via
//! `DDC_BENCH_ITERS`), a short warmup, and a one-line ns/op report per
//! benchmark. Good enough to compare hot-path costs across commits; not
//! a statistical framework.

use std::hint::black_box;
use std::time::{Duration, Instant};

fn iterations() -> u64 {
    std::env::var("DDC_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

fn report(label: &str, total: Duration, iters: u64, elements: u64) {
    let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    let per_element = per_iter / elements.max(1) as f64;
    println!("{label:<48} {per_iter:>14.1} ns/iter  {per_element:>12.1} ns/elem  ({iters} iters)");
}

/// Times `op` in a tight loop (state persists across iterations).
/// `elements` is the number of logical operations one call performs, for
/// the ns/elem column.
pub fn time<T>(label: &str, elements: u64, mut op: impl FnMut() -> T) {
    let iters = iterations();
    for _ in 0..iters.min(10) {
        black_box(op());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    report(label, start.elapsed(), iters, elements);
}

/// Times `op` against fresh state from `setup` each iteration; only the
/// `op` portion is measured.
pub fn time_batched<S, T>(
    label: &str,
    elements: u64,
    mut setup: impl FnMut() -> S,
    mut op: impl FnMut(&mut S) -> T,
) {
    let iters = iterations();
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let mut state = setup();
        let start = Instant::now();
        black_box(op(&mut state));
        total += start.elapsed();
    }
    report(label, total, iters, elements);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut calls = 0u64;
        time("t", 1, || calls += 1);
        assert!(calls >= iterations());
        let mut setups = 0u64;
        time_batched(
            "b",
            1,
            || {
                setups += 1;
                0u64
            },
            |s| *s += 1,
        );
        assert_eq!(setups, iterations());
    }
}
