//! Benchmark harness for the DoubleDecker reproduction.
//!
//! One scenario module per paper artifact; the `repro` binary dispatches
//! to them and prints paper-style tables and occupancy charts, and the
//! `cargo bench` targets reuse the same builders for micro-measurements
//! (timed with the dependency-free [`harness`] module).
//!
//! All scenarios are **scaled** versions of the paper's testbed (see
//! DESIGN.md): sizes divided by ~8, durations compressed, and the
//! caching unit is a 64 KiB block. Shapes — who wins, by what factor,
//! where crossovers fall — are the reproduction target, not absolute
//! numbers.

pub mod harness;
pub mod scenarios;

pub use scenarios::common::{mb, to_mb};
