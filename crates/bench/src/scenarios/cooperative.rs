//! Table 4: centralized second-chance cache management (Morai++) versus
//! DoubleDecker's cooperative two-level provisioning.
//!
//! Setup (paper §5.2.1, scaled ÷8): one VM (768 MiB) hosts MongoDB-,
//! MySQL-, Redis-like stores and a Filebench webserver; the hypervisor
//! cache is 256 MiB.
//!
//! * **Morai++**: containers are unconstrained inside the VM (the guest
//!   OS shares memory greedily, so the webserver's page cache dominates);
//!   the harness sweeps static hypervisor-cache partitions and reports
//!   the best configuration (most SLAs met, then max aggregate).
//! * **DoubleDecker**: the VM-level manager *also* sets per-container
//!   cgroup limits (Mongo 128, MySQL 256, Redis 256, Web 128 MiB), then
//!   the same hypervisor-cache sweep runs. The two memory-bound stores
//!   (Redis, MySQL) now fit and their throughput recovers by orders of
//!   magnitude — a configuration no hypervisor-side-only scheme can
//!   reach.

use ddc_core::prelude::*;

use super::common::mb;

/// The four applications of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoopApp {
    /// MongoDB-like file-backed store.
    MongoDb,
    /// MySQL-like buffer-pool store.
    MySql,
    /// Redis-like anonymous store.
    Redis,
    /// Filebench webserver.
    Webserver,
}

impl CoopApp {
    /// All apps in the paper's row order.
    pub const ALL: [CoopApp; 4] = [
        CoopApp::MongoDb,
        CoopApp::MySql,
        CoopApp::Redis,
        CoopApp::Webserver,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CoopApp::MongoDb => "mongodb",
            CoopApp::MySql => "mysql",
            CoopApp::Redis => "redis",
            CoopApp::Webserver => "webserver",
        }
    }
}

/// One app's outcome under one technique.
#[derive(Clone, Copy, Debug)]
pub struct CoopResult {
    /// Throughput, ops/sec.
    pub ops_per_sec: f64,
    /// In-VM memory charged to the app (anon resident + page cache), MB.
    pub app_memory_mb: f64,
    /// Hypervisor cache held by the app's pool, MB.
    pub hcache_mb: f64,
    /// Whether the app met its (scaled) SLA.
    pub sla_met: bool,
}

/// A full Table 4 half: the technique name, the winning cache partition,
/// and per-app results.
pub struct CoopRun {
    /// `"Morai++"` or `"DoubleDecker"`.
    pub technique: &'static str,
    /// The winning static cache weights (mongo, mysql, redis, web).
    pub cache_weights: [u32; 4],
    /// Per-app outcomes in [`CoopApp::ALL`] order.
    pub results: Vec<(CoopApp, CoopResult)>,
    /// Sum of ops/sec.
    pub aggregate: f64,
}

const VM_MB: u64 = 768;
const CACHE_MB: u64 = 256;
/// DoubleDecker's in-VM provisioning (paper: 1/2/2/1 GB of a 6 GB VM).
const DD_LIMITS_MB: [u64; 4] = [128, 256, 256, 128];

/// Scaled SLA floors, ops/sec. Derived from the paper's SLA column by the
/// same qualitative intent: Redis needs in-memory speed, MySQL needs to
/// avoid swap thrash, MongoDB and the webserver need modest floors.
pub const SLAS: [f64; 4] = [500.0, 500.0, 10_000.0, 50.0];

/// Candidate static cache partitions to sweep (weights for mongo, mysql,
/// redis, web). Redis and MySQL barely use the disk cache, so the
/// meaningful axis is the mongo/web split — exactly what the paper found
/// (its best Morai++ split was 60:40 mongo:web).
const SWEEP: [[u32; 4]; 6] = [
    [100, 0, 0, 0],
    [80, 0, 0, 20],
    [60, 0, 0, 40],
    [40, 0, 0, 60],
    [20, 0, 0, 80],
    [0, 0, 0, 100],
];

/// Dataset sizes, blocks.
fn dataset(app: CoopApp) -> u64 {
    match app {
        CoopApp::MongoDb => mb(192),
        CoopApp::MySql => mb(224),
        CoopApp::Redis => mb(224),
        CoopApp::Webserver => mb(384),
    }
}

/// Runs one configuration: optional cgroup limits (None = unconstrained,
/// Morai-style) and a static cache weight vector.
fn run_config(
    limits: Option<[u64; 4]>,
    weights: [u32; 4],
    duration: SimTime,
) -> Vec<(CoopApp, CoopResult)> {
    let cache = CacheConfig::mem_only(mb(CACHE_MB)).with_mode(PartitionMode::Strict);
    let mut host = Host::new(HostConfig::new(cache));
    let vm = host.boot_vm(VM_MB, 100);
    let mut cgs = Vec::new();
    for (i, app) in CoopApp::ALL.iter().enumerate() {
        let limit = match limits {
            Some(l) => mb(l[i]),
            None => mb(VM_MB), // unconstrained: VM memory is the only cap
        };
        let policy = if weights[i] == 0 {
            CachePolicy::disabled()
        } else {
            CachePolicy::mem(weights[i])
        };
        cgs.push((*app, host.create_container(vm, app.name(), limit, policy)));
    }

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    for (i, (app, cg)) in cgs.iter().enumerate() {
        let seed = 4000 + i as u64;
        match app {
            CoopApp::MongoDb => {
                let cfg = YcsbConfig::read_mostly(StoreModel::MongoLike, dataset(*app));
                exp.add_thread(Box::new(YcsbClient::new(
                    format!("{}/t0", app.name()),
                    vm,
                    *cg,
                    cfg,
                    seed,
                )));
            }
            CoopApp::MySql => {
                let cfg = YcsbConfig {
                    update_fraction: 0.3,
                    ..YcsbConfig::read_mostly(StoreModel::MySqlLike, dataset(*app))
                };
                exp.add_thread(Box::new(YcsbClient::new(
                    format!("{}/t0", app.name()),
                    vm,
                    *cg,
                    cfg,
                    seed,
                )));
            }
            CoopApp::Redis => {
                let cfg = YcsbConfig::read_mostly(StoreModel::RedisLike, dataset(*app));
                exp.add_thread(Box::new(YcsbClient::new(
                    format!("{}/t0", app.name()),
                    vm,
                    *cg,
                    cfg,
                    seed,
                )));
            }
            CoopApp::Webserver => {
                let cfg = WebConfig {
                    files: (dataset(*app) / 2) as usize,
                    mean_file_blocks: 2,
                    ..WebConfig::default()
                };
                for t in 0..2 {
                    exp.add_thread(Box::new(Webserver::new(
                        format!("{}/t{t}", app.name()),
                        vm,
                        *cg,
                        cfg,
                        seed + t as u64,
                    )));
                }
            }
        }
    }
    let report = exp.run_until(duration);
    cgs.iter()
        .enumerate()
        .map(|(i, (app, cg))| {
            let mem = exp.host().container_mem_stats(vm, *cg);
            let hc = exp.host().container_cache_stats(vm, *cg).unwrap();
            let ops = report.throughput_of(app.name());
            (
                *app,
                CoopResult {
                    ops_per_sec: ops,
                    app_memory_mb: super::common::to_mb(mem.charged_pages()),
                    hcache_mb: super::common::to_mb(hc.mem_pages),
                    sla_met: ops >= SLAS[i],
                },
            )
        })
        .collect()
}

/// Sweeps the cache partitions for one technique and returns the best
/// run (most SLAs met, ties broken by aggregate throughput).
fn best_run(technique: &'static str, limits: Option<[u64; 4]>, duration: SimTime) -> CoopRun {
    let mut best: Option<CoopRun> = None;
    for weights in SWEEP {
        let results = run_config(limits, weights, duration);
        let met = results.iter().filter(|(_, r)| r.sla_met).count();
        let aggregate: f64 = results.iter().map(|(_, r)| r.ops_per_sec).sum();
        let candidate = CoopRun {
            technique,
            cache_weights: weights,
            results,
            aggregate,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                let b_met = b.results.iter().filter(|(_, r)| r.sla_met).count();
                met > b_met || (met == b_met && aggregate > b.aggregate)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("sweep is non-empty")
}

/// Runs Table 4: Morai++ (centralized) vs DoubleDecker (cooperative).
pub fn table4(duration: SimTime) -> (CoopRun, CoopRun) {
    let morai = best_run("Morai++", None, duration);
    let dd = best_run("DoubleDecker", Some(DD_LIMITS_MB), duration);
    (morai, dd)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimTime = SimTime::from_secs(40);

    fn ops(run: &[(CoopApp, CoopResult)], app: CoopApp) -> f64 {
        run.iter()
            .find(|(a, _)| *a == app)
            .map(|(_, r)| r.ops_per_sec)
            .unwrap()
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn dd_limits_rescue_memory_bound_stores() {
        // Compare one representative config under both techniques rather
        // than the full sweep (kept short for unit-test budgets).
        let morai = run_config(None, [60, 0, 0, 40], SHORT);
        let dd = run_config(Some(DD_LIMITS_MB), [60, 0, 0, 40], SHORT);
        assert!(
            ops(&dd, CoopApp::Redis) > ops(&morai, CoopApp::Redis),
            "cooperative limits must improve Redis throughput ({} vs {})",
            ops(&dd, CoopApp::Redis),
            ops(&morai, CoopApp::Redis)
        );
        assert!(
            ops(&dd, CoopApp::MySql) > ops(&morai, CoopApp::MySql),
            "MySQL must improve under DD"
        );
        let agg_dd: f64 = dd.iter().map(|(_, r)| r.ops_per_sec).sum();
        let agg_morai: f64 = morai.iter().map(|(_, r)| r.ops_per_sec).sum();
        assert!(
            agg_dd > agg_morai,
            "DD wins on aggregate ({agg_dd:.0} vs {agg_morai:.0})"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn web_dominates_vm_memory_without_limits() {
        let morai = run_config(None, [60, 0, 0, 40], SHORT);
        let web_mem = morai
            .iter()
            .find(|(a, _)| *a == CoopApp::Webserver)
            .map(|(_, r)| r.app_memory_mb)
            .unwrap();
        let redis_mem = morai
            .iter()
            .find(|(a, _)| *a == CoopApp::Redis)
            .map(|(_, r)| r.app_memory_mb)
            .unwrap();
        // The webserver's greedy page cache squeezes Redis below its
        // working set (Redis dataset is 224 MiB).
        assert!(
            redis_mem < 235.0,
            "redis must be squeezed below its working set (got {redis_mem:.0} MB)"
        );
        assert!(web_mem > 0.0);
    }
}
