//! Fault injection: SSD brownout with graceful degradation and recovery.
//!
//! An SSD-homed webserver warms the cache, then the SSD store browns out
//! for the middle third of the run (most IO errors, survivors slowed).
//! The first faulted IO quarantines the tier — every SSD page is
//! invalidated so no stale data can ever be served — and puts fall back
//! to the memory store. Recovery probes (exponential backoff) re-enable
//! the tier once the window passes, and the hit ratio climbs back as the
//! SSD refills. The whole run is seeded: identical seeds reproduce the
//! run byte-for-byte.

use std::cell::Cell;

use ddc_core::prelude::*;

use super::common::{mb, to_mb};

/// Default virtual run length, seconds.
pub const DURATION_SECS: u64 = 150;

/// Per-operation failure probability inside the brownout window.
pub const BROWNOUT_RATE: f64 = 0.9;

/// Result of one brownout run: the report plus the interval hit ratio
/// averaged over the three phases (before / during / after the window).
pub struct FaultsRun {
    /// The full experiment report (fault counters included).
    pub report: ddc_core::ExperimentReport,
    /// Brownout window, seconds.
    pub window: (u64, u64),
    /// Mean interval hit ratio before the window.
    pub hit_before: f64,
    /// Mean interval hit ratio during the window.
    pub hit_during: f64,
    /// Mean interval hit ratio after the window.
    pub hit_after: f64,
}

/// Runs the brownout scenario for `duration_secs` (the window covers the
/// middle third) with the given fault seed.
pub fn brownout(duration_secs: u64, seed: u64) -> FaultsRun {
    let from = duration_secs / 3;
    let until = 2 * duration_secs / 3;

    let cache = CacheConfig::mem_and_ssd(mb(8), mb(256));
    let mut host = Host::new(HostConfig::new(cache));
    let vm = host.boot_vm(16, 100);
    let cg = host.create_container(vm, "web", mb(8), CachePolicy::ssd(100));
    host.set_ssd_fallback_mode(FallbackMode::ToMem);
    host.set_ssd_fault_schedule(Some(FaultSchedule::new(seed).with_window(
        SimTime::from_secs(from),
        Some(SimTime::from_secs(until)),
        FaultKind::Brownout {
            rate: BROWNOUT_RATE,
            extra: SimDuration::from_millis(2),
        },
    )));

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    let cfg = WebConfig {
        files: 3000,
        mean_file_blocks: 2,
        zipf_theta: 0.0,
        ..WebConfig::default()
    };
    exp.add_thread(Box::new(Webserver::new("web/t0", vm, cg, cfg, 1)));
    exp.add_thread(Box::new(Webserver::new("web/t1", vm, cg, cfg, 2)));

    // Interval (not cumulative) second-chance hit ratio, so the series
    // shows the collapse during the window and the climb back after it.
    let prev = Cell::new((0u64, 0u64));
    exp.add_probe("hit ratio", move |h| {
        let s = h.container_cache_stats(vm, cg).unwrap_or_default();
        let (gets0, hits0) = prev.replace((s.gets, s.hits));
        let dg = s.gets.saturating_sub(gets0);
        let dh = s.hits.saturating_sub(hits0);
        if dg == 0 {
            0.0
        } else {
            dh as f64 / dg as f64
        }
    });
    exp.add_probe("ssd (MB)", move |h| to_mb(h.cache_totals().ssd_used_pages));

    let report = exp.run_until(SimTime::from_secs(duration_secs));
    let ratio = |lo: f64, hi: f64| {
        report
            .series("hit ratio")
            .and_then(|s| s.mean_in(lo, hi))
            .unwrap_or(0.0)
    };
    let (from_f, until_f) = (from as f64, until as f64);
    FaultsRun {
        window: (from, until),
        // Skip the cold start and the edge seconds of each phase.
        hit_before: ratio(from_f * 0.5, from_f),
        hit_during: ratio(from_f + 2.0, until_f),
        hit_after: ratio(until_f + 5.0, duration_secs as f64),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brownout_degrades_and_recovers() {
        let run = brownout(60, 0xB120);
        let f = &run.report.faults;
        assert!(f.ssd_quarantines > 0, "brownout quarantined the SSD");
        assert!(
            f.quarantine_invalidated_pages > 0,
            "quarantine invalidated the resident SSD pages"
        );
        assert!(f.failed_gets + f.failed_puts > 0);
        assert!(
            f.channel_fail_opens > 0,
            "failed gets surface to the guest as fail-open misses"
        );
        assert!(f.ssd_recoveries > 0, "the tier recovered");
        assert!(
            run.hit_during < run.hit_before,
            "hit ratio collapses during the window ({:.2} vs {:.2})",
            run.hit_during,
            run.hit_before
        );
        assert!(
            run.hit_after > run.hit_during,
            "hit ratio recovers after the window ({:.2} vs {:.2})",
            run.hit_after,
            run.hit_during
        );
        assert!(
            run.report.threads.iter().all(|t| t.ops > 0),
            "the workload survives the brownout"
        );
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let a = brownout(30, 7).report.to_json();
        let b = brownout(30, 7).report.to_json();
        assert_eq!(a, b);
    }
}
