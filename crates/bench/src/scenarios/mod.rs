//! Scenario builders, one module per paper artifact.

pub mod ablations;
pub mod chaos;
pub mod common;
pub mod cooperative;
pub mod dynamic;
pub mod faults;
pub mod modes;
pub mod motivation;
pub mod perf;
pub mod policies;
pub mod remote;
pub mod splits;
pub mod stress;
pub mod wear;
