//! Extension and ablation experiments beyond the paper's evaluation,
//! exercising the features the paper sketches as design options or
//! future work:
//!
//! * **zcache-style compression** in the memory store (paper §1 lists
//!   in-band compression among hypervisor-cache benefits),
//! * the **hybrid store** (`<Hybrid, W>`): memory share first with
//!   trickle-down spill to the SSD share (paper §3.3),
//! * **MRC-driven adaptive weights** (paper §5.2.1's suggested policy
//!   layer) versus static equal weights.

use ddc_core::adaptive::{self, AdaptiveConfig};
use ddc_core::prelude::*;

use super::common::{mb, spawn_four_kind, FourKind};

/// Result of the compression ablation: the same contended four-workload
/// run with the memory store uncompressed vs 2:1 compressed.
pub struct CompressionAblation {
    /// `(workload, plain MB/s, compressed MB/s)`.
    pub throughput: Vec<(FourKind, f64, f64)>,
    /// Total evictions, plain.
    pub evictions_plain: u64,
    /// Total evictions, compressed.
    pub evictions_compressed: u64,
}

fn four_workload_run(compress: bool, duration: SimTime) -> ddc_core::ExperimentReport {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(mb(384))));
    if compress {
        // 2:1 ratio at ~5 µs/block codec cost (LZO-class on 64 KiB).
        host.set_mem_cache_compression(500, SimDuration::from_micros(5));
    }
    let vm = host.boot_vm(1024, 100);
    let mut exp_host = host;
    let mut cgs = Vec::new();
    for kind in FourKind::ALL {
        cgs.push((
            kind,
            exp_host.create_container(vm, kind.name(), mb(128), CachePolicy::mem(25)),
        ));
    }
    let mut exp = Experiment::new(exp_host, SimDuration::from_secs(1));
    for (i, (kind, cg)) in cgs.iter().enumerate() {
        spawn_four_kind(&mut exp, *kind, vm, *cg, 2, 7000 * (i as u64 + 1));
    }
    exp.mark_steady_state_at(SimTime::from_nanos(duration.as_nanos() / 2));
    exp.run_until(duration)
}

/// Runs the compression ablation.
pub fn compression(duration: SimTime) -> CompressionAblation {
    let plain = four_workload_run(false, duration);
    let compressed = four_workload_run(true, duration);
    let throughput = FourKind::ALL
        .iter()
        .map(|k| {
            (
                *k,
                plain.mb_per_sec_of(k.name()),
                compressed.mb_per_sec_of(k.name()),
            )
        })
        .collect();
    CompressionAblation {
        throughput,
        evictions_plain: plain.evictions,
        evictions_compressed: compressed.evictions,
    }
}

/// Result of the hybrid-store experiment.
pub struct HybridResult {
    /// Videoserver MB/s under `<Mem, 18>`.
    pub video_mem: f64,
    /// Videoserver MB/s under `<Hybrid, 18>` (same weight, SSD spill).
    pub video_hybrid: f64,
    /// Objects trickled from the memory share down to the SSD share.
    pub trickle_downs: u64,
    /// Videoserver SSD-store occupancy at the end (pages).
    pub video_ssd_pages: u64,
}

/// Runs the four workloads with the videoserver either memory-only or
/// hybrid, holding everything else fixed.
pub fn hybrid(duration: SimTime) -> HybridResult {
    let run = |hybrid: bool| {
        let cache = CacheConfig::mem_and_ssd(mb(256), mb(30 * 1024));
        let mut host = Host::new(HostConfig::new(cache));
        let vm = host.boot_vm(1024, 100);
        let policies = [
            CachePolicy::mem(32),
            CachePolicy::mem(25),
            CachePolicy::mem(25),
            if hybrid {
                CachePolicy::hybrid(18)
            } else {
                CachePolicy::mem(18)
            },
        ];
        let mut cgs = Vec::new();
        for (i, kind) in FourKind::ALL.iter().enumerate() {
            cgs.push((
                *kind,
                host.create_container(vm, kind.name(), mb(128), policies[i]),
            ));
        }
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        for (i, (kind, cg)) in cgs.iter().enumerate() {
            spawn_four_kind(&mut exp, *kind, vm, *cg, 2, 8000 * (i as u64 + 1));
        }
        exp.mark_steady_state_at(SimTime::from_nanos(duration.as_nanos() / 2));
        let report = exp.run_until(duration);
        let video_cg = cgs[3].1;
        let stats = exp.host().container_cache_stats(vm, video_cg).unwrap();
        (
            report.mb_per_sec_of(FourKind::Video.name()),
            exp.host().cache_totals().trickle_downs,
            stats.ssd_pages,
        )
    };
    let (video_mem, _, _) = run(false);
    let (video_hybrid, trickle_downs, video_ssd_pages) = run(true);
    HybridResult {
        video_mem,
        video_hybrid,
        trickle_downs,
        video_ssd_pages,
    }
}

/// Result of the adaptive-provisioning experiment.
pub struct AdaptiveResult {
    /// Aggregate rate-weighted throughput with static equal weights.
    pub static_tput: f64,
    /// The same with the MRC-driven controller adjusting every 20 s.
    pub adaptive_tput: f64,
    /// Final weights (big-working-set container, small one).
    pub final_weights: (u32, u32),
}

/// Two webserver containers, both over their entitlements (so no slack
/// is left to lend) but with very different access *rates*, share a
/// contended cache. With static equal weights, half the cache serves the
/// slow container; the MRC-driven controller shifts weight to the
/// fast one and recovers aggregate throughput.
pub fn adaptive(duration: SimTime) -> AdaptiveResult {
    let run = |enable: bool| {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(mb(96))));
        let vm = host.boot_vm(128, 100);
        let big = host.create_container(vm, "big", mb(32), CachePolicy::mem(50));
        let small = host.create_container(vm, "small", mb(32), CachePolicy::mem(50));
        if enable {
            adaptive::enable_estimation(&mut host, vm, 4);
        }
        let big_cfg = WebConfig {
            files: 1600,
            mean_file_blocks: 2,
            zipf_theta: 0.8,
            ..WebConfig::default()
        };
        // "small" here means *slow*: same-order working set, 20x lower
        // request rate, so its marginal cache value is much lower.
        let small_cfg = WebConfig {
            files: 1300,
            mean_file_blocks: 2,
            zipf_theta: 0.8,
            think_time: SimDuration::from_millis(20),
            ..WebConfig::default()
        };
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        exp.add_thread(Box::new(Webserver::new("big/t0", vm, big, big_cfg, 1)));
        exp.add_thread(Box::new(Webserver::new("big/t1", vm, big, big_cfg, 2)));
        exp.add_thread(Box::new(Webserver::new(
            "small/t0", vm, small, small_cfg, 3,
        )));
        if enable {
            adaptive::schedule(
                &mut exp,
                AdaptiveConfig::new(vm),
                SimDuration::from_secs(20),
                duration,
            );
        }
        exp.mark_steady_state_at(SimTime::from_nanos(duration.as_nanos() / 2));
        let report = exp.run_until(duration);
        let tput = report.mb_per_sec_of("big") + report.mb_per_sec_of("small");
        let weights = (
            exp.host().guest(vm).cgroup(big).policy().weight,
            exp.host().guest(vm).cgroup(small).policy().weight,
        );
        (tput, weights)
    };
    let (static_tput, _) = run(false);
    let (adaptive_tput, final_weights) = run(true);
    AdaptiveResult {
        static_tput,
        adaptive_tput,
        final_weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimTime = SimTime::from_secs(200);

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn compression_reduces_evictions() {
        let r = compression(SHORT);
        assert!(
            r.evictions_compressed < r.evictions_plain,
            "2:1 compression must relieve pressure ({} vs {})",
            r.evictions_compressed,
            r.evictions_plain
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn hybrid_spills_video_to_ssd() {
        let r = hybrid(SHORT);
        // Spill happens through direct SSD placement once the memory
        // entitlement is full (trickle-down only fires when the pool is
        // additionally the eviction victim).
        assert!(r.video_ssd_pages > 0, "spilled objects live on the SSD");
        assert!(
            r.video_hybrid > r.video_mem * 0.8,
            "hybrid video should be at worst slightly slower than mem-only \
             ({:.1} vs {:.1})",
            r.video_hybrid,
            r.video_mem
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn adaptive_shifts_weights_toward_demand() {
        let r = adaptive(SHORT);
        assert!(
            r.final_weights.0 > r.final_weights.1,
            "the large working set must end with more weight {:?}",
            r.final_weights
        );
        assert!(
            r.adaptive_tput > r.static_tput * 0.9,
            "adaptive must not lose to static ({:.1} vs {:.1})",
            r.adaptive_tput,
            r.static_tput
        );
    }
}
