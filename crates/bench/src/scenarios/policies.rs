//! Table 3 and Figures 10–11: differentiated hypervisor caching policies
//! versus global cache management.
//!
//! Setup (paper §5.2, scaled ÷8): one VM, four containers with unequal
//! cgroup limits (webserver 160 MiB, proxycache 128 MiB, mail 128 MiB,
//! videoserver 96 MiB) sharing a 256 MiB memory cache (plus a large SSD
//! store for the hybrid policy). Four cache settings are compared:
//!
//! | Setting  | webserver | proxycache | mail | videoserver |
//! |----------|-----------|------------|------|-------------|
//! | Global   | — (container-agnostic FIFO)                 |
//! | DDMem    | Mem 32    | Mem 25     | Mem 25 | Mem 18    |
//! | DDMemEx  | Mem 40    | Mem 30     | Mem 30 | Mem 0 (excluded) |
//! | DDHybrid | Mem 40    | Mem 30     | Mem 30 | SSD 100   |

use ddc_core::prelude::*;

use super::common::{mb, probe_container_mem, spawn_four_kind, FourKind};

/// The four cache settings of Table 3 (plus the Global baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicySetting {
    /// Container-agnostic global cache management.
    Global,
    /// Cgroup weights extended to the cache: 32/25/25/18.
    DdMem,
    /// Videoserver excluded from the memory cache: 40/30/30/0.
    DdMemEx,
    /// Videoserver moved to the SSD store: 40/30/30 + SSD:100.
    DdHybrid,
}

impl PolicySetting {
    /// All settings, baseline first.
    pub const ALL: [PolicySetting; 4] = [
        PolicySetting::Global,
        PolicySetting::DdMem,
        PolicySetting::DdMemEx,
        PolicySetting::DdHybrid,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicySetting::Global => "Global",
            PolicySetting::DdMem => "DDMem",
            PolicySetting::DdMemEx => "DDMemEx",
            PolicySetting::DdHybrid => "DDHybrid",
        }
    }

    /// Table 3's `<T, W>` tuples for C1..C4 (web, proxy, mail, video).
    pub fn policies(self) -> [CachePolicy; 4] {
        match self {
            // Weights are irrelevant under global management.
            PolicySetting::Global => [CachePolicy::mem(25); 4],
            PolicySetting::DdMem => [
                CachePolicy::mem(32),
                CachePolicy::mem(25),
                CachePolicy::mem(25),
                CachePolicy::mem(18),
            ],
            PolicySetting::DdMemEx => [
                CachePolicy::mem(40),
                CachePolicy::mem(30),
                CachePolicy::mem(30),
                CachePolicy::disabled(),
            ],
            PolicySetting::DdHybrid => [
                CachePolicy::mem(40),
                CachePolicy::mem(30),
                CachePolicy::mem(30),
                CachePolicy::ssd(100),
            ],
        }
    }
}

/// One setting's outcome: per-workload throughput (MB/s) plus the report
/// with occupancy series (Fig. 11).
pub struct PolicyRun {
    /// The setting that ran.
    pub setting: PolicySetting,
    /// `(workload, MB/s)` in C1..C4 order.
    pub throughput: Vec<(FourKind, f64)>,
    /// Full report (occupancy series named `"{workload} (MB)"`).
    pub report: ddc_core::ExperimentReport,
}

const VM_MB: u64 = 1024;
const MEM_CACHE_MB: u64 = 256;
const SSD_CACHE_MB: u64 = 30 * 1024;
/// Scaled cgroup limits for C1..C4 (paper: 1.25 GB, 1 GB, 1 GB, 0.75 GB).
const LIMITS_MB: [u64; 4] = [160, 128, 128, 96];

/// Runs one cache setting for `duration`.
pub fn run_policy(setting: PolicySetting, duration: SimTime) -> PolicyRun {
    let mode = match setting {
        PolicySetting::Global => PartitionMode::Global,
        _ => PartitionMode::DoubleDecker,
    };
    let cache = CacheConfig {
        mem_capacity_pages: mb(MEM_CACHE_MB),
        ssd_capacity_pages: mb(SSD_CACHE_MB),
        mode,
        admission: AdmissionConfig::off(),
    };
    let mut host = Host::new(HostConfig::new(cache));
    let vm = host.boot_vm(VM_MB, 100);
    let policies = setting.policies();
    let mut cgs = Vec::new();
    for (i, kind) in FourKind::ALL.iter().enumerate() {
        cgs.push((
            *kind,
            host.create_container(vm, kind.name(), mb(LIMITS_MB[i]), policies[i]),
        ));
    }
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    for (i, (kind, cg)) in cgs.iter().enumerate() {
        spawn_four_kind(&mut exp, *kind, vm, *cg, 2, 2000 * (i as u64 + 1));
        probe_container_mem(&mut exp, kind.name(), vm, *cg);
    }
    // Steady-state window: exclude the disk-bound cold-fill warm-up.
    exp.mark_steady_state_at(SimTime::from_nanos(duration.as_nanos() / 2));
    let report = exp.run_until(duration);
    let throughput = cgs
        .iter()
        .map(|(kind, _)| (*kind, report.mb_per_sec_of(kind.name())))
        .collect();
    PolicyRun {
        setting,
        throughput,
        report,
    }
}

/// Runs all four settings and returns them baseline-first (Fig. 10's
/// speedups are `setting / Global` per workload). The settings run in
/// parallel; output order stays `PolicySetting::ALL` order.
pub fn fig10_runs(duration: SimTime) -> Vec<PolicyRun> {
    ddc_core::parallel::run_cells(PolicySetting::ALL.to_vec(), |s| run_policy(s, duration))
}

/// Computes Fig. 10 speedups of `run` relative to `baseline`.
pub fn speedups(baseline: &PolicyRun, run: &PolicyRun) -> Vec<(FourKind, f64)> {
    run.throughput
        .iter()
        .map(|(kind, tput)| {
            let base = baseline
                .throughput
                .iter()
                .find(|(k, _)| k == kind)
                .map(|(_, t)| *t)
                .unwrap_or(0.0);
            let s = if base > 0.0 { tput / base } else { 0.0 };
            (*kind, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimTime = SimTime::from_secs(400);

    fn tput(run: &PolicyRun, kind: FourKind) -> f64 {
        run.throughput
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| *t)
            .unwrap()
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn dd_policies_beat_global_for_web() {
        let global = run_policy(PolicySetting::Global, SHORT);
        let ddmem = run_policy(PolicySetting::DdMem, SHORT);
        let s = speedups(&global, &ddmem);
        let web_speedup = s
            .iter()
            .find(|(k, _)| *k == FourKind::Web)
            .map(|(_, v)| *v)
            .unwrap();
        assert!(
            web_speedup > 1.3,
            "webserver should speed up well above 1x under DDMem (got {web_speedup:.2}x)"
        );
        assert!(tput(&ddmem, FourKind::Web) > tput(&global, FourKind::Web));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn hybrid_keeps_video_served_from_ssd() {
        let hybrid = run_policy(PolicySetting::DdHybrid, SHORT);
        // Video must hold SSD space and none of the memory store.
        let video_series = hybrid.report.series("videoserver (MB)").unwrap();
        let late_mem = video_series
            .mean_in(SHORT.as_secs_f64() * 0.5, SHORT.as_secs_f64())
            .unwrap_or(0.0);
        assert!(
            late_mem < 1.0,
            "videoserver must vacate the memory store under DDHybrid (got {late_mem:.1} MB)"
        );
        assert!(tput(&hybrid, FourKind::Video) > 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn memex_excludes_video_from_cache() {
        let memex = run_policy(PolicySetting::DdMemEx, SHORT);
        let video_series = memex.report.series("videoserver (MB)").unwrap();
        let peak = video_series
            .points
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max);
        assert!(
            peak < 1.0,
            "videoserver must never occupy the memory cache under DDMemEx (peak {peak:.1})"
        );
    }
}
