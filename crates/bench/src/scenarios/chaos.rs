//! `repro chaos` — the seeded crash-and-recovery chaos harness.
//!
//! Each case boots a two-VM host with journaling on, drives a seeded
//! mixed read/write/fsync/delete stream, then kills the hypervisor
//! caching layer at a randomized journal prefix:
//!
//! * **clean** — the journal survives exactly to a record boundary,
//! * **torn** — the crash lands mid-append, leaving a partial record,
//! * **bit-flip** — one bit of the surviving image is silently
//!   corrupted, and 0–2 recovered slots are additionally bit-rotted to
//!   exercise verify-on-read.
//!
//! After warm restart the harness runs the stale-read oracle (every
//! recovered entry's version must match the guest's on-disk version),
//! the structural invariant auditor, and then continues the workload —
//! counting stale second-chance hits, which must stay zero. Recovery
//! may lose entries; it must never resurrect a stale one (the
//! clean-cache contract, paper §3). The whole sweep is seeded and
//! deterministic: identical seeds reproduce the report byte-for-byte,
//! and independent cases fan out across cores.
//!
//! # Crash × concurrency (the threaded axis)
//!
//! A second sweep kills the journaled *sharded* plane
//! (`ddc-concurrent`, DESIGN.md §14): the kill phase is driven
//! round-robin so every diagnostic is seed-deterministic, the plane
//! dies mid-tick — the victim VM's stream stops mid-`put_many`, the
//! tick's group commit never happens — and on `hook_cut` cases the
//! segment snapshot is the one the eviction hook took *between the two
//! eviction phases*. Each shard's segment is then mutilated
//! independently (intact / boundary cut / torn / bit-flipped),
//! `ShardedCache::recover` warm-restarts, and the *same* guests
//! continue on the 8-thread plane. Finally a second crash hits the
//! genuinely thread-interleaved journal the continuation wrote; its
//! replay counters are interleaving-dependent and stay out of the
//! deterministic report, but its oracle/auditor gates fold into the
//! case (they must be zero under any interleaving).
//!
//! # Crash × remote tier (the remote axis, v3)
//!
//! A third sweep binds every pool to the simulated remote chunk store
//! (DESIGN.md §16) and crashes the plane while the fault-tolerance
//! stack is under duress, cycling three axes:
//!
//! * **partition-stress** — the link is severed for the first third of
//!   the 8-thread continuation: breakers must trip *under the stress
//!   threads*, the partition must be fail-open (zero stale bytes), and
//!   service must resume once the window closes,
//! * **hedge-crash** — the edge cache never hits, so every fetch
//!   crosses the hedge threshold; the crash lands while the bindings
//!   are hedging on every cold miss,
//! * **breaker-open** — the link is down from boot to the crash, so
//!   every breaker is open at the kill; recovery rebuilds fresh
//!   (closed) breakers against a healed link and must serve again.
//!
//! Pre-crash remote counters come from the single-threaded kill phase
//! and are seed-stable; the post-recovery continuation is threaded, so
//! only its *gates* enter the report (recovered-service and
//! breaker-tripped booleans plus the usual zero-stale/zero-finding
//! totals, which must hold under any interleaving).

use std::sync::{Arc, Mutex};

use ddc_core::concurrent::{CrashHarness, RemoteSetup, StressConfig};
use ddc_core::hypercache::audit;
use ddc_core::prelude::*;
use ddc_core::storage::Journal;
use ddc_json::Json;

/// JSON schema tag of the chaos report.
pub const SCHEMA: &str = "ddc-chaos-v3";

/// Randomized crash points in a full run.
pub const CASES_FULL: usize = 60;

/// Crash points in a `--smoke` run (CI budget).
pub const CASES_SMOKE: usize = 8;

/// Threaded-plane crash points in a full run.
pub const THREADED_CASES_FULL: usize = 24;

/// Threaded-plane crash points in a `--smoke` run.
pub const THREADED_CASES_SMOKE: usize = 6;

/// OS threads the post-recovery continuation drives.
pub const THREADED_PLANE_THREADS: usize = 8;

/// Ticks the survivors are driven after each threaded-plane recovery.
const THREADED_CONT_TICKS: u64 = 24;

/// Remote-tier crash points in a full run.
pub const REMOTE_CASES_FULL: usize = 12;

/// Remote-tier crash points in a `--smoke` run.
pub const REMOTE_CASES_SMOKE: usize = 3;

/// Ticks the survivors are driven after each remote-tier recovery.
/// Long enough that a breaker tripped at the very end of the
/// partition-stress window (first third of the continuation) still
/// half-opens, probes the healed link and serves well before the end.
const REMOTE_CONT_TICKS: u64 = 48;

/// Default master seed of the sweep.
pub const DEFAULT_SEED: u64 = 0xC805;

/// How a case kills the hypervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// Journal cut exactly at a record boundary.
    Clean,
    /// Journal cut mid-record (a torn final append).
    Torn,
    /// One bit of the surviving image flipped, plus bit-rotted slots.
    BitFlip,
}

impl CrashKind {
    /// Stable lowercase name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CrashKind::Clean => "clean",
            CrashKind::Torn => "torn",
            CrashKind::BitFlip => "bitflip",
        }
    }
}

/// Outcome of one crash/recover/continue case.
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// Case index within the sweep.
    pub id: u32,
    /// Crash flavor.
    pub kind: CrashKind,
    /// Bytes of journal that survived the crash.
    pub cut: usize,
    /// Bytes of journal written before the crash.
    pub image_len: usize,
    /// Journal records successfully replayed.
    pub records_replayed: u64,
    /// Replay stopped at a torn final record.
    pub torn_tail: bool,
    /// Replay stopped at a corrupt record.
    pub corrupt: bool,
    /// Entries resident after recovery.
    pub recovered_entries: u64,
    /// Entries dropped by the flush-epoch discard.
    pub discarded_stale: u64,
    /// Recovered slots bit-rotted after restart (bit-flip cases).
    pub poisoned: u32,
    /// Control-plane operations (pool create/destroy, policy and weight
    /// changes, VM reboots) issued before the cut.
    pub control_ops: u32,
    /// Sweep-oracle violations: recovered entries whose version differs
    /// from the guest's on-disk version. Must be zero.
    pub stale_entries: u64,
    /// Stale second-chance hits observed while the guests continued
    /// running after recovery. Must be zero.
    pub stale_reads: u64,
    /// Invariant-auditor findings (after recovery + after the
    /// continuation). Must be zero.
    pub audit_findings: u64,
}

/// Outcome of one threaded-plane crash/recover/continue case.
#[derive(Clone, Debug)]
pub struct ThreadedChaosCase {
    /// Case index within the threaded sweep.
    pub id: u32,
    /// Crash flavor applied (independently) to the shard segments.
    pub kind: CrashKind,
    /// The recovered snapshot was taken by the eviction hook — i.e. the
    /// crash landed between the two eviction phases.
    pub hook_cut: bool,
    /// Tick the plane was killed in (its group commit never ran).
    pub kill_tick: u64,
    /// VM whose hypercall stream the crash cut short.
    pub kill_vm: u32,
    /// Hypercall batches the killed VM got through before dying (the
    /// cut can land mid-`put_many`).
    pub budget: u64,
    /// Journal records replayed across all shard segments.
    pub records_replayed: u64,
    /// Records discarded at the first global generation gap.
    pub gap_discarded: u64,
    /// Entries resident after recovery.
    pub recovered_entries: u64,
    /// Entries dropped by the per-VM flush-epoch discard.
    pub discarded_stale: u64,
    /// Replayed puts dropped because the ledger had no room.
    pub dropped_no_room: u64,
    /// Per-shard replay diagnostics: `(records, torn_tail, corrupt)`.
    pub segments: Vec<(u64, bool, bool)>,
    /// Stale-entry-oracle violations (after recovery, after the
    /// continuation, and after the second interleaved crash). Must be 0.
    pub stale_entries: u64,
    /// Stale hits the guests observed while continuing. Must be zero.
    pub stale_reads: u64,
    /// Invariant-auditor findings across all checkpoints. Must be zero.
    pub audit_findings: u64,
    /// Hypercall operations the guests issued over the whole case.
    pub total_ops: u64,
}

/// Outcome of one remote-tier crash/recover/continue case.
#[derive(Clone, Debug)]
pub struct RemoteChaosCase {
    /// Case index within the remote sweep.
    pub id: u32,
    /// Fault axis: `partition-stress`, `hedge-crash` or `breaker-open`.
    pub axis: &'static str,
    /// Crash flavor applied (independently) to the shard segments.
    pub kind: CrashKind,
    /// Tick the plane was killed in (its group commit never ran).
    pub kill_tick: u64,
    /// VM whose hypercall stream the crash cut short.
    pub kill_vm: u32,
    /// Hypercall batches the killed VM got through before dying.
    pub budget: u64,
    /// Journal records replayed across all shard segments.
    pub records_replayed: u64,
    /// Entries resident after recovery.
    pub recovered_entries: u64,
    /// Remote fetches attempted before the crash (single-threaded kill
    /// phase, so seed-stable — as are the four counters below).
    pub pre_fetches: u64,
    /// Fetches the remote served before the crash.
    pub pre_served: u64,
    /// Hedged second requests launched before the crash.
    pub pre_hedges: u64,
    /// Breaker trip edges before the crash.
    pub pre_breaker_trips: u64,
    /// Fetches skipped by an open breaker before the crash.
    pub pre_breaker_skipped: u64,
    /// The rebuilt remote tier served at least one fetch during the
    /// threaded continuation (the degradation ladder climbed back up).
    pub remote_recovered: bool,
    /// A breaker tripped *during* the threaded continuation (the
    /// partition-stress axis demands it; the healthy axes forbid it).
    pub post_breaker_tripped: bool,
    /// Stale-entry-oracle violations across all checkpoints. Must be 0.
    pub stale_entries: u64,
    /// Stale hits the guests observed while continuing. Must be zero.
    pub stale_reads: u64,
    /// Invariant-auditor findings across all checkpoints. Must be zero.
    pub audit_findings: u64,
    /// Hypercall operations the guests issued over the whole case.
    pub total_ops: u64,
}

/// A full chaos sweep.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Master seed of the sweep.
    pub seed: u64,
    /// Per-case outcomes, in case order.
    pub cases: Vec<ChaosCase>,
    /// Threaded-plane (crash × concurrency) outcomes, in case order.
    pub threaded: Vec<ThreadedChaosCase>,
    /// Remote-tier (crash × fault-tolerance stack) outcomes, in order.
    pub remote: Vec<RemoteChaosCase>,
}

impl ChaosReport {
    /// Total stale-read-oracle violations across the sweep.
    pub fn total_stale(&self) -> u64 {
        self.cases
            .iter()
            .map(|c| c.stale_entries + c.stale_reads)
            .sum::<u64>()
            + self
                .threaded
                .iter()
                .map(|c| c.stale_entries + c.stale_reads)
                .sum::<u64>()
            + self
                .remote
                .iter()
                .map(|c| c.stale_entries + c.stale_reads)
                .sum::<u64>()
    }

    /// Total invariant-auditor findings across the sweep.
    pub fn total_findings(&self) -> u64 {
        self.cases.iter().map(|c| c.audit_findings).sum::<u64>()
            + self.threaded.iter().map(|c| c.audit_findings).sum::<u64>()
            + self.remote.iter().map(|c| c.audit_findings).sum::<u64>()
    }

    /// Remote cases whose rebuilt tier failed to serve after recovery.
    pub fn remote_unrecovered(&self) -> usize {
        self.remote.iter().filter(|c| !c.remote_recovered).count()
    }

    /// `true` when every case upheld the contract — zero stale bytes,
    /// zero auditor findings, and every rebuilt remote tier back in
    /// service after its recovery.
    pub fn passed(&self) -> bool {
        self.total_stale() == 0 && self.total_findings() == 0 && self.remote_unrecovered() == 0
    }

    /// Machine-readable report (schema [`SCHEMA`]). Contains no
    /// wall-clock data, so same-seed runs serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut root = Json::object();
        root.set("schema", Json::Str(SCHEMA.to_owned()));
        root.set("seed", Json::Num(self.seed as f64));
        root.set("passed", Json::Bool(self.passed()));
        let mut summary = Json::object();
        summary.set("cases", Json::Num(self.cases.len() as f64));
        summary.set("stale_total", Json::Num(self.total_stale() as f64));
        summary.set("audit_findings", Json::Num(self.total_findings() as f64));
        summary.set(
            "recovered_entries",
            Json::Num(self.cases.iter().map(|c| c.recovered_entries).sum::<u64>() as f64),
        );
        summary.set(
            "discarded_stale",
            Json::Num(self.cases.iter().map(|c| c.discarded_stale).sum::<u64>() as f64),
        );
        summary.set("threaded_cases", Json::Num(self.threaded.len() as f64));
        summary.set(
            "threaded_plane_threads",
            Json::Num(THREADED_PLANE_THREADS as f64),
        );
        summary.set(
            "threaded_torn_segments",
            Json::Num(
                self.threaded
                    .iter()
                    .flat_map(|c| &c.segments)
                    .filter(|s| s.1)
                    .count() as f64,
            ),
        );
        summary.set(
            "threaded_corrupt_segments",
            Json::Num(
                self.threaded
                    .iter()
                    .flat_map(|c| &c.segments)
                    .filter(|s| s.2)
                    .count() as f64,
            ),
        );
        summary.set("remote_cases", Json::Num(self.remote.len() as f64));
        summary.set(
            "remote_unrecovered",
            Json::Num(self.remote_unrecovered() as f64),
        );
        summary.set(
            "remote_pre_served",
            Json::Num(self.remote.iter().map(|c| c.pre_served).sum::<u64>() as f64),
        );
        summary.set(
            "remote_pre_hedges",
            Json::Num(self.remote.iter().map(|c| c.pre_hedges).sum::<u64>() as f64),
        );
        summary.set(
            "remote_pre_breaker_trips",
            Json::Num(self.remote.iter().map(|c| c.pre_breaker_trips).sum::<u64>() as f64),
        );
        root.set("summary", summary);
        root.set(
            "cases",
            Json::Arr(
                self.cases
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("id", Json::Num(f64::from(c.id)));
                        o.set("kind", Json::Str(c.kind.name().to_owned()));
                        o.set("cut", Json::Num(c.cut as f64));
                        o.set("image_len", Json::Num(c.image_len as f64));
                        o.set("records_replayed", Json::Num(c.records_replayed as f64));
                        o.set("torn_tail", Json::Bool(c.torn_tail));
                        o.set("corrupt", Json::Bool(c.corrupt));
                        o.set("recovered_entries", Json::Num(c.recovered_entries as f64));
                        o.set("discarded_stale", Json::Num(c.discarded_stale as f64));
                        o.set("poisoned", Json::Num(f64::from(c.poisoned)));
                        o.set("control_ops", Json::Num(f64::from(c.control_ops)));
                        o.set("stale_entries", Json::Num(c.stale_entries as f64));
                        o.set("stale_reads", Json::Num(c.stale_reads as f64));
                        o.set("audit_findings", Json::Num(c.audit_findings as f64));
                        o
                    })
                    .collect(),
            ),
        );
        root.set(
            "threaded",
            Json::Arr(
                self.threaded
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("id", Json::Num(f64::from(c.id)));
                        o.set("kind", Json::Str(c.kind.name().to_owned()));
                        o.set("hook_cut", Json::Bool(c.hook_cut));
                        o.set("kill_tick", Json::Num(c.kill_tick as f64));
                        o.set("kill_vm", Json::Num(f64::from(c.kill_vm)));
                        o.set("budget", Json::Num(c.budget as f64));
                        o.set("records_replayed", Json::Num(c.records_replayed as f64));
                        o.set("gap_discarded", Json::Num(c.gap_discarded as f64));
                        o.set("recovered_entries", Json::Num(c.recovered_entries as f64));
                        o.set("discarded_stale", Json::Num(c.discarded_stale as f64));
                        o.set("dropped_no_room", Json::Num(c.dropped_no_room as f64));
                        o.set(
                            "segments",
                            Json::Arr(
                                c.segments
                                    .iter()
                                    .enumerate()
                                    .map(|(shard, &(records, torn, corrupt))| {
                                        let mut s = Json::object();
                                        s.set("shard", Json::Num(shard as f64));
                                        s.set("records", Json::Num(records as f64));
                                        s.set("torn_tail", Json::Bool(torn));
                                        s.set("corrupt", Json::Bool(corrupt));
                                        s
                                    })
                                    .collect(),
                            ),
                        );
                        o.set("stale_entries", Json::Num(c.stale_entries as f64));
                        o.set("stale_reads", Json::Num(c.stale_reads as f64));
                        o.set("audit_findings", Json::Num(c.audit_findings as f64));
                        o.set("total_ops", Json::Num(c.total_ops as f64));
                        o
                    })
                    .collect(),
            ),
        );
        root.set(
            "remote",
            Json::Arr(
                self.remote
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("id", Json::Num(f64::from(c.id)));
                        o.set("axis", Json::Str(c.axis.to_owned()));
                        o.set("kind", Json::Str(c.kind.name().to_owned()));
                        o.set("kill_tick", Json::Num(c.kill_tick as f64));
                        o.set("kill_vm", Json::Num(f64::from(c.kill_vm)));
                        o.set("budget", Json::Num(c.budget as f64));
                        o.set("records_replayed", Json::Num(c.records_replayed as f64));
                        o.set("recovered_entries", Json::Num(c.recovered_entries as f64));
                        o.set("pre_fetches", Json::Num(c.pre_fetches as f64));
                        o.set("pre_served", Json::Num(c.pre_served as f64));
                        o.set("pre_hedges", Json::Num(c.pre_hedges as f64));
                        o.set("pre_breaker_trips", Json::Num(c.pre_breaker_trips as f64));
                        o.set(
                            "pre_breaker_skipped",
                            Json::Num(c.pre_breaker_skipped as f64),
                        );
                        o.set("remote_recovered", Json::Bool(c.remote_recovered));
                        o.set("post_breaker_tripped", Json::Bool(c.post_breaker_tripped));
                        o.set("stale_entries", Json::Num(c.stale_entries as f64));
                        o.set("stale_reads", Json::Num(c.stale_reads as f64));
                        o.set("audit_findings", Json::Num(c.audit_findings as f64));
                        o.set("total_ops", Json::Num(c.total_ops as f64));
                        o
                    })
                    .collect(),
            ),
        );
        let mut s = root.to_string_pretty();
        s.push('\n');
        s
    }
}

/// Runs a chaos sweep of `cases` serial-plane crash points plus
/// `threaded_cases` threaded-plane and `remote_cases` remote-tier crash
/// points under `seed`. Cases are independent and fan out across cores
/// ([`ddc_core::parallel`]).
pub fn run(seed: u64, cases: usize, threaded_cases: usize, remote_cases: usize) -> ChaosReport {
    let ids: Vec<u32> = (0..cases as u32).collect();
    let cases = ddc_core::parallel::run_cells(ids, move |id| run_case(seed, id));
    let tids: Vec<u32> = (0..threaded_cases as u32).collect();
    let threaded = ddc_core::parallel::run_cells(tids, move |id| run_threaded_case(seed, id));
    let rids: Vec<u32> = (0..remote_cases as u32).collect();
    let remote = ddc_core::parallel::run_cells(rids, move |id| run_remote_case(seed, id));
    ChaosReport {
        seed,
        cases,
        threaded,
        remote,
    }
}

/// Drives `ops` operations of the seeded workload mix against the host.
fn drive(
    host: &mut Host,
    rng: &mut SimRng,
    now: &mut SimTime,
    ops: u64,
    cells: &[(VmId, CgroupId)],
) {
    for _ in 0..ops {
        let (vm, cg) = cells[rng.range_usize(0, cells.len())];
        let file = vm_file(vm, rng.range_u64(1, 4));
        let addr = BlockAddr::new(file, rng.range_u64(0, 48));
        match rng.range_u64(0, 20) {
            0..=10 => *now = host.read(*now, vm, cg, addr).finish,
            11..=16 => *now = host.write(*now, vm, cg, addr).finish,
            17..=18 => *now = host.fsync(*now, vm, cg, file),
            _ => host.delete_file(vm, cg, file),
        }
    }
}

/// One crash/recover/continue case.
fn run_case(master_seed: u64, id: u32) -> ChaosCase {
    let mut rng =
        SimRng::new(master_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(id) + 1));
    let kind = match id % 3 {
        0 => CrashKind::Clean,
        1 => CrashKind::Torn,
        _ => CrashKind::BitFlip,
    };

    // A deliberately tight host so the op stream churns copies through
    // both stores: 1 MiB guests (16 frames), 6-frame cgroups.
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(96, 96)));
    host.enable_cache_journal();
    host.set_ssd_fallback_mode(FallbackMode::ToMem);
    let vm1 = host.boot_vm(1, 100);
    let vm2 = host.boot_vm(1, 60);
    let c1 = host.create_container(vm1, "a", 6, CachePolicy::mem(100));
    let c2 = host.create_container(vm2, "b", 6, CachePolicy::ssd(100));
    let mut now = SimTime::ZERO;
    drive(&mut host, &mut rng, &mut now, 1500, &[(vm1, c1), (vm2, c2)]);

    // Control-plane churn before the cut: the journal has to absorb pool
    // create/destroy, policy and weight changes and a full VM reboot —
    // not just data ops — and recovery must replay all of it without
    // resurrecting state that the churn already destroyed.
    let scratch = host.create_container(vm1, "scratch", 4, CachePolicy::hybrid(50));
    drive(&mut host, &mut rng, &mut now, 250, &[(vm1, scratch)]);
    host.set_container_policy(vm1, scratch, CachePolicy::mem(30));
    host.set_vm_cache_weight(vm1, 40 + rng.range_u64(0, 161));
    host.destroy_container(vm1, scratch);
    host.reboot_vm(vm2, 1, 60);
    let c2 = host.create_container(vm2, "b", 6, CachePolicy::ssd(100));
    let control_ops = 6u32;
    let cells = [(vm1, c1), (vm2, c2)];
    drive(&mut host, &mut rng, &mut now, 500, &cells);

    // Kill the caching layer at a randomized prefix of its journal.
    let image = host.cache_journal_image().expect("journaling on");
    let bounds = Journal::record_boundaries(&image);
    let cut = match kind {
        // Clean kill: any record boundary (including the very start).
        // Half the clean kills land on the complete durable image —
        // the common real crash, where everything acked survives and
        // recovery must *retain* (not just safely discard) the cache.
        CrashKind::Clean if id.is_multiple_of(2) => image.len(),
        CrashKind::Clean | CrashKind::BitFlip => bounds[rng.range_usize(0, bounds.len())],
        // Torn kill: strictly inside a record.
        CrashKind::Torn => {
            let i = rng.range_usize(0, bounds.len());
            let lo = if i == 0 { 0 } else { bounds[i - 1] };
            rng.range_usize(lo + 1, bounds[i])
        }
    };
    let mut prefix = image[..cut].to_vec();
    if kind == CrashKind::BitFlip && !prefix.is_empty() {
        let pos = rng.range_usize(0, prefix.len());
        prefix[pos] ^= 1 << rng.range_u64(0, 8);
    }
    let report = host.crash_and_recover(&prefix);

    // Bit-rot a few recovered slots (any crash kind — media rot is
    // independent of how the crash happened): the damage must be caught
    // lazily by verify-on-read, never served.
    let mut poisoned = 0;
    let entries = host.cache().entries();
    for _ in 0..rng.range_u64(0, 3) {
        if entries.is_empty() {
            break;
        }
        let (vm, pool, addr, _) = entries[rng.range_usize(0, entries.len())];
        if host.corrupt_cache_entry(vm, pool, addr) {
            poisoned += 1;
        }
    }

    // Stale-read oracle: every recovered entry against the guest's
    // authoritative on-disk version.
    let stale_entries = host
        .cache()
        .entries()
        .into_iter()
        .filter(|&(vm, _, addr, version)| host.guest(vm).disk_version(addr) != version)
        .count() as u64;
    let mut audit_findings = audit(host.cache()).len() as u64;

    // The guests keep running against the recovered cache.
    drive(&mut host, &mut rng, &mut now, 600, &cells);
    audit_findings += audit(host.cache()).len() as u64;
    let stale_reads = host.guest(vm1).counters().stale_cleancache_hits
        + host.guest(vm2).counters().stale_cleancache_hits;

    ChaosCase {
        id,
        kind,
        cut,
        image_len: image.len(),
        records_replayed: report.records_replayed,
        torn_tail: report.torn_tail,
        corrupt: report.corrupt,
        recovered_entries: report.recovered_entries,
        discarded_stale: report.discarded_stale,
        poisoned,
        control_ops,
        stale_entries,
        stale_reads,
        audit_findings,
    }
}

/// Applies one seeded mutilation to a single shard's segment image.
/// Roughly half the segments survive intact (a crash loses only what
/// some cores hadn't synced); the rest are cut at a record boundary,
/// cut mid-record (torn) or bit-flipped — independently per shard, so
/// recovery must reconcile segments that died at *different* points.
fn mutilate_segment(rng: &mut SimRng, kind: CrashKind, seg: &mut Vec<u8>) {
    let bounds = Journal::record_boundaries(seg);
    if bounds.is_empty() {
        return;
    }
    let keep_intact = rng.range_u64(0, 2) == 0;
    match kind {
        CrashKind::Clean => {
            if !keep_intact {
                seg.truncate(bounds[rng.range_usize(0, bounds.len())]);
            }
        }
        CrashKind::Torn => {
            if !keep_intact {
                let i = rng.range_usize(0, bounds.len());
                let lo = if i == 0 { 0 } else { bounds[i - 1] };
                seg.truncate(rng.range_usize(lo + 1, bounds[i]));
            }
        }
        CrashKind::BitFlip => {
            if !keep_intact {
                seg.truncate(bounds[rng.range_usize(0, bounds.len())]);
            }
            if !seg.is_empty() {
                let pos = rng.range_usize(0, seg.len());
                seg[pos] ^= 1 << rng.range_u64(0, 8);
            }
        }
    }
}

/// One threaded-plane crash/recover/continue case (see the module docs
/// for the phase structure and why the kill phase is single-threaded).
fn run_threaded_case(master_seed: u64, id: u32) -> ThreadedChaosCase {
    let mut rng = SimRng::new(
        master_seed ^ 0xDDC6_0000 ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(id) + 1),
    );
    let kind = match id % 3 {
        0 => CrashKind::Clean,
        1 => CrashKind::Torn,
        _ => CrashKind::BitFlip,
    };
    let hook_case = id % 4 == 1;

    // A deliberately tight store relative to the working set keeps the
    // two-phase eviction path (and therefore the eviction hook) hot.
    let mut cfg = StressConfig::smoke(master_seed ^ (0xDD06 + u64::from(id)));
    cfg.cache = CacheConfig::mem_and_ssd(96, 128);
    cfg.working_set = 64;
    let mut h = CrashHarness::new(&cfg);

    // Eviction-phase cut: the hook fires between the lock-free victim
    // snapshot and the locked re-validation, with no locks held — its
    // segment snapshot is what a crash at exactly that point would
    // leave behind.
    let hook_snap: Arc<Mutex<Option<Vec<Vec<u8>>>>> = Arc::new(Mutex::new(None));
    if hook_case {
        let hook_cache = h.cache().clone();
        let snap = hook_snap.clone();
        h.cache().set_eviction_hook(Some(Arc::new(move || {
            *snap.lock().expect("hook snapshot lock") = hook_cache.journal_images();
        })));
    }

    let kill_tick = rng.range_u64(8, 40);
    h.drive(0, kill_tick);
    let kill_vm = rng.range_usize(0, cfg.vms as usize);
    let budget = rng.range_u64(0, 2 + cfg.puts_per_tick + cfg.gets_per_tick);
    h.drive_killed_tick(kill_tick, kill_vm, budget);

    let mut segments = h.segment_images();
    let mut hook_cut = false;
    if hook_case {
        if let Some(snap) = hook_snap.lock().expect("hook snapshot lock").take() {
            segments = snap;
            hook_cut = true;
        }
    }
    // Half the clean kills keep every segment whole — the common real
    // crash, where everything appended survives and recovery must
    // *retain* the cache (not merely discard it safely). The rest
    // mutilate each shard independently.
    if !(kind == CrashKind::Clean && id.is_multiple_of(6)) {
        for seg in &mut segments {
            mutilate_segment(&mut rng, kind, seg);
        }
    }

    let report = h.recover(&segments);
    let mut stale_entries = h.stale_entries();
    let mut audit_findings = h.audit().len() as u64;

    // The same guests keep running on the 8-thread plane.
    h.drive_threaded(
        kill_tick + 1,
        kill_tick + 1 + THREADED_CONT_TICKS,
        THREADED_PLANE_THREADS,
    );
    stale_entries += h.stale_entries();
    audit_findings += h.audit().len() as u64;

    // Second crash: the continuation's journal is genuinely
    // thread-interleaved, so its cut points and replay counters are
    // not seed-stable — only its gates are reported, and they must be
    // zero under any interleaving. This is the last use of `rng`, so
    // the interleaving-dependent bounds cannot skew an earlier draw.
    let mut second = h.segment_images();
    for seg in &mut second {
        if !seg.is_empty() {
            let cut = rng.range_usize(0, seg.len() + 1);
            seg.truncate(cut);
        }
    }
    h.recover(&second);
    stale_entries += h.stale_entries();
    audit_findings += h.audit().len() as u64;

    ThreadedChaosCase {
        id,
        kind,
        hook_cut,
        kill_tick,
        kill_vm: kill_vm as u32,
        budget,
        records_replayed: report.records_replayed,
        gap_discarded: report.gap_discarded,
        recovered_entries: report.recovered_entries,
        discarded_stale: report.discarded_stale,
        dropped_no_room: report.dropped_no_room,
        segments: report
            .segments
            .iter()
            .map(|s| (s.records, s.torn_tail, s.corrupt))
            .collect(),
        stale_entries,
        stale_reads: h.stale_reads(),
        audit_findings,
        total_ops: h.total_ops(),
    }
}

/// One remote-tier crash/recover/continue case (see the module docs for
/// the three fault axes). The kill phase is single-threaded, so the
/// pre-crash remote counters are seed-stable; the continuation runs on
/// the 8-thread plane, so only gates and booleans from it enter the
/// report.
fn run_remote_case(master_seed: u64, id: u32) -> RemoteChaosCase {
    let mut rng = SimRng::new(
        master_seed ^ 0xDDC7_0000 ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(id) + 1),
    );
    let axis = match id % 3 {
        0 => "partition-stress",
        1 => "hedge-crash",
        _ => "breaker-open",
    };
    let kind = match (id / 3) % 3 {
        0 => CrashKind::Clean,
        1 => CrashKind::Torn,
        _ => CrashKind::BitFlip,
    };

    // Fault windows are phrased in driver tick time (ticks are 1µs
    // apart), so the kill point is drawn before the config is built.
    let kill_tick = rng.range_u64(8, 40);
    let tick_time = |tick: u64| SimTime::from_nanos(tick * 1_000);

    // The same deliberately tight store the threaded sweep uses, plus a
    // remote binding on every pool.
    let mut cfg = StressConfig::smoke(master_seed ^ (0xDDC7 + u64::from(id)));
    cfg.cache = CacheConfig::mem_and_ssd(96, 128);
    cfg.working_set = 64;
    let remote_seed = master_seed ^ 0xCD40 ^ u64::from(id);
    let mut setup = RemoteSetup::for_driver(remote_seed);
    match axis {
        // Severed link for the first third of the threaded
        // continuation: breakers trip under the stress threads and the
        // tier must climb back up the degradation ladder after the
        // window closes (half-open probe ≤ 10µs after the last trip).
        "partition-stress" => {
            setup = setup.with_faults(FaultSchedule::new(remote_seed).with_window(
                tick_time(kill_tick + 1),
                Some(tick_time(kill_tick + 1 + REMOTE_CONT_TICKS / 3)),
                FaultKind::Partition,
            ));
        }
        // Every edge lookup misses, so every fetch rides past the hedge
        // threshold (origin RTT 4µs > hedge_after 2µs): the crash lands
        // while the bindings are hedging on every cold miss.
        "hedge-crash" => setup.config.edge_hit_rate = 0.0,
        // Link down from boot to the crash: every breaker is open at
        // the kill. Recovery rebuilds fresh (closed) breakers against a
        // healed link and must serve again.
        _ => {
            setup = setup.with_faults(FaultSchedule::new(remote_seed).with_window(
                SimTime::ZERO,
                Some(tick_time(kill_tick)),
                FaultKind::Partition,
            ));
        }
    }
    cfg = cfg.with_remote(setup);

    let mut h = CrashHarness::new(&cfg);
    h.drive(0, kill_tick);
    let kill_vm = rng.range_usize(0, cfg.vms as usize);
    let budget = rng.range_u64(0, 2 + cfg.puts_per_tick + cfg.gets_per_tick);
    h.drive_killed_tick(kill_tick, kill_vm, budget);
    let pre = h.remote_totals();

    let mut segments = h.segment_images();
    for seg in &mut segments {
        mutilate_segment(&mut rng, kind, seg);
    }
    let report = h.recover(&segments);
    let mut stale_entries = h.stale_entries();
    let mut audit_findings = h.audit().len() as u64;

    // The same guests continue on the 8-thread plane; `recover` rebuilt
    // the remote tier from scratch (fresh store, fresh bindings, fresh
    // breakers), so the post counters restart from zero.
    h.drive_threaded(
        kill_tick + 1,
        kill_tick + 1 + REMOTE_CONT_TICKS,
        THREADED_PLANE_THREADS,
    );
    stale_entries += h.stale_entries();
    audit_findings += h.audit().len() as u64;
    let post = h.remote_totals();

    RemoteChaosCase {
        id,
        axis,
        kind,
        kill_tick,
        kill_vm: kill_vm as u32,
        budget,
        records_replayed: report.records_replayed,
        recovered_entries: report.recovered_entries,
        pre_fetches: pre.fetches,
        pre_served: pre.served,
        pre_hedges: pre.hedges,
        pre_breaker_trips: pre.breaker_trips,
        pre_breaker_skipped: pre.breaker_skipped,
        remote_recovered: post.served > 0,
        post_breaker_tripped: post.breaker_trips > 0,
        stale_entries,
        stale_reads: h.stale_reads(),
        audit_findings,
        total_ops: h.total_ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean_and_deterministic() {
        let a = run(DEFAULT_SEED, 6, 3, 3);
        assert_eq!(a.cases.len(), 6);
        assert_eq!(a.threaded.len(), 3);
        assert_eq!(a.remote.len(), 3);
        assert!(
            a.passed(),
            "stale {} findings {} unrecovered {}",
            a.total_stale(),
            a.total_findings(),
            a.remote_unrecovered()
        );
        // Every crash flavor appears and at least one case actually
        // lost/kept something interesting.
        for kind in [CrashKind::Clean, CrashKind::Torn, CrashKind::BitFlip] {
            assert!(a.cases.iter().any(|c| c.kind == kind));
        }
        assert!(a.cases.iter().any(|c| c.records_replayed > 0));
        let b = run(DEFAULT_SEED, 6, 3, 3);
        assert_eq!(a.to_json(), b.to_json(), "same-seed sweeps are identical");
    }

    #[test]
    fn torn_cases_report_torn_tails() {
        let r = run(7, 3, 0, 0);
        let torn = r.cases.iter().find(|c| c.kind == CrashKind::Torn).unwrap();
        // A mid-record cut must surface as a torn tail (unless the cut
        // landed at offset where nothing preceded it).
        assert!(torn.torn_tail || torn.cut == 0);
        assert!(r.passed());
    }

    #[test]
    fn threaded_sweep_kills_recovers_and_stays_clean() {
        let a = run(DEFAULT_SEED, 0, 8, 0);
        assert_eq!(a.threaded.len(), 8);
        assert!(
            a.passed(),
            "stale {} findings {}",
            a.total_stale(),
            a.total_findings()
        );
        for kind in [CrashKind::Clean, CrashKind::Torn, CrashKind::BitFlip] {
            assert!(a.threaded.iter().any(|c| c.kind == kind));
        }
        // The sweep must actually exercise the interesting machinery:
        // replayed records, mutilated tails, and the eviction-hook cut.
        assert!(a.threaded.iter().any(|c| c.records_replayed > 0));
        assert!(a
            .threaded
            .iter()
            .any(|c| c.segments.iter().any(|&(_, torn, corrupt)| torn || corrupt)));
        assert!(
            a.threaded.iter().any(|c| c.hook_cut),
            "no case recovered from an eviction-phase snapshot"
        );
        assert!(a.threaded.iter().any(|c| c.recovered_entries > 0));
        let b = run(DEFAULT_SEED, 0, 8, 0);
        assert_eq!(a.to_json(), b.to_json(), "same-seed sweeps are identical");
    }

    #[test]
    fn remote_sweep_exercises_every_axis_and_recovers() {
        let a = run(DEFAULT_SEED, 0, 0, 6);
        assert_eq!(a.remote.len(), 6);
        assert!(
            a.passed(),
            "stale {} findings {} unrecovered {}",
            a.total_stale(),
            a.total_findings(),
            a.remote_unrecovered()
        );
        for c in &a.remote {
            // Every axis must climb back up the degradation ladder.
            assert!(
                c.remote_recovered,
                "case {} ({}) never served",
                c.id, c.axis
            );
            match c.axis {
                "partition-stress" => {
                    // Healthy before the crash, severed during the first
                    // third of the 8-thread continuation.
                    assert!(
                        c.pre_served > 0,
                        "case {}: healthy phase never served",
                        c.id
                    );
                    assert!(
                        c.post_breaker_tripped,
                        "case {}: partition under threads never tripped a breaker",
                        c.id
                    );
                }
                "hedge-crash" => {
                    // Edge never hits, so the kill phase hedged heavily
                    // and still served within the deadline.
                    assert!(c.pre_hedges > 0, "case {}: no fetch ever hedged", c.id);
                    assert!(
                        c.pre_served > 0,
                        "case {}: hedged fetches never served",
                        c.id
                    );
                }
                "breaker-open" => {
                    // Link down from boot: the breaker was open at the
                    // kill and fetches were being short-circuited.
                    assert!(
                        c.pre_breaker_trips > 0,
                        "case {}: breaker never tripped",
                        c.id
                    );
                    assert!(
                        c.pre_breaker_skipped > 0,
                        "case {}: open breaker never short-circuited",
                        c.id
                    );
                    // The window ends exactly at the kill tick, so a
                    // fetch issued just before it may retry past the
                    // heal and serve — failures must still dominate.
                    assert!(
                        c.pre_served < c.pre_fetches / 2,
                        "case {}: partitioned link mostly served ({}/{})",
                        c.id,
                        c.pre_served,
                        c.pre_fetches
                    );
                    assert!(
                        !c.post_breaker_tripped,
                        "case {}: healed link tripped",
                        c.id
                    );
                }
                other => panic!("unknown axis {other}"),
            }
        }
        let b = run(DEFAULT_SEED, 0, 0, 6);
        assert_eq!(a.to_json(), b.to_json(), "same-seed sweeps are identical");
    }
}
