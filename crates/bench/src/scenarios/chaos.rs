//! `repro chaos` — the seeded crash-and-recovery chaos harness.
//!
//! Each case boots a two-VM host with journaling on, drives a seeded
//! mixed read/write/fsync/delete stream, then kills the hypervisor
//! caching layer at a randomized journal prefix:
//!
//! * **clean** — the journal survives exactly to a record boundary,
//! * **torn** — the crash lands mid-append, leaving a partial record,
//! * **bit-flip** — one bit of the surviving image is silently
//!   corrupted, and 0–2 recovered slots are additionally bit-rotted to
//!   exercise verify-on-read.
//!
//! After warm restart the harness runs the stale-read oracle (every
//! recovered entry's version must match the guest's on-disk version),
//! the structural invariant auditor, and then continues the workload —
//! counting stale second-chance hits, which must stay zero. Recovery
//! may lose entries; it must never resurrect a stale one (the
//! clean-cache contract, paper §3). The whole sweep is seeded and
//! deterministic: identical seeds reproduce the report byte-for-byte,
//! and independent cases fan out across cores.

use ddc_core::hypercache::audit;
use ddc_core::prelude::*;
use ddc_core::storage::Journal;
use ddc_json::Json;

/// JSON schema tag of the chaos report.
pub const SCHEMA: &str = "ddc-chaos-v1";

/// Randomized crash points in a full run.
pub const CASES_FULL: usize = 60;

/// Crash points in a `--smoke` run (CI budget).
pub const CASES_SMOKE: usize = 8;

/// Default master seed of the sweep.
pub const DEFAULT_SEED: u64 = 0xC805;

/// How a case kills the hypervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// Journal cut exactly at a record boundary.
    Clean,
    /// Journal cut mid-record (a torn final append).
    Torn,
    /// One bit of the surviving image flipped, plus bit-rotted slots.
    BitFlip,
}

impl CrashKind {
    /// Stable lowercase name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CrashKind::Clean => "clean",
            CrashKind::Torn => "torn",
            CrashKind::BitFlip => "bitflip",
        }
    }
}

/// Outcome of one crash/recover/continue case.
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// Case index within the sweep.
    pub id: u32,
    /// Crash flavor.
    pub kind: CrashKind,
    /// Bytes of journal that survived the crash.
    pub cut: usize,
    /// Bytes of journal written before the crash.
    pub image_len: usize,
    /// Journal records successfully replayed.
    pub records_replayed: u64,
    /// Replay stopped at a torn final record.
    pub torn_tail: bool,
    /// Replay stopped at a corrupt record.
    pub corrupt: bool,
    /// Entries resident after recovery.
    pub recovered_entries: u64,
    /// Entries dropped by the flush-epoch discard.
    pub discarded_stale: u64,
    /// Recovered slots bit-rotted after restart (bit-flip cases).
    pub poisoned: u32,
    /// Control-plane operations (pool create/destroy, policy and weight
    /// changes, VM reboots) issued before the cut.
    pub control_ops: u32,
    /// Sweep-oracle violations: recovered entries whose version differs
    /// from the guest's on-disk version. Must be zero.
    pub stale_entries: u64,
    /// Stale second-chance hits observed while the guests continued
    /// running after recovery. Must be zero.
    pub stale_reads: u64,
    /// Invariant-auditor findings (after recovery + after the
    /// continuation). Must be zero.
    pub audit_findings: u64,
}

/// A full chaos sweep.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Master seed of the sweep.
    pub seed: u64,
    /// Per-case outcomes, in case order.
    pub cases: Vec<ChaosCase>,
}

impl ChaosReport {
    /// Total stale-read-oracle violations across the sweep.
    pub fn total_stale(&self) -> u64 {
        self.cases
            .iter()
            .map(|c| c.stale_entries + c.stale_reads)
            .sum()
    }

    /// Total invariant-auditor findings across the sweep.
    pub fn total_findings(&self) -> u64 {
        self.cases.iter().map(|c| c.audit_findings).sum()
    }

    /// `true` when every case upheld the contract.
    pub fn passed(&self) -> bool {
        self.total_stale() == 0 && self.total_findings() == 0
    }

    /// Machine-readable report (schema [`SCHEMA`]). Contains no
    /// wall-clock data, so same-seed runs serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut root = Json::object();
        root.set("schema", Json::Str(SCHEMA.to_owned()));
        root.set("seed", Json::Num(self.seed as f64));
        root.set("passed", Json::Bool(self.passed()));
        let mut summary = Json::object();
        summary.set("cases", Json::Num(self.cases.len() as f64));
        summary.set("stale_total", Json::Num(self.total_stale() as f64));
        summary.set("audit_findings", Json::Num(self.total_findings() as f64));
        summary.set(
            "recovered_entries",
            Json::Num(self.cases.iter().map(|c| c.recovered_entries).sum::<u64>() as f64),
        );
        summary.set(
            "discarded_stale",
            Json::Num(self.cases.iter().map(|c| c.discarded_stale).sum::<u64>() as f64),
        );
        root.set("summary", summary);
        root.set(
            "cases",
            Json::Arr(
                self.cases
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("id", Json::Num(f64::from(c.id)));
                        o.set("kind", Json::Str(c.kind.name().to_owned()));
                        o.set("cut", Json::Num(c.cut as f64));
                        o.set("image_len", Json::Num(c.image_len as f64));
                        o.set("records_replayed", Json::Num(c.records_replayed as f64));
                        o.set("torn_tail", Json::Bool(c.torn_tail));
                        o.set("corrupt", Json::Bool(c.corrupt));
                        o.set("recovered_entries", Json::Num(c.recovered_entries as f64));
                        o.set("discarded_stale", Json::Num(c.discarded_stale as f64));
                        o.set("poisoned", Json::Num(f64::from(c.poisoned)));
                        o.set("control_ops", Json::Num(f64::from(c.control_ops)));
                        o.set("stale_entries", Json::Num(c.stale_entries as f64));
                        o.set("stale_reads", Json::Num(c.stale_reads as f64));
                        o.set("audit_findings", Json::Num(c.audit_findings as f64));
                        o
                    })
                    .collect(),
            ),
        );
        let mut s = root.to_string_pretty();
        s.push('\n');
        s
    }
}

/// Runs a chaos sweep of `cases` crash points under `seed`. Cases are
/// independent and fan out across cores ([`ddc_core::parallel`]).
pub fn run(seed: u64, cases: usize) -> ChaosReport {
    let ids: Vec<u32> = (0..cases as u32).collect();
    let cases = ddc_core::parallel::run_cells(ids, move |id| run_case(seed, id));
    ChaosReport { seed, cases }
}

/// Drives `ops` operations of the seeded workload mix against the host.
fn drive(
    host: &mut Host,
    rng: &mut SimRng,
    now: &mut SimTime,
    ops: u64,
    cells: &[(VmId, CgroupId)],
) {
    for _ in 0..ops {
        let (vm, cg) = cells[rng.range_usize(0, cells.len())];
        let file = vm_file(vm, rng.range_u64(1, 4));
        let addr = BlockAddr::new(file, rng.range_u64(0, 48));
        match rng.range_u64(0, 20) {
            0..=10 => *now = host.read(*now, vm, cg, addr).finish,
            11..=16 => *now = host.write(*now, vm, cg, addr).finish,
            17..=18 => *now = host.fsync(*now, vm, cg, file),
            _ => host.delete_file(vm, cg, file),
        }
    }
}

/// One crash/recover/continue case.
fn run_case(master_seed: u64, id: u32) -> ChaosCase {
    let mut rng =
        SimRng::new(master_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(id) + 1));
    let kind = match id % 3 {
        0 => CrashKind::Clean,
        1 => CrashKind::Torn,
        _ => CrashKind::BitFlip,
    };

    // A deliberately tight host so the op stream churns copies through
    // both stores: 1 MiB guests (16 frames), 6-frame cgroups.
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_and_ssd(96, 96)));
    host.enable_cache_journal();
    host.set_ssd_fallback_mode(FallbackMode::ToMem);
    let vm1 = host.boot_vm(1, 100);
    let vm2 = host.boot_vm(1, 60);
    let c1 = host.create_container(vm1, "a", 6, CachePolicy::mem(100));
    let c2 = host.create_container(vm2, "b", 6, CachePolicy::ssd(100));
    let mut now = SimTime::ZERO;
    drive(&mut host, &mut rng, &mut now, 1500, &[(vm1, c1), (vm2, c2)]);

    // Control-plane churn before the cut: the journal has to absorb pool
    // create/destroy, policy and weight changes and a full VM reboot —
    // not just data ops — and recovery must replay all of it without
    // resurrecting state that the churn already destroyed.
    let scratch = host.create_container(vm1, "scratch", 4, CachePolicy::hybrid(50));
    drive(&mut host, &mut rng, &mut now, 250, &[(vm1, scratch)]);
    host.set_container_policy(vm1, scratch, CachePolicy::mem(30));
    host.set_vm_cache_weight(vm1, 40 + rng.range_u64(0, 161));
    host.destroy_container(vm1, scratch);
    host.reboot_vm(vm2, 1, 60);
    let c2 = host.create_container(vm2, "b", 6, CachePolicy::ssd(100));
    let control_ops = 6u32;
    let cells = [(vm1, c1), (vm2, c2)];
    drive(&mut host, &mut rng, &mut now, 500, &cells);

    // Kill the caching layer at a randomized prefix of its journal.
    let image = host.cache_journal_image().expect("journaling on");
    let bounds = Journal::record_boundaries(&image);
    let cut = match kind {
        // Clean kill: any record boundary (including the very start).
        // Half the clean kills land on the complete durable image —
        // the common real crash, where everything acked survives and
        // recovery must *retain* (not just safely discard) the cache.
        CrashKind::Clean if id.is_multiple_of(2) => image.len(),
        CrashKind::Clean | CrashKind::BitFlip => bounds[rng.range_usize(0, bounds.len())],
        // Torn kill: strictly inside a record.
        CrashKind::Torn => {
            let i = rng.range_usize(0, bounds.len());
            let lo = if i == 0 { 0 } else { bounds[i - 1] };
            rng.range_usize(lo + 1, bounds[i])
        }
    };
    let mut prefix = image[..cut].to_vec();
    if kind == CrashKind::BitFlip && !prefix.is_empty() {
        let pos = rng.range_usize(0, prefix.len());
        prefix[pos] ^= 1 << rng.range_u64(0, 8);
    }
    let report = host.crash_and_recover(&prefix);

    // Bit-rot a few recovered slots (any crash kind — media rot is
    // independent of how the crash happened): the damage must be caught
    // lazily by verify-on-read, never served.
    let mut poisoned = 0;
    let entries = host.cache().entries();
    for _ in 0..rng.range_u64(0, 3) {
        if entries.is_empty() {
            break;
        }
        let (vm, pool, addr, _) = entries[rng.range_usize(0, entries.len())];
        if host.corrupt_cache_entry(vm, pool, addr) {
            poisoned += 1;
        }
    }

    // Stale-read oracle: every recovered entry against the guest's
    // authoritative on-disk version.
    let stale_entries = host
        .cache()
        .entries()
        .into_iter()
        .filter(|&(vm, _, addr, version)| host.guest(vm).disk_version(addr) != version)
        .count() as u64;
    let mut audit_findings = audit(host.cache()).len() as u64;

    // The guests keep running against the recovered cache.
    drive(&mut host, &mut rng, &mut now, 600, &cells);
    audit_findings += audit(host.cache()).len() as u64;
    let stale_reads = host.guest(vm1).counters().stale_cleancache_hits
        + host.guest(vm2).counters().stale_cleancache_hits;

    ChaosCase {
        id,
        kind,
        cut,
        image_len: image.len(),
        records_replayed: report.records_replayed,
        torn_tail: report.torn_tail,
        corrupt: report.corrupt,
        recovered_entries: report.recovered_entries,
        discarded_stale: report.discarded_stale,
        poisoned,
        control_ops,
        stale_entries,
        stale_reads,
        audit_findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean_and_deterministic() {
        let a = run(DEFAULT_SEED, 6);
        assert_eq!(a.cases.len(), 6);
        assert!(
            a.passed(),
            "stale {} findings {}",
            a.total_stale(),
            a.total_findings()
        );
        // Every crash flavor appears and at least one case actually
        // lost/kept something interesting.
        for kind in [CrashKind::Clean, CrashKind::Torn, CrashKind::BitFlip] {
            assert!(a.cases.iter().any(|c| c.kind == kind));
        }
        assert!(a.cases.iter().any(|c| c.records_replayed > 0));
        let b = run(DEFAULT_SEED, 6);
        assert_eq!(a.to_json(), b.to_json(), "same-seed sweeps are identical");
    }

    #[test]
    fn torn_cases_report_torn_tails() {
        let r = run(7, 3);
        let torn = r.cases.iter().find(|c| c.kind == CrashKind::Torn).unwrap();
        // A mid-record cut must surface as a torn tail (unless the cut
        // landed at offset where nothing preceded it).
        assert!(torn.torn_tail || torn.cut == 0);
        assert!(r.passed());
    }
}
