//! `repro wear` — the SSD endurance plane scenario matrix (DESIGN.md §17).
//!
//! Three deterministic tenant mixes exercise the selective-admission
//! plane that gates the mem→SSD spill path:
//!
//! * **write-heavy** — tenants re-dirty a hot set much larger than the
//!   memory entitlement, so the same blocks spill over and over. The
//!   ghost filter absorbs the re-put storm (a resident block's re-put
//!   is rejected with the old copy left in place), charging the flash
//!   roughly one write per *consumed* block instead of one per put.
//! * **scan-polluted** — a one-touch sequential scan rides alongside a
//!   modest hot set. Admit-all lets the scan roll the SSD FIFO and
//!   evict the hot set; the filter never admits a block on its first
//!   sighting, so the scan earns zero SSD writes.
//! * **phase-change** — the hot set jumps to a disjoint range mid-run
//!   and a TTL sweep demotes the abandoned phase-one residue instead of
//!   letting it squat on the SSD until capacity eviction finds it.
//!
//! Every mix runs twice — admit-all ([`AdmissionConfig::off`]) and
//! filtered (ghost window, plus TTL on the phase-change mix) — and each
//! variant runs on the serial engine twice (same-seed rerun) and on the
//! 8-shard engine. All three reports must be byte-identical: admission
//! decisions are per-pool functions of the spill-attempt sequence, so
//! the determinism contract extends to the endurance plane unchanged.
//!
//! Gates: on the write-heavy and scan-polluted mixes the filtered
//! variant must cut SSD writes by at least [`MIN_REDUCTION_PCT`] at an
//! equal-or-better hit count; the phase-change mix must show the TTL
//! sweep actually demoting; no variant may raise SSD writes; the
//! runtime auditor must stay silent everywhere. The committed
//! `BENCH_wear.json` baseline adds a write-amplification regression
//! gate (`--check`, [`WEAR_TOLERANCE`]) alongside the perf plane's
//! 1.3× throughput gate — wear counters are deterministic, so the
//! tolerance absorbs deliberate workload retuning, not noise.

use ddc_core::cleancache::SecondChanceCache;
use ddc_core::concurrent::ShardedCache;
use ddc_core::metrics::snapshot_json;
use ddc_core::prelude::*;
use ddc_core::storage::WearCounters;
use ddc_json::Json;

/// JSON schema tag of the wear report.
pub const SCHEMA: &str = "ddc-wear-v1";

/// JSON schema tag of the committed wear baseline.
pub const BASELINE_SCHEMA: &str = "ddc-wear-baseline-v1";

/// Default master seed of the workload generator.
pub const DEFAULT_SEED: u64 = 0x5EAD;

/// Ghost-filter window (spill attempts per pool) of the filtered runs.
pub const GHOST_WINDOW: u32 = 8192;

/// TTL (per-pool insert distance) of the phase-change mix's filtered
/// run; the other mixes run with demotion off. Low enough that the
/// abandoned phase-one residue ages out within the smoke run's
/// post-change half (admitted inserts arrive at roughly a dozen per
/// pool-tick, so this is ~85 ticks of idle residency).
pub const PHASE_TTL: u64 = 1024;

/// Shard count of the sharded-engine identity runs.
pub const SHARDS: usize = 8;

/// Minimum SSD-write reduction (percent) the filtered variant must
/// deliver on the gated mixes.
pub const MIN_REDUCTION_PCT: f64 = 40.0;

/// Baseline regression tolerance: the filtered variant's SSD writes and
/// write amplification may exceed the committed baseline by at most
/// this factor.
pub const WEAR_TOLERANCE: f64 = 1.10;

/// Memory-tier capacity (pages) of every wear run.
pub const MEM_PAGES: u64 = 256;

/// SSD-tier capacity (pages) of every wear run.
pub const SSD_PAGES: u64 = 2048;

/// One tenant mix of the matrix.
#[derive(Clone, Copy, Debug)]
pub struct MixSpec {
    /// Stable mix name (baseline rows are matched by it).
    pub name: &'static str,
    /// Simulated ticks.
    pub ticks: u64,
    /// Tenants (one hybrid pool each, equal weight).
    pub vms: u32,
    /// Hot-set size per tenant, in pages.
    pub hot_pages: u64,
    /// Hot-set puts per tenant per tick.
    pub hot_puts: u64,
    /// One-touch sequential scan puts per tenant per tick.
    pub scan_puts: u64,
    /// Hot-set gets per tenant per tick.
    pub gets: u64,
    /// Whether the hot set jumps to a disjoint range at `ticks / 2`.
    pub phase_change: bool,
    /// TTL of the filtered variant (0 = demotion off).
    pub ttl: u64,
    /// Whether the ≥[`MIN_REDUCTION_PCT`] / equal-or-better-hits gate
    /// applies (the phase-change mix is reported, not reduction-gated).
    pub gated: bool,
}

/// The scenario matrix. `--smoke` shortens the runs; the mixes keep
/// their shape (entitlement pressure and scan ratios are per-tick).
pub fn mixes(smoke: bool) -> Vec<MixSpec> {
    let t = if smoke { 250 } else { 1000 };
    vec![
        MixSpec {
            name: "write_heavy",
            ticks: t,
            vms: 2,
            hot_pages: 640,
            hot_puts: 24,
            scan_puts: 16,
            gets: 8,
            phase_change: false,
            ttl: 0,
            gated: true,
        },
        MixSpec {
            name: "scan_polluted",
            ticks: t,
            vms: 2,
            hot_pages: 384,
            hot_puts: 8,
            scan_puts: 40,
            gets: 16,
            phase_change: false,
            ttl: 0,
            gated: true,
        },
        MixSpec {
            name: "phase_change",
            ticks: t,
            vms: 2,
            hot_pages: 448,
            hot_puts: 16,
            scan_puts: 8,
            gets: 12,
            phase_change: true,
            ttl: PHASE_TTL,
            gated: false,
        },
    ]
}

/// Either cache engine behind one seam, so the generator drives both
/// with the byte-identical op sequence.
enum WearEngine {
    Serial(Box<DoubleDeckerCache>),
    Sharded(Box<ShardedCache>),
}

impl WearEngine {
    fn build(serial: bool, cfg: CacheConfig) -> WearEngine {
        if serial {
            WearEngine::Serial(Box::new(DoubleDeckerCache::new(cfg)))
        } else {
            WearEngine::Sharded(Box::new(ShardedCache::new(cfg, SHARDS)))
        }
    }

    fn add_vm(&mut self, vm: VmId, weight: u64) {
        match self {
            WearEngine::Serial(c) => c.add_vm(vm, weight),
            WearEngine::Sharded(c) => c.add_vm(vm, weight),
        }
    }

    fn cache(&mut self) -> &mut dyn SecondChanceCache {
        match self {
            WearEngine::Serial(c) => c.as_mut(),
            WearEngine::Sharded(c) => c.as_mut(),
        }
    }

    fn ttl_sweep(&mut self) -> u64 {
        match self {
            WearEngine::Serial(c) => c.ttl_sweep(),
            WearEngine::Sharded(c) => c.ttl_sweep(),
        }
    }

    fn wear_totals(&self) -> WearCounters {
        match self {
            WearEngine::Serial(c) => c.wear_totals(),
            WearEngine::Sharded(c) => c.wear_totals(),
        }
    }

    fn vm_wear(&self, vm: VmId) -> WearCounters {
        match self {
            WearEngine::Serial(c) => c.vm_wear(vm),
            WearEngine::Sharded(c) => c.vm_wear(vm),
        }
    }

    fn audit_findings(&self) -> u64 {
        match self {
            WearEngine::Serial(c) => ddc_core::hypercache::audit(c).len() as u64,
            WearEngine::Sharded(c) => ddc_core::concurrent::audit(c).len() as u64,
        }
    }
}

/// One engine pass over one (mix, variant) cell.
struct EngineRun {
    /// Canonical report — engine-agnostic on purpose, so serial and
    /// sharded passes can be compared byte for byte.
    json: String,
    wear: WearCounters,
    hits: u64,
    gets: u64,
    audit_findings: u64,
}

fn block_addr(file: u64, block: u64) -> BlockAddr {
    BlockAddr::new(FileId(file), block)
}

/// Drives one engine through one mix under one admission config. The
/// op stream is a pure function of `(mix, seed)` — identical across
/// engines and variants, so hit counts compare apples to apples.
fn run_engine(mix: &MixSpec, admission: AdmissionConfig, serial: bool, seed: u64) -> EngineRun {
    let cfg = CacheConfig::mem_and_ssd(MEM_PAGES, SSD_PAGES).with_admission(admission);
    let mut eng = WearEngine::build(serial, cfg);
    let mut pools: Vec<(VmId, PoolId)> = Vec::new();
    let mut rngs: Vec<SimRng> = Vec::new();
    let mut scan_cursor: Vec<u64> = Vec::new();
    let mut master = SimRng::new(seed);
    for v in 1..=mix.vms {
        let vm = VmId(v);
        eng.add_vm(vm, 100);
        let pool = eng.cache().create_pool(vm, CachePolicy::hybrid(100));
        pools.push((vm, pool));
        rngs.push(master.fork(u64::from(v)));
        scan_cursor.push(0);
    }

    let (mut hits, mut gets) = (0u64, 0u64);
    for tick in 0..mix.ticks {
        let now = SimTime::from_nanos(tick + 1);
        // Hit accounting starts after a warmup quarter: the ghost
        // filter charges every block one probation pass on its very
        // first spill, a cold-start transient the steady-state
        // hit-ratio gate is not about (the wear counters still cover
        // the whole run, warmup included).
        let measured = tick >= mix.ticks / 4;
        let hot_base = if mix.phase_change && tick >= mix.ticks / 2 {
            mix.hot_pages
        } else {
            0
        };
        for (i, &(vm, pool)) in pools.iter().enumerate() {
            let hot_file = u64::from(vm.0) * 10 + 1;
            let scan_file = u64::from(vm.0) * 10 + 2;
            for _ in 0..mix.hot_puts {
                let b = hot_base + rngs[i].next_below(mix.hot_pages);
                eng.cache()
                    .put(now, vm, pool, block_addr(hot_file, b), PageVersion(1));
            }
            for _ in 0..mix.scan_puts {
                let b = scan_cursor[i];
                scan_cursor[i] += 1;
                eng.cache()
                    .put(now, vm, pool, block_addr(scan_file, b), PageVersion(1));
            }
            for _ in 0..mix.gets {
                let b = hot_base + rngs[i].next_below(mix.hot_pages);
                let outcome = eng.cache().get(now, vm, pool, block_addr(hot_file, b));
                if measured {
                    gets += 1;
                    if let GetOutcome::Hit { .. } = outcome {
                        hits += 1;
                    }
                }
            }
        }
        if admission.ssd_ttl > 0 {
            eng.ttl_sweep();
        }
    }

    let audit_findings = eng.audit_findings();
    let wear = eng.wear_totals();
    let mut root = Json::object();
    root.set("schema", SCHEMA);
    root.set("mix", mix.name);
    root.set(
        "variant",
        if admission.filters_spills() {
            "filtered"
        } else {
            "admit_all"
        },
    );
    root.set("wear", snapshot_json(&wear));
    let mut per_vm = Vec::new();
    for &(vm, pool) in &pools {
        let mut row = Json::object();
        row.set("vm", u64::from(vm.0));
        row.set("wear", snapshot_json(&eng.vm_wear(vm)));
        if let Some(s) = eng.cache().pool_stats(vm, pool) {
            row.set("mem_pages", s.mem_pages);
            row.set("ssd_pages", s.ssd_pages);
            row.set("puts", s.puts);
            row.set("gets", s.gets);
            row.set("hits", s.hits);
            row.set("ssd_writes", s.ssd_writes);
        }
        per_vm.push(row);
    }
    root.set("tenants", Json::Arr(per_vm));
    root.set("hits", hits);
    root.set("gets", gets);
    root.set("audit_findings", audit_findings);

    EngineRun {
        json: root.to_string_pretty(),
        wear,
        hits,
        gets,
        audit_findings,
    }
}

/// One admission variant of a mix, with its identity verdicts.
#[derive(Clone, Debug)]
pub struct VariantResult {
    /// `"admit_all"` or `"filtered"`.
    pub variant: &'static str,
    /// Device wear totals of the (serial) run.
    pub wear: WearCounters,
    /// Hot-set get hits.
    pub hits: u64,
    /// Hot-set gets issued.
    pub gets: u64,
    /// Serial and 8-shard reports were byte-identical.
    pub identical: bool,
    /// A same-seed serial rerun reproduced the report byte-for-byte.
    pub rerun_identical: bool,
    /// Auditor findings summed over all three passes. Gate: 0.
    pub audit_findings: u64,
    /// Canonical report JSON (engine-agnostic).
    pub json: String,
}

fn run_variant(mix: &MixSpec, admission: AdmissionConfig, seed: u64) -> VariantResult {
    let a = run_engine(mix, admission, true, seed);
    let rerun = run_engine(mix, admission, true, seed);
    let sharded = run_engine(mix, admission, false, seed);
    VariantResult {
        variant: if admission.filters_spills() {
            "filtered"
        } else {
            "admit_all"
        },
        wear: a.wear,
        hits: a.hits,
        gets: a.gets,
        identical: a.json == sharded.json,
        rerun_identical: a.json == rerun.json,
        audit_findings: a.audit_findings + rerun.audit_findings + sharded.audit_findings,
        json: a.json,
    }
}

/// Both variants of one mix plus the per-mix gate verdicts.
#[derive(Clone, Debug)]
pub struct MixResult {
    /// The mix that ran.
    pub spec: MixSpec,
    /// Admit-everything reference.
    pub admit_all: VariantResult,
    /// Ghost-filtered (and possibly TTL-demoting) variant.
    pub filtered: VariantResult,
    /// SSD-write reduction of filtered over admit-all, in percent.
    pub reduction_pct: f64,
    /// Human-readable gate failures; empty means the mix passed.
    pub failures: Vec<String>,
}

impl MixResult {
    /// Whether every gate of this mix held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn judge(spec: MixSpec, admit_all: VariantResult, filtered: VariantResult) -> MixResult {
    let base_writes = admit_all.wear.ssd_pages_written;
    let filt_writes = filtered.wear.ssd_pages_written;
    let reduction_pct = if base_writes == 0 {
        0.0
    } else {
        (base_writes - filt_writes.min(base_writes)) as f64 * 100.0 / base_writes as f64
    };
    let mut failures = Vec::new();
    for v in [&admit_all, &filtered] {
        if !v.identical {
            failures.push(format!("{}: serial vs sharded reports differ", v.variant));
        }
        if !v.rerun_identical {
            failures.push(format!("{}: same-seed rerun differs", v.variant));
        }
        if v.audit_findings != 0 {
            failures.push(format!(
                "{}: {} auditor findings",
                v.variant, v.audit_findings
            ));
        }
    }
    let w = &filtered.wear;
    if w.spill_admits + w.spill_rejects != w.spill_attempts {
        failures.push("filtered: ghost decisions do not sum to attempts".to_owned());
    }
    if filt_writes > base_writes {
        failures.push("filtered variant increased SSD writes".to_owned());
    }
    if spec.gated {
        if reduction_pct < MIN_REDUCTION_PCT {
            failures.push(format!(
                "SSD-write reduction {reduction_pct:.1}% < {MIN_REDUCTION_PCT:.0}% gate"
            ));
        }
        if filtered.hits < admit_all.hits {
            failures.push(format!(
                "hit count regressed: filtered {} < admit-all {}",
                filtered.hits, admit_all.hits
            ));
        }
    }
    if spec.ttl > 0 && w.ttl_demotions == 0 {
        failures.push("TTL sweep never demoted anything".to_owned());
    }
    MixResult {
        spec,
        admit_all,
        filtered,
        reduction_pct,
        failures,
    }
}

/// Runs the full matrix. Cells (mix × variant) fan out across the
/// experiment worker pool; results are deterministic regardless of
/// `DDC_THREADS`.
pub fn run_matrix(smoke: bool, seed: u64) -> Vec<MixResult> {
    let specs = mixes(smoke);
    let mut cells: Vec<(MixSpec, bool)> = Vec::new();
    for &spec in &specs {
        cells.push((spec, false));
        cells.push((spec, true));
    }
    let runs = ddc_core::parallel::run_cells(cells, move |(spec, filtered)| {
        let admission = if filtered {
            AdmissionConfig {
                ghost_window: GHOST_WINDOW,
                ssd_ttl: spec.ttl,
            }
        } else {
            AdmissionConfig::off()
        };
        run_variant(&spec, admission, seed)
    });
    specs
        .into_iter()
        .zip(runs.chunks_exact(2).map(<[VariantResult]>::to_vec))
        .map(|(spec, pair)| judge(spec, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// Serializes the full report (per-mix variant reports + verdicts).
pub fn to_json(results: &[MixResult], smoke: bool) -> String {
    let mut root = Json::object();
    root.set("schema", SCHEMA);
    root.set("smoke", smoke);
    let mut rows = Vec::new();
    for r in results {
        let mut row = Json::object();
        row.set("mix", r.spec.name);
        row.set("reduction_pct", r.reduction_pct);
        row.set("ok", r.ok());
        row.set(
            "admit_all",
            Json::parse(&r.admit_all.json).expect("self-produced json"),
        );
        row.set(
            "filtered",
            Json::parse(&r.filtered.json).expect("self-produced json"),
        );
        rows.push(row);
    }
    root.set("mixes", Json::Arr(rows));
    root.to_string_pretty()
}

/// Serializes the committed-baseline rows (filtered-variant wear plus
/// the reduction each mix delivered when the baseline was recorded).
pub fn baseline_json(results: &[MixResult], smoke: bool) -> String {
    let mut root = Json::object();
    root.set("schema", BASELINE_SCHEMA);
    root.set("smoke", smoke);
    let mut rows = Vec::new();
    for r in results {
        let mut row = Json::object();
        row.set("mix", r.spec.name);
        row.set("ssd_writes_admit_all", r.admit_all.wear.ssd_pages_written);
        row.set("ssd_writes_filtered", r.filtered.wear.ssd_pages_written);
        row.set("write_amp_filtered", r.filtered.wear.write_amplification());
        row.set("reduction_pct", r.reduction_pct);
        rows.push(row);
    }
    root.set("mixes", Json::Arr(rows));
    root.to_string_pretty()
}

/// Checks current results against a committed baseline. Returns
/// gate-violation strings; empty means the check passed. `Err` means
/// the baseline could not be parsed or is not comparable (smoke flag
/// mismatch — wear numbers scale with tick count).
pub fn check_against(
    results: &[MixResult],
    smoke: bool,
    baseline: &str,
) -> Result<Vec<String>, String> {
    let doc = Json::parse(baseline).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some(BASELINE_SCHEMA) {
        return Err(format!("baseline schema is not {BASELINE_SCHEMA}"));
    }
    if doc.get("smoke").and_then(Json::as_bool) != Some(smoke) {
        return Err("baseline smoke flag differs from this run; re-record it".to_owned());
    }
    let rows = doc
        .get("mixes")
        .and_then(Json::as_array)
        .ok_or("baseline has no mixes array")?;
    let mut violations = Vec::new();
    for r in results {
        let Some(row) = rows
            .iter()
            .find(|b| b.get("mix").and_then(Json::as_str) == Some(r.spec.name))
        else {
            violations.push(format!("mix {} missing from baseline", r.spec.name));
            continue;
        };
        let base_writes = row
            .get("ssd_writes_filtered")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let base_amp = row
            .get("write_amp_filtered")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let cur_writes = r.filtered.wear.ssd_pages_written as f64;
        let cur_amp = r.filtered.wear.write_amplification();
        if cur_writes > base_writes * WEAR_TOLERANCE {
            violations.push(format!(
                "{}: filtered SSD writes {cur_writes:.0} > baseline {base_writes:.0} × {WEAR_TOLERANCE}",
                r.spec.name
            ));
        }
        if cur_amp > base_amp * WEAR_TOLERANCE {
            violations.push(format!(
                "{}: write amplification {cur_amp:.3} > baseline {base_amp:.3} × {WEAR_TOLERANCE}",
                r.spec.name
            ));
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke matrix holds every gate — identity, auditor silence,
    /// the reduction/hit gates — and round-trips its own baseline.
    #[test]
    fn smoke_matrix_passes_gates_and_baseline_roundtrip() {
        let results = run_matrix(true, DEFAULT_SEED);
        for r in &results {
            assert!(r.ok(), "{}: {:?}", r.spec.name, r.failures);
        }
        let baseline = baseline_json(&results, true);
        let violations = check_against(&results, true, &baseline).expect("comparable baseline");
        assert!(violations.is_empty(), "{violations:?}");
        assert!(
            check_against(&results, false, &baseline).is_err(),
            "smoke-flag mismatch must refuse, not silently pass"
        );
    }

    /// An inflated baseline (recorded with fewer writes than the run
    /// produces) trips the regression gate.
    #[test]
    fn regression_gate_trips_on_worse_wear() {
        let results = run_matrix(true, DEFAULT_SEED);
        let mut shrunk = results.clone();
        for r in &mut shrunk {
            r.filtered.wear.ssd_pages_written /= 4;
        }
        let baseline = baseline_json(&shrunk, true);
        let violations = check_against(&results, true, &baseline).expect("comparable baseline");
        assert!(
            !violations.is_empty(),
            "4× wear over baseline must violate the {WEAR_TOLERANCE}× gate"
        );
    }
}
