//! Figures 3 and 4: non-deterministic cache distribution under a
//! container-agnostic (Global/tmem-style) hypervisor cache.
//!
//! Setup (paper §2.3, scaled ÷8): a VM with two webserver containers that
//! differ only in IO load (2 vs 3 threads), over a Global-mode hypervisor
//! cache. Fig 3 runs each container alone (each fills the whole cache);
//! Fig 4a runs both together from t=0 (the heavier container ends with
//! roughly twice the share); Fig 4b delays container 2, which then
//! overtakes container 1.

use ddc_core::prelude::*;

use super::common::{mb, probe_container_mem};

/// Scaled setup constants.
const VM_MB: u64 = 256;
const CACHE_MB: u64 = 128;
const CG_LIMIT_MB: u64 = 64;
const FILES: usize = 2200; // ~275 MiB fileset per container

fn web_config() -> WebConfig {
    WebConfig {
        files: FILES,
        mean_file_blocks: 2,
        ..WebConfig::default()
    }
}

fn global_host() -> Host {
    let config = CacheConfig::mem_only(mb(CACHE_MB)).with_mode(PartitionMode::Global);
    Host::new(HostConfig::new(config))
}

fn spawn_web(exp: &mut Experiment, name: &str, vm: VmId, cg: CgroupId, threads: u32, seed: u64) {
    for t in 0..threads {
        exp.add_thread(Box::new(Webserver::new(
            format!("{name}/t{t}"),
            vm,
            cg,
            web_config(),
            seed + t as u64,
        )));
    }
}

/// Fig 3: one container alone (container 1 has 2 threads, container 2
/// has 3). Returns the report with an occupancy series named
/// `"container{n} (MB)"`.
pub fn fig3_alone(container: u8, duration: SimTime) -> ddc_core::ExperimentReport {
    let mut host = global_host();
    let vm = host.boot_vm(VM_MB, 100);
    let threads = if container == 1 { 2 } else { 3 };
    let cg = host.create_container(vm, "web", mb(CG_LIMIT_MB), CachePolicy::mem(100));
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    spawn_web(&mut exp, "web", vm, cg, threads, 100 * container as u64);
    probe_container_mem(&mut exp, &format!("container{container}"), vm, cg);
    exp.run_until(duration)
}

/// Fig 4: both containers together. `offset` delays container 2's
/// workload start (0 for Fig 4a; the paper used 200 s for Fig 4b).
pub fn fig4_together(offset: SimDuration, duration: SimTime) -> ddc_core::ExperimentReport {
    let mut host = global_host();
    let vm = host.boot_vm(VM_MB, 100);
    let c1 = host.create_container(vm, "c1", mb(CG_LIMIT_MB), CachePolicy::mem(100));
    let c2 = host.create_container(vm, "c2", mb(CG_LIMIT_MB), CachePolicy::mem(100));
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    spawn_web(&mut exp, "container1", vm, c1, 2, 11);
    // Container 2 threads start after `offset`.
    let start = SimTime::ZERO + offset;
    for t in 0..3u32 {
        exp.add_thread_at(
            start,
            Box::new(Webserver::new(
                format!("container2/t{t}"),
                vm,
                c2,
                web_config(),
                22 + t as u64,
            )),
        );
    }
    probe_container_mem(&mut exp, "container1", vm, c1);
    probe_container_mem(&mut exp, "container2", vm, c2);
    exp.run_until(duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_mb;

    const SHORT: SimTime = SimTime::from_secs(100);

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn each_container_alone_fills_the_cache() {
        for c in [1u8, 2] {
            let report = fig3_alone(c, SHORT);
            let series = report.series(&format!("container{c} (MB)")).unwrap();
            let peak = series.points.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
            let cache_mb = to_mb(mb(CACHE_MB));
            assert!(
                peak > cache_mb * 0.9,
                "container {c} alone should fill the cache (peak {peak:.1} of {cache_mb:.1})"
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn together_heavier_container_dominates() {
        let report = fig4_together(SimDuration::ZERO, SHORT);
        let end = SHORT.as_secs_f64();
        let c1 = report
            .series("container1 (MB)")
            .unwrap()
            .mean_in(end * 0.6, end)
            .unwrap();
        let c2 = report
            .series("container2 (MB)")
            .unwrap()
            .mean_in(end * 0.6, end)
            .unwrap();
        assert!(
            c2 > c1,
            "3-thread container must out-occupy the 2-thread one ({c2:.1} vs {c1:.1})"
        );
    }
}
