//! Figures 12 and 13: dynamic cache management across containers and
//! across VMs.
//!
//! Fig. 12 (scaled ÷8, durations ÷3): a VM runs webserver (weight 60)
//! and proxycache (weight 40) over a 128 MiB memory cache; at t=300 s a
//! videoserver container boots and the weights become 50/30/20; at
//! t=600 s the videoserver is moved to the SSD store and the memory
//! split returns to 60/40.
//!
//! Fig. 13: four VMs running videoserver boot at 150 s intervals over a
//! 256 MiB memory cache; weights go 100 → 60/40 → (VM3 is SSD-only) →
//! capacity 512 MiB with weights 40/35/25.

use ddc_core::prelude::*;

use super::common::{mb, probe_container_mem};

/// Scaled phase length (the paper used 900 s phases; we use 300 s).
pub const PHASE_SECS: u64 = 300;

/// Runs Fig. 12 and returns the report (occupancy series `"web (MB)"`,
/// `"proxy (MB)"`, `"video (MB)"`).
pub fn fig12() -> ddc_core::ExperimentReport {
    let cache = CacheConfig::mem_and_ssd(mb(128), mb(30 * 1024));
    let mut host = Host::new(HostConfig::new(cache));
    let vm = host.boot_vm(512, 100);
    let limit = mb(128);
    let c1 = host.create_container(vm, "web", limit, CachePolicy::mem(60));
    let c2 = host.create_container(vm, "proxy", limit, CachePolicy::mem(40));

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    let web_cfg = WebConfig {
        files: 2500,
        ..WebConfig::default()
    };
    let proxy_cfg = ProxyConfig {
        files: 2000,
        ..ProxyConfig::default()
    };
    exp.add_thread(Box::new(Webserver::new("web/t0", vm, c1, web_cfg, 1)));
    exp.add_thread(Box::new(Webserver::new("web/t1", vm, c1, web_cfg, 2)));
    exp.add_thread(Box::new(Proxycache::new("proxy/t0", vm, c2, proxy_cfg, 3)));
    probe_container_mem(&mut exp, "web", vm, c1);
    probe_container_mem(&mut exp, "proxy", vm, c2);
    // Probe the (future) third container defensively: zero until it boots.
    exp.add_probe("video (MB)", move |h| {
        h.guest(vm)
            .cgroup_ids()
            .get(2)
            .and_then(|cg| h.container_cache_stats(vm, *cg))
            .map_or(0.0, |s| super::common::to_mb(s.mem_pages))
    });

    // Phase 2: boot the videoserver, weights 50/30/20.
    exp.schedule(SimTime::from_secs(PHASE_SECS), move |host, pool, at| {
        let c3 = host.create_container(vm, "video", mb(128), CachePolicy::mem(20));
        host.set_container_policy(vm, c1, CachePolicy::mem(50));
        host.set_container_policy(vm, c2, CachePolicy::mem(30));
        let cfg = VideoConfig {
            active_videos: 48,
            mean_video_blocks: 96,
            ..VideoConfig::default()
        };
        pool.spawn_at(at, Box::new(VideoServer::new("video/t0", vm, c3, cfg, 4)));
    });

    // Phase 3: videoserver -> SSD, memory weights back to 60/40.
    exp.schedule(
        SimTime::from_secs(2 * PHASE_SECS),
        move |host, _pool, at| {
            let c3 = *host.guest(vm).cgroup_ids().last().expect("video exists");
            host.set_container_policy(vm, c3, CachePolicy::ssd(100));
            host.set_container_policy(vm, c1, CachePolicy::mem(60));
            host.set_container_policy(vm, c2, CachePolicy::mem(40));
            let _ = at;
        },
    );

    exp.run_until(SimTime::from_secs(3 * PHASE_SECS))
}

/// Runs Fig. 13 and returns the report (series `"vm1 (MB)"` … `"vm4 (MB)"`).
pub fn fig13() -> ddc_core::ExperimentReport {
    /// Boot stagger (the paper used 600 s; we use 150 s).
    const STAGGER: u64 = 150;
    let cache = CacheConfig::mem_and_ssd(mb(256), mb(30 * 1024));
    let host = Host::new(HostConfig::new(cache));

    let video_cfg = VideoConfig {
        active_videos: 64,
        mean_video_blocks: 96,
        ..VideoConfig::default()
    };
    let spawn_video = move |host: &mut Host,
                            pool: &mut ddc_core::ThreadPool,
                            at: SimTime,
                            n: u32,
                            policy: CachePolicy| {
        let vm = host.boot_vm(256, 100);
        let cg = host.create_container(vm, "video", mb(128), policy);
        pool.spawn_at(
            at,
            Box::new(VideoServer::new(
                format!("vm{n}-video/t0"),
                vm,
                cg,
                video_cfg,
                10 + n as u64,
            )),
        );
        vm
    };

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    // VM1 at t=0 with weight 100.
    let vm1 = {
        let host = exp.host_mut();
        let vm = host.boot_vm(256, 100);
        let cg = host.create_container(vm, "video", mb(128), CachePolicy::mem(100));
        exp.add_thread(Box::new(VideoServer::new(
            "vm1-video/t0",
            vm,
            cg,
            video_cfg,
            11,
        )));
        vm
    };
    for n in 1..=4u32 {
        let name = format!("vm{n} (MB)");
        exp.add_probe(name, move |h| {
            h.vm_ids()
                .get(n as usize - 1)
                .map(|vm| super::common::to_mb(h.vm_cache_usage(*vm).mem_pages))
                .unwrap_or(0.0)
        });
    }

    // VM2 at STAGGER: weights 60/40.
    exp.schedule(SimTime::from_secs(STAGGER), move |host, pool, at| {
        let vm2 = spawn_video(host, pool, at, 2, CachePolicy::mem(100));
        host.set_vm_cache_weight(vm1, 60);
        host.set_vm_cache_weight(vm2, 40);
    });
    // VM3 at 2*STAGGER: SSD-only; memory weights untouched.
    exp.schedule(SimTime::from_secs(2 * STAGGER), move |host, pool, at| {
        spawn_video(host, pool, at, 3, CachePolicy::ssd(100));
    });
    // VM4 at 3*STAGGER: memory cache doubles to 512 MiB; weights 40/35/25.
    exp.schedule(SimTime::from_secs(3 * STAGGER), move |host, pool, at| {
        let vm4 = spawn_video(host, pool, at, 4, CachePolicy::mem(100));
        host.set_mem_cache_capacity(at, mb(512));
        let ids = host.vm_ids();
        host.set_vm_cache_weight(ids[0], 40);
        host.set_vm_cache_weight(ids[1], 35);
        host.set_vm_cache_weight(vm4, 25);
    });

    exp.run_until(SimTime::from_secs(4 * STAGGER + 150))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full figures are exercised by the repro binary; unit tests here
    // run miniature versions of the same control logic for speed (the
    // integration tests cover the full scripts).

    #[test]
    fn fig12_phase_structure_miniature() {
        // Re-run fig12 logic at 1/10 scale via the public function but
        // sampling only the early phase boundary behaviours would still
        // take minutes in debug builds; instead assert the script is
        // well-formed by checking its construction does not panic and the
        // first seconds execute.
        let cache = CacheConfig::mem_and_ssd(mb(16), mb(256));
        let mut host = Host::new(HostConfig::new(cache));
        let vm = host.boot_vm(32, 100);
        let c1 = host.create_container(vm, "web", mb(16), CachePolicy::mem(60));
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        exp.add_thread(Box::new(Webserver::new(
            "web/t0",
            vm,
            c1,
            WebConfig {
                files: 200,
                ..WebConfig::default()
            },
            1,
        )));
        exp.schedule(SimTime::from_secs(2), move |host, _pool, _at| {
            host.set_container_policy(vm, c1, CachePolicy::mem(50));
        });
        let report = exp.run_until(SimTime::from_secs(4));
        assert!(report.threads[0].ops > 0);
    }
}
