//! Figure 5 and Table 1: application behaviour under different splits of
//! a fixed memory budget between in-VM (cgroup) memory and the
//! hypervisor cache.
//!
//! Setup (paper §2.3.1, scaled ÷8): a 256 MiB budget is split
//! `container : hypervisor-cache` in the paper's ratios (2:0, 1.5:0.5,
//! 1:1, 0.5:1.5, 0.25:1.75). Four workloads run one at a time: Filebench
//! webserver, and YCSB over Redis-, MongoDB- and MySQL-like stores.
//! Table 1 reports the guest-side memory diagnosis at the 1:1 split.

use ddc_core::prelude::*;

use super::common::mb;

/// Total budget in MiB (paper: 2 GiB).
pub const BUDGET_MB: u64 = 256;

/// The paper's split ratios, expressed as the container's MiB share.
pub const SPLITS_MB: [u64; 5] = [256, 192, 128, 64, 32];

/// The workloads of Fig. 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitApp {
    /// Filebench webserver.
    Webserver,
    /// YCSB over a Redis-like (anonymous memory) store.
    Redis,
    /// YCSB over a MongoDB-like (file-backed) store.
    MongoDb,
    /// YCSB over a MySQL-like (buffer pool + redo log) store.
    MySql,
}

impl SplitApp {
    /// All four apps in the paper's presentation order.
    pub const ALL: [SplitApp; 4] = [
        SplitApp::Webserver,
        SplitApp::Redis,
        SplitApp::MongoDb,
        SplitApp::MySql,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SplitApp::Webserver => "webserver",
            SplitApp::Redis => "redis",
            SplitApp::MongoDb => "mongodb",
            SplitApp::MySql => "mysql",
        }
    }
}

/// Results of one (app, split) run.
#[derive(Clone, Copy, Debug)]
pub struct SplitResult {
    /// Container share of the budget, MiB.
    pub container_mb: u64,
    /// Hypervisor cache share, MiB.
    pub cache_mb: u64,
    /// Application throughput, ops/sec.
    pub ops_per_sec: f64,
    /// Pages currently swapped out (guest side).
    pub swapped_pages: u64,
    /// Anonymous pages allocated.
    pub anon_pages: u64,
    /// Hypervisor cache occupancy of the app's pool, pages.
    pub hcache_pages: u64,
}

/// Dataset size per app, blocks (~224 MiB, i.e. ~87% of the budget —
/// mirroring the paper where the 2 GiB budget held a working set large
/// enough that the 1 GiB-limit configurations overflowed into the cache).
const DATASET_BLOCKS: u64 = 224 * 1024 * 1024 / PAGE_SIZE;

/// Runs one app under one split for `duration`.
pub fn run_split(app: SplitApp, container_mb: u64, duration: SimTime) -> SplitResult {
    let cache_mb = BUDGET_MB - container_mb;
    let config = CacheConfig::mem_only(mb(cache_mb));
    let mut host = Host::new(HostConfig::new(config));
    // Guest RAM = container share + a small kernel/slack reserve, so the
    // cgroup limit is the binding constraint, like the paper's setup.
    let vm = host.boot_vm(container_mb + 16, 100);
    let cg = host.create_container(vm, app.name(), mb(container_mb), CachePolicy::mem(100));

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    match app {
        SplitApp::Webserver => {
            let cfg = WebConfig {
                files: (DATASET_BLOCKS / 2) as usize,
                mean_file_blocks: 2,
                ..WebConfig::default()
            };
            exp.add_thread(Box::new(Webserver::new("app/t0", vm, cg, cfg, 5)));
            exp.add_thread(Box::new(Webserver::new("app/t1", vm, cg, cfg, 6)));
        }
        SplitApp::Redis => {
            let cfg = YcsbConfig::read_mostly(StoreModel::RedisLike, DATASET_BLOCKS);
            exp.add_thread(Box::new(YcsbClient::new("app/t0", vm, cg, cfg, 7)));
        }
        SplitApp::MongoDb => {
            let cfg = YcsbConfig::read_mostly(StoreModel::MongoLike, DATASET_BLOCKS);
            exp.add_thread(Box::new(YcsbClient::new("app/t0", vm, cg, cfg, 8)));
        }
        SplitApp::MySql => {
            let cfg = YcsbConfig {
                update_fraction: 0.3,
                ..YcsbConfig::read_mostly(StoreModel::MySqlLike, DATASET_BLOCKS)
            };
            exp.add_thread(Box::new(YcsbClient::new("app/t0", vm, cg, cfg, 9)));
        }
    }
    let report = exp.run_until(duration);
    let mem = exp.host().container_mem_stats(vm, cg);
    let hc = exp.host().container_cache_stats(vm, cg).unwrap();
    SplitResult {
        container_mb,
        cache_mb,
        ops_per_sec: report.throughput_of("app"),
        swapped_pages: mem.swapped_pages,
        anon_pages: mem.anon_allocated_pages,
        hcache_pages: hc.mem_pages + hc.ssd_pages,
    }
}

/// Runs the full Fig. 5 sweep: every app × every split. All
/// `apps × splits` cells are independent, so the whole matrix fans out
/// flat across cores and is regrouped per app afterwards.
pub fn fig5_sweep(duration: SimTime) -> Vec<(SplitApp, Vec<SplitResult>)> {
    let cells: Vec<(SplitApp, u64)> = SplitApp::ALL
        .iter()
        .flat_map(|&app| SPLITS_MB.iter().map(move |&c| (app, c)))
        .collect();
    let results = ddc_core::parallel::run_cells(cells, |(app, c)| run_split(app, c, duration));
    SplitApp::ALL
        .iter()
        .enumerate()
        .map(|(i, &app)| {
            let start = i * SPLITS_MB.len();
            (app, results[start..start + SPLITS_MB.len()].to_vec())
        })
        .collect()
}

/// Runs Table 1: the equal (1:1) split for each app, one cell per core.
pub fn table1(duration: SimTime) -> Vec<(SplitApp, SplitResult)> {
    let results = ddc_core::parallel::run_cells(SplitApp::ALL.to_vec(), |app| {
        run_split(app, BUDGET_MB / 2, duration)
    });
    SplitApp::ALL.iter().copied().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimTime = SimTime::from_secs(60);

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn mongo_tolerates_split_redis_does_not() {
        let mongo_full = run_split(SplitApp::MongoDb, 256, SHORT);
        let mongo_split = run_split(SplitApp::MongoDb, 64, SHORT);
        let redis_full = run_split(SplitApp::Redis, 256, SHORT);
        let redis_split = run_split(SplitApp::Redis, 64, SHORT);
        // MongoDB: file-backed, degrades gently (within 2x).
        assert!(
            mongo_split.ops_per_sec > mongo_full.ops_per_sec * 0.5,
            "mongo {} vs {}",
            mongo_split.ops_per_sec,
            mongo_full.ops_per_sec
        );
        // Redis: anonymous, collapses by an order of magnitude or more.
        assert!(
            redis_split.ops_per_sec < redis_full.ops_per_sec * 0.1,
            "redis {} vs {}",
            redis_split.ops_per_sec,
            redis_full.ops_per_sec
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn table1_diagnosis_shapes() {
        // At the 1:1 split: Redis swaps and barely uses the cache; Mongo
        // does not swap and fills the cache.
        let redis = run_split(SplitApp::Redis, BUDGET_MB / 2, SHORT);
        let mongo = run_split(SplitApp::MongoDb, BUDGET_MB / 2, SHORT);
        assert!(redis.swapped_pages > 0, "redis must be swapping");
        assert!(
            redis.hcache_pages < mongo.hcache_pages / 4,
            "redis cache use ({}) must be tiny vs mongo ({})",
            redis.hcache_pages,
            mongo.hcache_pages
        );
        assert_eq!(mongo.swapped_pages, 0, "mongo must not swap");
    }
}
