//! Shared helpers for scenario builders.

use ddc_core::prelude::*;

/// MiB → blocks.
pub fn mb(mib: u64) -> u64 {
    CacheConfig::pages_from_mb(mib)
}

/// Blocks → MB (decimal, for display).
pub fn to_mb(pages: u64) -> f64 {
    pages as f64 * PAGE_SIZE as f64 / 1e6
}

/// The four Filebench workloads of the paper's §5.1/§5.2 experiments,
/// with scaled fileset sizes (paper sizes ÷ 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FourKind {
    /// Filebench webserver.
    Web,
    /// Filebench proxycache (webproxy).
    Proxy,
    /// Filebench mail (varmail).
    Mail,
    /// Filebench videoserver.
    Video,
}

impl FourKind {
    /// All four, in the paper's container order C1..C4.
    pub const ALL: [FourKind; 4] = [
        FourKind::Web,
        FourKind::Proxy,
        FourKind::Mail,
        FourKind::Video,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FourKind::Web => "webserver",
            FourKind::Proxy => "proxycache",
            FourKind::Mail => "mail",
            FourKind::Video => "videoserver",
        }
    }
}

/// Spawns `threads` workload threads of the given kind into `exp`,
/// labelled `"{name}/tN"`.
pub fn spawn_four_kind(
    exp: &mut Experiment,
    kind: FourKind,
    vm: VmId,
    cg: CgroupId,
    threads: u32,
    seed: u64,
) {
    for t in 0..threads {
        let label = format!("{}/t{t}", kind.name());
        let thread_seed = seed + t as u64;
        let boxed: Box<dyn WorkloadThread> = match kind {
            FourKind::Web => Box::new(Webserver::new(
                label,
                vm,
                cg,
                WebConfig {
                    files: 3000,
                    mean_file_blocks: 2,
                    zipf_theta: 0.0,
                    ..WebConfig::default()
                },
                thread_seed,
            )),
            FourKind::Proxy => Box::new(Proxycache::new(
                label,
                vm,
                cg,
                ProxyConfig {
                    files: 900,
                    mean_file_blocks: 2,
                    ..ProxyConfig::default()
                },
                thread_seed,
            )),
            FourKind::Mail => Box::new(MailServer::new(
                label,
                vm,
                cg,
                MailConfig {
                    files: 2200,
                    mean_file_blocks: 1,
                },
                thread_seed,
            )),
            FourKind::Video => Box::new(VideoServer::new(
                label,
                vm,
                cg,
                VideoConfig {
                    active_videos: 48,
                    mean_video_blocks: 96,
                    zipf_theta: 0.9,
                    writer_period: 32,
                },
                thread_seed,
            )),
        };
        exp.add_thread(boxed);
    }
}

/// Adds a per-container memory-store occupancy probe named
/// `"{name} (MB)"`.
pub fn probe_container_mem(exp: &mut Experiment, name: &str, vm: VmId, cg: CgroupId) {
    let label = format!("{name} (MB)");
    exp.add_probe(label, move |h| {
        h.container_cache_stats(vm, cg)
            .map_or(0.0, |s| to_mb(s.mem_pages))
    });
}

/// Renders a named series from a report as an ASCII block, with phase
/// mean annotations.
pub fn print_series(report: &ddc_core::ExperimentReport, names: &[&str]) {
    use ddc_core::sim::{SimTime, TimeSeries};
    let mut series_objs: Vec<TimeSeries> = Vec::new();
    for name in names {
        if let Some(s) = report.series(name) {
            let mut ts = TimeSeries::new(s.name.clone());
            for (t, v) in &s.points {
                ts.record(SimTime::from_nanos((*t * 1e9) as u64), *v);
            }
            series_objs.push(ts);
        }
    }
    let refs: Vec<&TimeSeries> = series_objs.iter().collect();
    print!("{}", ddc_core::metrics::render_ascii_chart(&refs, 72, 6));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert_eq!(mb(1), 1024 * 1024 / PAGE_SIZE);
        let pages = mb(64);
        assert!((to_mb(pages) - 67.1).abs() < 0.1); // 64 MiB = 67.1 MB
    }

    #[test]
    fn four_kind_names() {
        assert_eq!(FourKind::ALL.len(), 4);
        assert_eq!(FourKind::Web.name(), "webserver");
        assert_eq!(FourKind::Video.name(), "videoserver");
    }

    #[test]
    fn spawn_and_probe_wire_up() {
        let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(mb(16))));
        let vm = host.boot_vm(16, 100);
        let cg = host.create_container(vm, "web", mb(8), CachePolicy::mem(100));
        let mut exp = Experiment::new(host, SimDuration::from_secs(1));
        spawn_four_kind(&mut exp, FourKind::Web, vm, cg, 2, 1);
        probe_container_mem(&mut exp, "webserver", vm, cg);
        let report = exp.run_until(SimTime::from_secs(2));
        assert_eq!(report.threads.len(), 2);
        assert!(report
            .threads
            .iter()
            .all(|t| t.label.starts_with("webserver/")));
        assert!(report.series("webserver (MB)").is_some());
    }
}
