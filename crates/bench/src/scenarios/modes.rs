//! Figures 8–9 and Table 2: the four-workload comparison of caching
//! modes — Global (container-agnostic), DDMem (DoubleDecker, memory
//! store, equal weights) and DDSSD (DoubleDecker, SSD store, equal
//! weights).
//!
//! Setup (paper §5.1, scaled ÷8): one VM with four containers running
//! webserver, proxycache, mail and videoserver; memory cache 384 MiB or
//! SSD cache 30 GiB; container limits 128 MiB each.

use ddc_core::prelude::*;

use super::common::{mb, probe_container_mem, spawn_four_kind, FourKind};

/// The three caching modes of the experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachingMode {
    /// Memory-backed cache, global (container-agnostic) management.
    Global,
    /// Memory-backed cache, DoubleDecker equal-weight partitioning.
    DdMem,
    /// SSD-backed cache, DoubleDecker equal-weight partitioning.
    DdSsd,
}

impl CachingMode {
    /// All modes in the paper's column order.
    pub const ALL: [CachingMode; 3] = [CachingMode::Global, CachingMode::DdMem, CachingMode::DdSsd];

    /// Display name matching Table 2's column groups.
    pub fn name(self) -> &'static str {
        match self {
            CachingMode::Global => "Global (Memory)",
            CachingMode::DdMem => "DoubleDecker (Memory)",
            CachingMode::DdSsd => "DoubleDecker (SSD)",
        }
    }
}

/// Table 2 row fragment: one workload under one mode.
#[derive(Clone, Copy, Debug)]
pub struct ModeResult {
    /// Application throughput, MB/s.
    pub mb_per_sec: f64,
    /// Mean operation latency, ms.
    pub latency_ms: f64,
    /// Lookup-to-store ratio, percent (hits / puts × 100).
    pub lookup_to_store: f64,
    /// Evictions from the workload's pool.
    pub evictions: u64,
}

/// The full result of one mode run: per-workload Table 2 fragments plus
/// the occupancy series for Figs. 8 and 9.
pub struct ModeRun {
    /// The mode that ran.
    pub mode: CachingMode,
    /// Table 2 fragments in [`FourKind::ALL`] order.
    pub results: Vec<(FourKind, ModeResult)>,
    /// The experiment report (holds the occupancy series named
    /// `"{workload} (MB)"`).
    pub report: ddc_core::ExperimentReport,
}

const VM_MB: u64 = 1024;
const CG_LIMIT_MB: u64 = 128;
const MEM_CACHE_MB: u64 = 384;
const SSD_CACHE_MB: u64 = 30 * 1024;

/// Runs the four-workload scenario under one caching mode.
pub fn run_mode(mode: CachingMode, duration: SimTime) -> ModeRun {
    let cache_config = match mode {
        CachingMode::Global => {
            CacheConfig::mem_only(mb(MEM_CACHE_MB)).with_mode(PartitionMode::Global)
        }
        CachingMode::DdMem => CacheConfig::mem_only(mb(MEM_CACHE_MB)),
        CachingMode::DdSsd => CacheConfig {
            mem_capacity_pages: 0,
            ssd_capacity_pages: mb(SSD_CACHE_MB),
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        },
    };
    let mut host = Host::new(HostConfig::new(cache_config));
    let vm = host.boot_vm(VM_MB, 100);

    let policy = match mode {
        CachingMode::DdSsd => CachePolicy::ssd(25),
        _ => CachePolicy::mem(25),
    };
    let mut cgs = Vec::new();
    for kind in FourKind::ALL {
        cgs.push((
            kind,
            host.create_container(vm, kind.name(), mb(CG_LIMIT_MB), policy),
        ));
    }

    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    for (i, (kind, cg)) in cgs.iter().enumerate() {
        spawn_four_kind(&mut exp, *kind, vm, *cg, 2, 1000 * (i as u64 + 1));
        probe_container_mem(&mut exp, kind.name(), vm, *cg);
    }
    // Measure steady state: the first half of the run is warm-up (cold
    // cache fill is disk-bound, as on the paper's testbed).
    exp.mark_steady_state_at(SimTime::from_nanos(duration.as_nanos() / 2));

    let report = exp.run_until(duration);
    let results = cgs
        .iter()
        .map(|(kind, cg)| {
            let stats = exp.host().container_cache_stats(vm, *cg).unwrap();
            (
                *kind,
                ModeResult {
                    mb_per_sec: report.mb_per_sec_of(kind.name()),
                    latency_ms: report.mean_latency_of(kind.name()),
                    lookup_to_store: stats.lookup_to_store_ratio(),
                    evictions: stats.evictions,
                },
            )
        })
        .collect();
    ModeRun {
        mode,
        results,
        report,
    }
}

/// Runs all three modes (Fig. 8 + Fig. 9 + Table 2 in one pass). The
/// modes are independent simulations, so they fan out across cores;
/// results come back in `CachingMode::ALL` order regardless.
pub fn run_all_modes(duration: SimTime) -> Vec<ModeRun> {
    ddc_core::parallel::run_cells(CachingMode::ALL.to_vec(), |m| run_mode(m, duration))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimTime = SimTime::from_secs(400);

    fn result_of(run: &ModeRun, kind: FourKind) -> ModeResult {
        run.results
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| *r)
            .expect("kind present")
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn ddmem_protects_web_from_video() {
        let global = run_mode(CachingMode::Global, SHORT);
        let ddmem = run_mode(CachingMode::DdMem, SHORT);
        let web_g = result_of(&global, FourKind::Web).mb_per_sec;
        let web_d = result_of(&ddmem, FourKind::Web).mb_per_sec;
        assert!(
            web_d > web_g * 1.5,
            "DDMem web throughput ({web_d:.1}) must clearly beat Global ({web_g:.1})"
        );
        // Under DD, non-video workloads are not victimized.
        let web_ev = result_of(&ddmem, FourKind::Web).evictions;
        let video_ev = result_of(&ddmem, FourKind::Video).evictions;
        assert!(
            video_ev > web_ev,
            "DD must victimize the over-entitlement videoserver (video {video_ev}, web {web_ev})"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn ssd_mode_has_no_evictions() {
        let ddssd = run_mode(CachingMode::DdSsd, SHORT);
        for (kind, r) in &ddssd.results {
            assert_eq!(
                r.evictions,
                0,
                "{} must not be evicted from a 30 GiB SSD cache",
                kind.name()
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "scenario-scale; run with --release")]
    fn ssd_mode_slower_than_mem_for_video() {
        let ddmem = run_mode(CachingMode::DdMem, SHORT);
        let ddssd = run_mode(CachingMode::DdSsd, SHORT);
        let video_mem = result_of(&ddmem, FourKind::Video).mb_per_sec;
        let video_ssd = result_of(&ddssd, FourKind::Video).mb_per_sec;
        assert!(
            video_mem > video_ssd,
            "memory-backed cache must beat SSD for the videoserver ({video_mem:.1} vs {video_ssd:.1})"
        );
    }
}
