//! `repro remote` — the remote chunk-store tier under its full
//! fault-tolerance stack (DESIGN.md §16).
//!
//! Three gated phases over the third tier:
//!
//! 1. **Fault-axis determinism matrix** — for every network fault axis
//!    (healthy, partition, remote brownout, edge-cache flap) the sharded
//!    engine driven single-threaded must stay byte-identical to the
//!    serial reference, a same-seed rerun must reproduce the exact same
//!    report, and the stale-read oracle must stay at zero: remote faults
//!    only ever manifest as misses (fail-open — the cache can forget,
//!    never lie). Per-axis counter gates pin the interesting behaviour
//!    (partitions trip and then recover the breaker, brownouts eat
//!    deadlines, flaps force origin fetches and hedges).
//! 2. **Degradation ladder** — the 8-thread stress harness runs
//!    baseline / 30%-brownout / healed phases. The brownout phase must
//!    stay clean with the breaker visibly cycling, sustain at least
//!    [`MIN_BROWNOUT_FRACTION`] of fault-free throughput (no thread
//!    ever stalls on a dead remote — deadlines bound every fetch), and
//!    the healed phase must recover to within
//!    [`MAX_HEALED_REGRESSION`] of baseline. Wall-clock numbers keep
//!    the fastest of the interleaved repeats: every run performs the
//!    same fixed amount of simulated work, so the fastest repeat is
//!    the one least disturbed by unrelated machine load, and a burst
//!    would have to flatten *every* repeat of one phase while sparing
//!    another's to skew the cross-phase fractions.
//! 3. **Cold-boot storm** — the flagship: many tenants boot the same
//!    image from one CDN-backed [`ChunkStore`]. Edge placement is a
//!    pure function of `(store seed, chunk)`, so every tenant sees the
//!    same edge hit/miss split (CDN dedup across tenants), and
//!    chunk-granular transfers turn the shared sequential prefix into
//!    readahead-buffer hits. Guests then write (flush) part of the
//!    image; the remote must never serve a flushed block again.
//!
//! Phases 1 and 3 are fully deterministic; phase 2 carries wall-clock
//! numbers, so the combined JSON is not byte-stable across runs (the
//! pass/fail verdict is).

use ddc_core::cleancache::SecondChanceCache;
use ddc_core::concurrent::{run_equivalence, run_stress, EngineKind, RemoteSetup, StressConfig};
use ddc_core::metrics::CounterSnapshot;
use ddc_core::prelude::*;
use ddc_core::storage::{ChunkStore, RemoteConfig, RemoteCounters, RemoteFetchConfig, RemoteId};
use ddc_json::Json;

/// JSON schema tag of the remote-tier report.
pub const SCHEMA: &str = "ddc-remote-v1";

/// Default master seed of the harness.
pub const DEFAULT_SEED: u64 = 0xCD47;

/// OS threads of the degradation-ladder stress runs.
pub const LADDER_THREADS: usize = 8;

/// Per-attempt failure probability of the ladder's brownout window
/// (the ISSUE's "30% remote-brownout schedule").
pub const BROWNOUT_RATE: f64 = 0.3;

/// Minimum brownout-over-baseline throughput fraction the ladder gates
/// on: a browning-out remote may slow the cache, never stall it.
pub const MIN_BROWNOUT_FRACTION: f64 = 0.5;

/// The healed phase must recover to at least this fraction of the
/// fault-free baseline ("within 10% after the window closes").
pub const MAX_HEALED_REGRESSION: f64 = 0.9;

/// The fault axes of the determinism matrix, in report order.
pub const AXES: [&str; 4] = ["healthy", "partition", "brownout", "edge-flap"];

/// One cell of the fault-axis determinism matrix.
#[derive(Clone, Debug)]
pub struct AxisCell {
    /// Fault axis installed on the remote store.
    pub axis: &'static str,
    /// Serial and sharded single-thread reports were byte-identical
    /// (the determinism contract extended to network faults).
    pub identical: bool,
    /// A same-seed rerun reproduced the serial report byte-for-byte.
    pub rerun_identical: bool,
    /// Stale reads across engines. Must be zero under any schedule.
    pub stale_reads: u64,
    /// Remote fetch counters of the single-threaded stress run.
    pub remote: RemoteCounters,
    /// Axis-specific counter gates held (see [`axis_gates`]).
    pub gates_ok: bool,
}

/// One phase of the degradation ladder.
#[derive(Clone, Debug)]
pub struct LadderCell {
    /// `"baseline"`, `"brownout"` or `"healed"`.
    pub phase: &'static str,
    /// Interleaved repeats the best-of sample is taken over.
    pub runs: usize,
    /// Hypercall operations per run (fixed by the config, so the
    /// throughput comparison is apples to apples).
    pub total_ops: u64,
    /// Fastest wall-clock throughput across the repeats (the repeat
    /// least disturbed by unrelated machine load).
    pub ops_per_sec_best: f64,
    /// Stale-read-oracle violations summed over every repeat. Gate: 0.
    pub stale_reads: u64,
    /// Invariant-auditor findings summed over every repeat. Gate: 0.
    pub audit_findings: u64,
    /// Remote fetch counters summed over every repeat.
    pub remote: RemoteCounters,
}

/// The cold-boot-storm flagship cell.
#[derive(Clone, Debug)]
pub struct ColdBootCell {
    /// Tenants booting concurrently from the shared image.
    pub tenants: u32,
    /// Pages of the shared image each tenant reads.
    pub image_pages: u64,
    /// Simulated wall time of the boot storm (milliseconds).
    pub boot_millis: f64,
    /// Remote fetch counters summed over every tenant binding.
    pub remote: RemoteCounters,
    /// Reads that violated the contract: a miss/failure on a healthy
    /// CDN, a served version other than INITIAL, or a remote serve of a
    /// flushed (localized) block. Gate: 0.
    pub wrong_reads: u64,
    /// Blocks localized by guest flushes across all tenants.
    pub localized_blocks: u64,
    /// Readahead-buffered pages that are also localized, summed over
    /// bindings — the audited no-stale-data invariant. Gate: 0.
    pub buffered_localized_overlap: u64,
    /// Every tenant's binding ended with identical counters (the edge
    /// placement is shared, so the storm is symmetric). Gate: true.
    pub per_tenant_uniform: bool,
    /// Same-seed rerun reproduced the cell byte-for-byte. Gate: true.
    pub identical: bool,
}

/// A full remote-tier run: all three phases.
#[derive(Clone, Debug)]
pub struct RemoteReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Smoke (CI-sized) or full workload.
    pub smoke: bool,
    /// Fault-axis determinism matrix, in [`AXES`] order.
    pub axes: Vec<AxisCell>,
    /// Degradation ladder, baseline / brownout / healed.
    pub ladder: Vec<LadderCell>,
    /// The cold-boot-storm flagship.
    pub cold_boot: ColdBootCell,
}

impl RemoteReport {
    /// Best-of brownout-over-baseline throughput fraction (0 when a
    /// phase is missing).
    pub fn brownout_fraction(&self) -> f64 {
        self.phase_fraction("brownout")
    }

    /// Best-of healed-over-baseline throughput fraction.
    pub fn healed_fraction(&self) -> f64 {
        self.phase_fraction("healed")
    }

    fn phase_fraction(&self, phase: &str) -> f64 {
        let ops = |p: &str| {
            self.ladder
                .iter()
                .find(|c| c.phase == p)
                .map(|c| c.ops_per_sec_best)
        };
        match (ops("baseline"), ops(phase)) {
            (Some(base), Some(x)) if base > 0.0 => x / base,
            _ => 0.0,
        }
    }

    /// `true` when every gate of all three phases held.
    pub fn passed(&self) -> bool {
        let axes_ok = self.axes.len() == AXES.len()
            && self
                .axes
                .iter()
                .all(|c| c.identical && c.rerun_identical && c.stale_reads == 0 && c.gates_ok);
        let ladder_clean = self
            .ladder
            .iter()
            .all(|c| c.stale_reads == 0 && c.audit_findings == 0 && c.remote.served > 0);
        let brown = self.ladder.iter().find(|c| c.phase == "brownout");
        let breaker_cycled =
            brown.is_some_and(|c| c.remote.breaker_trips > 0 && c.remote.timeouts > 0);
        let throughput_ok = self.brownout_fraction() >= MIN_BROWNOUT_FRACTION
            && self.healed_fraction() >= MAX_HEALED_REGRESSION;
        axes_ok
            && self.ladder.len() == 3
            && ladder_clean
            && breaker_cycled
            && throughput_ok
            && cold_boot_gates(&self.cold_boot)
    }

    /// Machine-readable report (schema [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut root = Json::object();
        root.set("schema", SCHEMA);
        root.set("seed", self.seed);
        root.set("smoke", self.smoke);
        root.set("passed", self.passed());
        root.set("brownout_fraction", self.brownout_fraction());
        root.set("healed_fraction", self.healed_fraction());
        root.set(
            "axes",
            Json::Arr(
                self.axes
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("axis", c.axis);
                        o.set("identical", c.identical);
                        o.set("rerun_identical", c.rerun_identical);
                        o.set("stale_reads", c.stale_reads);
                        o.set("gates_ok", c.gates_ok);
                        o.set("remote", counters_json(&c.remote));
                        o
                    })
                    .collect(),
            ),
        );
        root.set(
            "ladder",
            Json::Arr(
                self.ladder
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("phase", c.phase);
                        o.set("runs", c.runs);
                        o.set("total_ops", c.total_ops);
                        o.set("ops_per_sec_best", c.ops_per_sec_best);
                        o.set("stale_reads", c.stale_reads);
                        o.set("audit_findings", c.audit_findings);
                        o.set("remote", counters_json(&c.remote));
                        o
                    })
                    .collect(),
            ),
        );
        root.set("cold_boot", cold_boot_json(&self.cold_boot));
        let mut s = root.to_string_pretty();
        s.push('\n');
        s
    }
}

/// Renders remote counters as a JSON object (field order matches
/// [`RemoteCounters`]).
fn counters_json(t: &RemoteCounters) -> Json {
    let mut o = Json::object();
    o.set("fetches", t.fetches);
    o.set("served", t.served);
    o.set("failed", t.failed);
    o.set("shed", t.shed);
    o.set("breaker_skipped", t.breaker_skipped);
    o.set("breaker_trips", t.breaker_trips);
    o.set("breaker_recoveries", t.breaker_recoveries);
    o.set("retries", t.retries);
    o.set("timeouts", t.timeouts);
    o.set("hedges", t.hedges);
    o.set("hedge_wins", t.hedge_wins);
    o.set("edge_hits", t.edge_hits);
    o.set("origin_fetches", t.origin_fetches);
    o.set("readahead_hits", t.readahead_hits);
    o
}

fn cold_boot_json(c: &ColdBootCell) -> Json {
    let mut o = Json::object();
    o.set("tenants", c.tenants);
    o.set("image_pages", c.image_pages);
    o.set("boot_millis", c.boot_millis);
    o.set("wrong_reads", c.wrong_reads);
    o.set("localized_blocks", c.localized_blocks);
    o.set("buffered_localized_overlap", c.buffered_localized_overlap);
    o.set("per_tenant_uniform", c.per_tenant_uniform);
    o.set("identical", c.identical);
    o.set("remote", counters_json(&c.remote));
    o
}

/// The gates of the cold-boot-storm cell.
pub fn cold_boot_gates(c: &ColdBootCell) -> bool {
    c.wrong_reads == 0
        && c.buffered_localized_overlap == 0
        && c.per_tenant_uniform
        && c.identical
        && c.remote.failed == 0
        && c.remote.shed == 0
        && c.remote.edge_hits > 0
        && c.remote.origin_fetches > 0
        // Chunked transfer + the shared sequential prefix must make the
        // readahead buffer carry most of the boot.
        && c.remote.readahead_hits > c.remote.fetches
}

// ---------------------------------------------------------------------
// Phase 1: fault-axis determinism matrix.
// ---------------------------------------------------------------------

/// Builds the stress config of one axis cell. Ticks are 1µs apart in
/// the driver, so fault windows are placed in tick-scaled nanoseconds.
fn axis_config(seed: u64, smoke: bool, axis: &str) -> StressConfig {
    let mut cfg = StressConfig::smoke(seed);
    if !smoke {
        cfg.ticks = 600;
    }
    let remote_seed = seed ^ 0xCD40;
    let end = SimTime::from_nanos(cfg.ticks * 1_000);
    let quarter = SimTime::from_nanos(end.as_nanos() / 4);
    let setup = RemoteSetup::for_driver(remote_seed);
    let setup = match axis {
        "healthy" => setup,
        "partition" => setup.with_faults(FaultSchedule::new(remote_seed).with_window(
            quarter,
            Some(SimTime::from_nanos(end.as_nanos() / 2)),
            FaultKind::Partition,
        )),
        "brownout" => setup.with_faults(FaultSchedule::new(remote_seed).with_window(
            quarter,
            Some(SimTime::from_nanos(end.as_nanos() * 3 / 4)),
            FaultKind::RemoteBrownout {
                rate: BROWNOUT_RATE,
                // Just under the 12µs fetch deadline and far over the
                // 2µs hedge threshold: a stall eats the whole budget.
                stall: SimDuration::from_nanos(11_000),
            },
        )),
        "edge-flap" => setup.with_faults(FaultSchedule::new(remote_seed).with_window(
            SimTime::ZERO,
            None,
            FaultKind::EdgeCacheFlap { rate: 0.5 },
        )),
        other => panic!("unknown axis {other}"),
    };
    cfg.with_remote(setup)
}

/// Axis-specific counter gates: each fault shape must actually exercise
/// the part of the stack it targets.
pub fn axis_gates(axis: &str, c: &RemoteCounters) -> bool {
    match axis {
        // A healthy nanosecond-scale store never misses a deadline.
        "healthy" => c.served > 0 && c.failed == 0 && c.breaker_trips == 0,
        // A partition trips the breaker; the half-open probe must then
        // recover it once the window heals, and fetches serve again.
        "partition" => {
            c.served > 0
                && c.failed > 0
                && c.breaker_trips > 0
                && c.breaker_recoveries > 0
                && c.breaker_skipped > 0
        }
        // Brownout stalls eat deadlines (timeouts, not fast errors) and
        // still let the surviving fraction through.
        "brownout" => c.served > 0 && c.timeouts > 0 && c.breaker_trips > 0,
        // A flapping edge forces origin fetches, whose higher RTT
        // crosses the hedge threshold — without ever failing a fetch.
        "edge-flap" => c.served > 0 && c.failed == 0 && c.origin_fetches > 0 && c.hedges > 0,
        _ => false,
    }
}

/// Runs the fault-axis matrix: serial vs sharded equivalence plus a
/// same-seed serial rerun per axis, with single-threaded counters.
pub fn run_axes(seed: u64, smoke: bool) -> Vec<AxisCell> {
    ddc_core::parallel::run_cells(AXES.to_vec(), move |axis| {
        let cfg = axis_config(seed, smoke, axis);
        let serial = run_equivalence(&cfg, EngineKind::Serial);
        let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards: cfg.shards });
        let rerun = run_equivalence(&cfg, EngineKind::Serial);
        // Single-threaded stress is deterministic too; it carries the
        // counters the gates inspect.
        let out = run_stress(&cfg, 1);
        AxisCell {
            axis,
            identical: serial.json == sharded.json,
            rerun_identical: serial.json == rerun.json,
            stale_reads: serial.stale_reads + sharded.stale_reads + out.stale_reads,
            gates_ok: axis_gates(axis, &out.remote),
            remote: out.remote,
        }
    })
}

// ---------------------------------------------------------------------
// Phase 2: degradation ladder.
// ---------------------------------------------------------------------

/// The ladder phases, in report order.
pub const LADDER_PHASES: [&str; 3] = ["baseline", "brownout", "healed"];

fn ladder_config(seed: u64, smoke: bool, phase: &str) -> StressConfig {
    let mut cfg = if smoke {
        let mut c = StressConfig::smoke(seed);
        // Long enough that a run takes tens of milliseconds —
        // sub-millisecond runs would gate on scheduler noise.
        c.ticks = 1_000;
        c
    } else {
        StressConfig::standard(seed)
    };
    let setup = RemoteSetup::for_driver(seed ^ 0xB007);
    let setup = if phase == "brownout" {
        setup.with_faults(FaultSchedule::new(seed ^ 0xFA17).with_window(
            SimTime::ZERO,
            None,
            FaultKind::RemoteBrownout {
                rate: BROWNOUT_RATE,
                stall: SimDuration::from_nanos(11_000),
            },
        ))
    } else {
        setup
    };
    cfg = cfg.with_remote(setup);
    cfg
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(0.0, f64::max)
}

/// Runs the ladder: `repeats` interleaved rounds of baseline /
/// brownout / healed at [`LADDER_THREADS`] threads, reporting the
/// fastest throughput per phase. The work per run is fixed, so the
/// fastest repeat is the least-noise-disturbed sample; interleaving
/// decorrelates machine-load bursts across phases.
pub fn run_ladder(seed: u64, smoke: bool, repeats: usize) -> Vec<LadderCell> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); LADDER_PHASES.len()];
    let mut stale = [0u64; 3];
    let mut findings = [0u64; 3];
    let mut remote = [RemoteCounters::default(); 3];
    let mut total_ops = 0;
    for _ in 0..repeats.max(1) {
        for (i, phase) in LADDER_PHASES.iter().enumerate() {
            let cfg = ladder_config(seed, smoke, phase);
            let out = run_stress(&cfg, LADDER_THREADS);
            total_ops = out.total_ops;
            samples[i].push(out.ops_per_sec());
            stale[i] += out.stale_reads;
            findings[i] += out.findings.len() as u64;
            remote[i].absorb(&out.remote);
        }
    }
    LADDER_PHASES
        .iter()
        .enumerate()
        .map(|(i, phase)| LadderCell {
            phase,
            runs: samples[i].len(),
            total_ops,
            ops_per_sec_best: best(&samples[i]),
            stale_reads: stale[i],
            audit_findings: findings[i],
            remote: remote[i],
        })
        .collect()
}

// ---------------------------------------------------------------------
// Phase 3: cold-boot storm.
// ---------------------------------------------------------------------

fn cold_boot_once(seed: u64, smoke: bool) -> ColdBootCell {
    let tenants: u32 = if smoke { 8 } else { 24 };
    let image_pages: u64 = if smoke { 512 } else { 1_024 };
    let image = FileId(7);
    let mut cache = DoubleDeckerCache::new(CacheConfig::mem_and_ssd(4_096, 8_192));
    cache
        .register_remote(ChunkStore::new(RemoteId(1), RemoteConfig::cdn(seed)))
        .expect("fresh registry accepts the store");
    let mut pools = Vec::new();
    for t in 0..tenants {
        let vm = VmId(t + 1);
        cache.add_vm(vm, 100);
        let pool = cache.create_pool(vm, CachePolicy::mem(100));
        cache
            .bind_remote(vm, pool, RemoteId(1), RemoteFetchConfig::default())
            .expect("fresh pool binds");
        pools.push((vm, pool));
    }

    // The storm: every tenant pages the shared image in sequentially,
    // interleaved block by block. The clock rides each fetch's finish
    // time so in-flight slots drain at CDN-scale latencies.
    let mut now = SimTime::ZERO;
    let mut wrong = 0u64;
    for block in 0..image_pages {
        for &(vm, pool) in &pools {
            let addr = BlockAddr::new(image, block);
            match cache.get(now, vm, pool, addr) {
                GetOutcome::Hit { finish, version } => {
                    // The remote serves only the image's initial
                    // contents; anything else is a lie.
                    if version != PageVersion::INITIAL {
                        wrong += 1;
                    }
                    if finish > now {
                        now = finish;
                    }
                }
                // A healthy CDN must serve every cold page of the boot.
                _ => wrong += 1,
            }
            now += SimDuration::from_micros(2);
        }
    }
    let boot_done = now;

    // Each tenant now writes (flushes) a stride of the image: those
    // blocks are guest-owned and the remote must never serve them again.
    let mut localized = 0u64;
    for (i, &(vm, pool)) in pools.iter().enumerate() {
        let mut block = (i as u64) % 16;
        while block < image_pages {
            let addr = BlockAddr::new(image, block);
            cache.flush(vm, pool, addr);
            localized += 1;
            if !matches!(cache.get(now, vm, pool, addr), GetOutcome::Miss) {
                wrong += 1;
            }
            now += SimDuration::from_micros(1);
            block += 16;
        }
    }

    let mut totals = RemoteCounters::default();
    let mut overlap = 0u64;
    let mut uniform = true;
    let mut first: Option<RemoteCounters> = None;
    for &(vm, pool) in &pools {
        let b = cache.remote_binding(vm, pool).expect("binding survives");
        let c = b.counters();
        totals.absorb(&c);
        overlap += b.buffered_localized_overlap() as u64;
        match &first {
            None => first = Some(c),
            // The image, the store seed and the access pattern are
            // shared, so the storm is symmetric across tenants.
            Some(f) => uniform &= *f == c,
        }
    }

    ColdBootCell {
        tenants,
        image_pages,
        boot_millis: boot_done.as_nanos() as f64 / 1e6,
        remote: totals,
        wrong_reads: wrong,
        localized_blocks: localized,
        buffered_localized_overlap: overlap,
        per_tenant_uniform: uniform,
        identical: false, // filled by run_cold_boot
    }
}

/// Runs the cold-boot storm twice with the same seed and stamps the
/// byte-identical verdict into the cell.
pub fn run_cold_boot(seed: u64, smoke: bool) -> ColdBootCell {
    let mut cell = cold_boot_once(seed, smoke);
    let again = cold_boot_once(seed, smoke);
    cell.identical =
        cold_boot_json(&cell).to_string_pretty() == cold_boot_json(&again).to_string_pretty();
    cell
}

/// Runs the full harness: axis matrix, degradation ladder (5 repeats
/// smoke, 7 full), cold-boot storm.
pub fn run(seed: u64, smoke: bool) -> RemoteReport {
    let repeats = if smoke { 5 } else { 7 };
    RemoteReport {
        seed,
        smoke,
        axes: run_axes(seed, smoke),
        ladder: run_ladder(seed, smoke, repeats),
        cold_boot: run_cold_boot(seed, smoke),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_matrix_passes_and_is_deterministic() {
        let cells = run_axes(DEFAULT_SEED, true);
        assert_eq!(cells.len(), AXES.len());
        for c in &cells {
            assert!(c.identical, "{}: serial vs sharded diverged", c.axis);
            assert!(c.rerun_identical, "{}: rerun diverged", c.axis);
            assert_eq!(c.stale_reads, 0, "{}: stale reads", c.axis);
            assert!(
                c.gates_ok,
                "{}: counter gates failed: {:?}",
                c.axis, c.remote
            );
        }
    }

    #[test]
    fn ladder_stays_clean_with_breaker_cycling_under_brownout() {
        // One repeat: the throughput gates need a quiet machine and are
        // exercised by `repro remote`; here we gate on correctness and
        // the breaker actually cycling.
        let cells = run_ladder(DEFAULT_SEED, true, 1);
        assert_eq!(cells.len(), 3);
        for c in &cells {
            assert_eq!(c.stale_reads, 0, "{}: stale reads", c.phase);
            assert_eq!(c.audit_findings, 0, "{}: findings", c.phase);
            assert!(c.remote.served > 0, "{}: remote idle", c.phase);
        }
        let brown = &cells[1];
        assert!(brown.remote.timeouts > 0, "brownout never ate a deadline");
        assert!(brown.remote.breaker_trips > 0, "breaker never tripped");
        assert_eq!(cells[0].remote.failed, 0, "baseline remote failed");
    }

    #[test]
    fn cold_boot_storm_dedups_and_never_lies() {
        let c = run_cold_boot(DEFAULT_SEED, true);
        assert!(cold_boot_gates(&c), "cold boot gates failed: {c:?}");
        assert!(c.localized_blocks > 0);
        // 64-page chunks: the boot must be readahead-dominated.
        assert!(c.remote.readahead_hits > 10 * c.remote.fetches, "{c:?}");
    }
}
