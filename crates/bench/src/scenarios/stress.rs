//! `repro stress` — the concurrent serving-plane stress harness.
//!
//! Two gated phases over the `ddc-concurrent` crate:
//!
//! 1. **Equivalence matrix** — for every partition mode × shard count,
//!    the sharded engine driven single-threaded must produce a report
//!    byte-identical to the serial reference engine (same counters,
//!    same per-pool stats, same entries digest). This is the
//!    determinism contract: sharding is a locking strategy, not a
//!    semantic change.
//! 2. **Thread scaling** — the threaded driver at 1/2/4/8 OS threads
//!    against one shared sharded cache, each count once volatile and
//!    once journaled with per-tick group commits (DESIGN.md §14).
//!    Every run must finish with zero invariant-auditor findings and
//!    zero stale-read-oracle violations, and journaled rows must land
//!    a non-zero commit epoch. The 8-vs-1 throughput factor is
//!    *reported*, not gated: on a single-core runner it hovers around
//!    1x and only measures locking overhead. Commit epochs and segment
//!    compaction counts ride along as diagnostics.
//!
//! The equivalence phase is fully deterministic; the scaling phase
//! carries wall-clock numbers, so the JSON report is not expected to
//! be byte-stable across runs (the pass/fail verdict is).
//!
//! Both phases can run on the **standard** mix, (`--read-heavy`) on
//! the 95/5 get-heavy mix that the lock-free read plane (DESIGN.md §15)
//! targets, or (`--write-heavy`) on the put-dominant large-batch mix
//! the batched write plane (DESIGN.md §18) targets. The read-heavy
//! rows additionally report how many lookups were answered without any
//! lock; every row reports the batch plane's lock-acquisition and
//! journal-append counters.

use ddc_core::concurrent::{run_equivalence, run_stress, EngineKind, StressConfig};
use ddc_core::prelude::*;
use ddc_json::Json;

/// JSON schema tag of the stress report.
pub const SCHEMA: &str = "ddc-stress-v2";

/// Default master seed of the harness.
pub const DEFAULT_SEED: u64 = 0x57E5;

/// Shard counts exercised by the equivalence matrix.
pub const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

/// Thread counts exercised by the scaling phase.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Which workload mix the harness drives (both phases use the same
/// one, so the equivalence matrix vouches for exactly the mix the
/// scaling sweep then measures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StressMix {
    /// The general put/get/flush mix.
    Standard,
    /// 95/5 get-heavy: the lock-free read plane's target (DESIGN.md §15).
    ReadHeavy,
    /// Put-dominant with large per-tick batches: the batched write
    /// plane's target (DESIGN.md §18).
    WriteHeavy,
}

impl StressMix {
    /// Stable lowercase name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StressMix::Standard => "standard",
            StressMix::ReadHeavy => "read_heavy",
            StressMix::WriteHeavy => "write_heavy",
        }
    }
}

/// One cell of the equivalence matrix.
#[derive(Clone, Debug)]
pub struct EquivalenceCell {
    /// Partition mode under test.
    pub mode: PartitionMode,
    /// Shard count of the concurrent engine.
    pub shards: usize,
    /// Serial and sharded reports were byte-identical.
    pub identical: bool,
    /// Stale reads across both engines. Must be zero.
    pub stale_reads: u64,
}

/// One cell of the thread-scaling phase.
#[derive(Clone, Debug)]
pub struct ScalingCell {
    /// OS threads driving the shared cache.
    pub threads: usize,
    /// Whether the plane journaled with per-tick group commits
    /// (DESIGN.md §14) or ran volatile.
    pub journal: bool,
    /// Hypercall operations issued across all VMs.
    pub total_ops: u64,
    /// Wall-clock seconds of the drive phase.
    pub wall_secs: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Stale-read-oracle violations. Must be zero.
    pub stale_reads: u64,
    /// Invariant-auditor findings after the join. Must be zero.
    pub audit_findings: u64,
    /// Durability watermark after the final group commit. Diagnostic;
    /// must be non-zero on journaled cells, always zero on volatile.
    pub commit_epoch: u64,
    /// Segment compactions across the run. Diagnostic only.
    pub journal_compactions: u64,
    /// Lookups served without any lock (seqlock table + hot replicas,
    /// DESIGN.md §15). Diagnostic only.
    pub lockfree_misses: u64,
    /// Of those, lookups served straight from a per-handle hot-miss
    /// replica. Diagnostic only.
    pub replica_hits: u64,
    /// Operations that entered through a `*_many` batch entry point
    /// (DESIGN.md §18). Diagnostic only.
    pub batched_ops: u64,
    /// Shard-lock acquisitions made on behalf of whole batch groups.
    /// Diagnostic only.
    pub batch_lock_acquisitions: u64,
    /// Journal appends that flushed a whole scratch run in one call.
    /// Diagnostic only.
    pub batch_journal_appends: u64,
    /// Reserved puts re-tried after a stale placement hint, plus those
    /// that fell back to the lock-all path. Diagnostic only.
    pub reservation_retries: u64,
    /// Reserved puts that exhausted their retries and fell back to the
    /// lock-all path. Diagnostic only.
    pub reservation_fallbacks: u64,
}

/// A full stress run: equivalence matrix plus scaling sweep.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Smoke (CI-sized) or full workload.
    pub smoke: bool,
    /// Which workload mix the run drove.
    pub mix: StressMix,
    /// Equivalence matrix cells, mode-major.
    pub equivalence: Vec<EquivalenceCell>,
    /// Scaling cells, ascending thread count.
    pub scaling: Vec<ScalingCell>,
}

impl StressReport {
    /// 8-thread over 1-thread throughput factor on the volatile rows
    /// (0 when either is missing). Reported, never gated — see the
    /// module docs.
    pub fn scaling_factor(&self) -> f64 {
        let ops = |t: usize| {
            self.scaling
                .iter()
                .find(|c| c.threads == t && !c.journal)
                .map(|c| c.ops_per_sec)
        };
        match (ops(1), ops(8)) {
            (Some(one), Some(eight)) if one > 0.0 => eight / one,
            _ => 0.0,
        }
    }

    /// `true` when every gate held: all equivalence cells byte-identical
    /// with zero stale reads, all scaling cells clean, and every
    /// journaled scaling cell landed a real durability watermark.
    pub fn passed(&self) -> bool {
        self.equivalence
            .iter()
            .all(|c| c.identical && c.stale_reads == 0)
            && self.scaling.iter().all(|c| {
                c.stale_reads == 0 && c.audit_findings == 0 && (c.commit_epoch > 0) == c.journal
            })
    }

    /// Machine-readable report (schema [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut root = Json::object();
        root.set("schema", Json::Str(SCHEMA.to_owned()));
        root.set("seed", Json::Num(self.seed as f64));
        root.set("smoke", Json::Bool(self.smoke));
        root.set("mix", Json::Str(self.mix.name().to_owned()));
        root.set("passed", Json::Bool(self.passed()));
        root.set("scaling_factor_8_over_1", Json::Num(self.scaling_factor()));
        root.set(
            "equivalence",
            Json::Arr(
                self.equivalence
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("mode", Json::Str(mode_name(c.mode).to_owned()));
                        o.set("shards", Json::Num(c.shards as f64));
                        o.set("identical", Json::Bool(c.identical));
                        o.set("stale_reads", Json::Num(c.stale_reads as f64));
                        o
                    })
                    .collect(),
            ),
        );
        root.set(
            "scaling",
            Json::Arr(
                self.scaling
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("threads", Json::Num(c.threads as f64));
                        o.set("journal", Json::Bool(c.journal));
                        o.set("total_ops", Json::Num(c.total_ops as f64));
                        o.set("wall_secs", Json::Num(c.wall_secs));
                        o.set("ops_per_sec", Json::Num(c.ops_per_sec));
                        o.set("stale_reads", Json::Num(c.stale_reads as f64));
                        o.set("audit_findings", Json::Num(c.audit_findings as f64));
                        o.set("commit_epoch", Json::Num(c.commit_epoch as f64));
                        o.set(
                            "journal_compactions",
                            Json::Num(c.journal_compactions as f64),
                        );
                        o.set("lockfree_misses", Json::Num(c.lockfree_misses as f64));
                        o.set("replica_hits", Json::Num(c.replica_hits as f64));
                        o.set("batched_ops", Json::Num(c.batched_ops as f64));
                        o.set(
                            "batch_lock_acquisitions",
                            Json::Num(c.batch_lock_acquisitions as f64),
                        );
                        o.set(
                            "batch_journal_appends",
                            Json::Num(c.batch_journal_appends as f64),
                        );
                        o.set(
                            "reservation_retries",
                            Json::Num(c.reservation_retries as f64),
                        );
                        o.set(
                            "reservation_fallbacks",
                            Json::Num(c.reservation_fallbacks as f64),
                        );
                        o
                    })
                    .collect(),
            ),
        );
        let mut s = root.to_string_pretty();
        s.push('\n');
        s
    }
}

/// Stable lowercase name of a partition mode for tables and JSON.
pub fn mode_name(mode: PartitionMode) -> &'static str {
    match mode {
        PartitionMode::DoubleDecker => "doubledecker",
        PartitionMode::Global => "global",
        PartitionMode::Strict => "strict",
    }
}

fn base_config(seed: u64, smoke: bool, mix: StressMix) -> StressConfig {
    match mix {
        StressMix::ReadHeavy => {
            let mut cfg = StressConfig::read_heavy(seed);
            if smoke {
                cfg.ticks = 200;
            }
            cfg
        }
        StressMix::WriteHeavy => {
            let mut cfg = StressConfig::write_heavy(seed);
            if smoke {
                cfg.ticks = 100;
            }
            cfg
        }
        StressMix::Standard => {
            if smoke {
                StressConfig::smoke(seed)
            } else {
                StressConfig::standard(seed)
            }
        }
    }
}

/// Runs the equivalence matrix: every mode × shard count against the
/// serial reference.
pub fn run_equivalence_matrix(seed: u64, smoke: bool, mix: StressMix) -> Vec<EquivalenceCell> {
    let modes = [
        PartitionMode::DoubleDecker,
        PartitionMode::Global,
        PartitionMode::Strict,
    ];
    let mut cells = Vec::new();
    for mode in modes {
        let mut cfg = base_config(seed, smoke, mix);
        cfg.cache = cfg.cache.with_mode(mode);
        let serial = run_equivalence(&cfg, EngineKind::Serial);
        for shards in SHARD_COUNTS {
            cfg.shards = shards;
            let sharded = run_equivalence(&cfg, EngineKind::Sharded { shards });
            cells.push(EquivalenceCell {
                mode,
                shards,
                identical: serial.json == sharded.json,
                stale_reads: serial.stale_reads + sharded.stale_reads,
            });
        }
    }
    cells
}

/// Runs the thread-scaling sweep at [`THREAD_COUNTS`], each thread
/// count once volatile and once journaled with per-tick group commits
/// (the durability tax is the gap between the paired rows).
pub fn run_scaling(seed: u64, smoke: bool, mix: StressMix) -> Vec<ScalingCell> {
    let mut cells = Vec::new();
    for &threads in &THREAD_COUNTS {
        for journal in [false, true] {
            let mut cfg = base_config(seed, smoke, mix);
            cfg.journal = journal;
            let out = run_stress(&cfg, threads);
            cells.push(ScalingCell {
                threads,
                journal,
                total_ops: out.total_ops,
                wall_secs: out.elapsed.as_secs_f64(),
                ops_per_sec: out.ops_per_sec(),
                stale_reads: out.stale_reads,
                audit_findings: out.findings.len() as u64,
                commit_epoch: out.commit_epoch,
                journal_compactions: out.journal_compactions,
                lockfree_misses: out.lockfree_misses,
                replica_hits: out.replica_hits,
                batched_ops: out.batched_ops,
                batch_lock_acquisitions: out.batch_lock_acquisitions,
                batch_journal_appends: out.batch_journal_appends,
                reservation_retries: out.reservation_retries,
                reservation_fallbacks: out.reservation_fallbacks,
            });
        }
    }
    cells
}

/// Runs the full harness — equivalence matrix, then scaling sweep — on
/// the chosen [`StressMix`].
pub fn run(seed: u64, smoke: bool, mix: StressMix) -> StressReport {
    StressReport {
        seed,
        smoke,
        mix,
        equivalence: run_equivalence_matrix(seed, smoke, mix),
        scaling: run_scaling(seed, smoke, mix),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_harness_passes_all_gates() {
        let r = run(DEFAULT_SEED, true, StressMix::Standard);
        assert_eq!(r.equivalence.len(), 3 * SHARD_COUNTS.len());
        assert_eq!(r.scaling.len(), 2 * THREAD_COUNTS.len());
        assert!(r.passed(), "report: {}", r.to_json());
        for c in &r.scaling {
            assert_eq!(c.journal, c.commit_epoch > 0, "cell: {c:?}");
        }
    }

    #[test]
    fn equivalence_matrix_is_deterministic() {
        let a = run_equivalence_matrix(7, true, StressMix::Standard);
        let b = run_equivalence_matrix(7, true, StressMix::Standard);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(x.identical && y.identical);
            assert_eq!(x.stale_reads, 0);
        }
    }

    #[test]
    fn read_heavy_smoke_passes_and_serves_lock_free() {
        let r = run(DEFAULT_SEED, true, StressMix::ReadHeavy);
        assert!(r.passed(), "report: {}", r.to_json());
        // On its target mix the read plane must actually carry load in
        // every scaling cell.
        for c in &r.scaling {
            assert!(
                c.lockfree_misses > 0,
                "read plane idle at {} threads: {c:?}",
                c.threads
            );
        }
    }

    #[test]
    fn write_heavy_smoke_passes_and_batches() {
        let r = run(DEFAULT_SEED, true, StressMix::WriteHeavy);
        assert!(r.passed(), "report: {}", r.to_json());
        // On its target mix the batch plane must actually carry load in
        // every scaling cell, and journaled cells must land their
        // records through the amortized run-append path.
        for c in &r.scaling {
            assert!(
                c.batched_ops > 0 && c.batch_lock_acquisitions > 0,
                "batch plane idle at {} threads: {c:?}",
                c.threads
            );
            if c.journal {
                assert!(
                    c.batch_journal_appends > 0,
                    "journaled cell never batch-appended: {c:?}"
                );
            }
        }
    }
}
