//! `repro perf` — the perf-regression harness.
//!
//! Runs a fixed matrix of hot-path workloads (direct cache-op loops plus
//! one end-to-end experiment cell) and reports wall-clock simulated
//! ops/sec per cell. The matrix is deliberately small and fixed so the
//! numbers are comparable across commits: the committed
//! `BENCH_cache_ops.json` baseline is checked in CI with a generous
//! regression factor (wall-clock on shared runners is noisy; the check
//! catches algorithmic regressions — an accidental O(n) scan on the put
//! path — not percent-level drift).
//!
//! Cell workloads target the paths the hypercache overhaul touched:
//! weighted eviction + entitlement lookups, Global-FIFO tombstone
//! compaction, Strict-mode per-put entitlement prechecks, hybrid
//! spill/trickle (with and without the ghost admission filter), the
//! GET_STATS scan, and control-plane invalidation churn.

use std::time::Instant;

use ddc_core::cleancache::{HypercallChannel, SecondChanceCache};
use ddc_core::concurrent::{run_stress, StressConfig, StressOutcome};
use ddc_core::metrics::{snapshot_json, BatchCounters};
use ddc_core::parallel;
use ddc_core::prelude::*;
use ddc_json::Json;

/// JSON schema tag of the baseline file.
pub const SCHEMA: &str = "ddc-bench-cache-ops-v1";

/// CI fails when a cell drops below `baseline / REGRESSION_FACTOR`.
/// Median-of-[`REPEATS`] measurement suppresses scheduler noise, so the
/// gate can sit much closer to the baseline than a single-shot run
/// could afford.
pub const REGRESSION_FACTOR: f64 = 1.3;

/// Times each cell is run; the median measurement is reported.
pub const REPEATS: usize = 5;

/// Tolerated drift between the 2- and 8-thread eviction-contention
/// cells in a *committed baseline* (the 8-thread cell may sit at most
/// 10% below the 2-thread one). The duplicate-batch herd the
/// single-evictor gate removed inverted the pair far beyond this; the
/// tolerance only absorbs the few percent of per-thread scheduler
/// overhead a single-core runner charges every threaded cell, which no
/// gating scheme can remove.
pub const EVICT_INVERSION_TOLERANCE: f64 = 1.10;

/// Tolerated drift between the batched and unbatched channel cells in a
/// *committed baseline* (the batched cell may sit at most 5% below the
/// unbatched one). Batched hypercalls exist to amortize per-call
/// overhead, so a baseline where they run *slower* than the per-page
/// loop encodes a dispatch pathology (the outcome-vector copy pass the
/// in-place channel fix removed inverted the pair by ~35%); the small
/// tolerance only absorbs run-to-run noise between two single-threaded
/// cells measured back-to-back on the same machine.
pub const CHANNEL_INVERSION_TOLERANCE: f64 = 1.05;

/// The machine shape a perf run was measured on. Recorded into the
/// baseline so [`check_against`] can tell whether thread-scaling cells
/// are comparable at all: an 8-thread cell recorded on a 16-core box
/// and replayed on a 1-core CI runner measures a different thing
/// (contention and scheduling, not the code), so those cells are
/// skipped — loudly — instead of silently compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunnerProfile {
    /// What `DDC_THREADS` resolves to on this runner (the experiment
    /// fan-out width; recorded for provenance — perf cells pin their
    /// own thread counts, so this does not gate comparability).
    pub ddc_threads: u64,
    /// `std::thread::available_parallelism()` — the physical core
    /// budget threaded cells actually scale against. Thread-scaling
    /// cells are only compared when this matches the baseline's.
    pub available_parallelism: u64,
}

impl RunnerProfile {
    /// Profiles the current runner.
    pub fn current() -> RunnerProfile {
        RunnerProfile {
            ddc_threads: parallel::num_threads() as u64,
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// A parsed baseline: per-cell throughput rows plus the profile of the
/// runner that recorded them (`None` for baselines predating the
/// `runner` field — their thread-scaling cells are uncheckable and get
/// skipped until the baseline is re-recorded).
#[derive(Clone, Debug)]
pub struct Baseline {
    /// `(cell name, ops_per_sec)` rows in file order.
    pub rows: Vec<(String, f64)>,
    /// The recording machine's shape, when the baseline carries one.
    pub runner: Option<RunnerProfile>,
}

/// Outcome of a baseline comparison: hard failures plus the cells that
/// were deliberately not judged (with the reason inline, for the log).
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Regression-gate failures; non-empty fails CI.
    pub violations: Vec<String>,
    /// Thread-scaling cells excluded because the runner shapes differ
    /// (or the baseline predates runner recording). Informational.
    pub skipped: Vec<String>,
}

/// One measured cell of the matrix.
#[derive(Clone, Debug)]
pub struct PerfCell {
    /// Stable cell name (baseline rows are matched by it).
    pub name: &'static str,
    /// Simulated cache/workload operations the cell executed.
    pub sim_ops: u64,
    /// Wall-clock seconds the cell took.
    pub wall_secs: f64,
    /// `sim_ops / wall_secs`.
    pub ops_per_sec: f64,
}

fn addr(file: u64, block: u64) -> BlockAddr {
    BlockAddr::new(FileId(file), block)
}

fn cache(mode: PartitionMode, mem: u64, ssd: u64) -> DoubleDeckerCache {
    DoubleDeckerCache::new(CacheConfig {
        mem_capacity_pages: mem,
        ssd_capacity_pages: ssd,
        mode,
        admission: AdmissionConfig::off(),
    })
}

/// Mixed put/get traffic over two VMs × two mem pools under DoubleDecker
/// weighted eviction: the steady-state data path.
fn dd_put_get_mix(ops: u64) -> u64 {
    let mut c = cache(PartitionMode::DoubleDecker, 4096, 0);
    c.add_vm(VmId(1), 100);
    c.add_vm(VmId(2), 200);
    let pools: Vec<(VmId, PoolId)> = [(VmId(1), 60), (VmId(1), 40), (VmId(2), 100), (VmId(2), 50)]
        .iter()
        .map(|&(vm, w)| (vm, c.create_pool(vm, CachePolicy::mem(w))))
        .collect();
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        let (vm, pool) = pools[(i % 4) as usize];
        let a = addr(i % 16, i % 1024);
        c.put(SimTime::from_secs(1), vm, pool, a, PageVersion(1));
        done += 1;
        if i.is_multiple_of(2) && done < ops {
            let back = i.saturating_sub(512);
            let (gvm, gpool) = pools[(back % 4) as usize];
            c.get(
                SimTime::from_secs(1),
                gvm,
                gpool,
                addr(back % 16, back % 1024),
            );
            done += 1;
        }
        i += 1;
    }
    done
}

/// Overwrite/flush churn in Global mode: every removal leaves a
/// tombstone in the global FIFO, driving the lazy compaction path.
fn global_fifo_churn(ops: u64) -> u64 {
    let mut c = cache(PartitionMode::Global, 4096, 0);
    let pools: Vec<(VmId, PoolId)> = (1..=4u64)
        .map(|v| {
            let vm = VmId(v as u32);
            c.add_vm(vm, 100);
            (vm, c.create_pool(vm, CachePolicy::mem(100)))
        })
        .collect();
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        let (vm, pool) = pools[(i % 4) as usize];
        // A working set ~3× capacity: puts evict FIFO-globally, and the
        // overwrite/flush mix below keeps the tombstone ratio high.
        let a = addr(i % 8, i % 3072);
        c.put(SimTime::from_secs(1), vm, pool, a, PageVersion(1));
        done += 1;
        if i.is_multiple_of(3) && done < ops {
            c.flush(vm, pool, a);
            done += 1;
        }
        i += 1;
    }
    done
}

/// Put churn past the hard partitions of Strict mode: every put runs the
/// per-put entitlement precheck (a cached-table lookup after the
/// overhaul).
fn strict_partition_churn(ops: u64) -> u64 {
    let mut c = cache(PartitionMode::Strict, 2048, 0);
    c.add_vm(VmId(1), 100);
    c.add_vm(VmId(2), 100);
    let pools: Vec<(VmId, PoolId)> = [
        (VmId(1), 100),
        (VmId(1), 100),
        (VmId(2), 100),
        (VmId(2), 100),
    ]
    .iter()
    .map(|&(vm, w)| (vm, c.create_pool(vm, CachePolicy::mem(w))))
    .collect();
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        let (vm, pool) = pools[(i % 4) as usize];
        c.put(
            SimTime::from_secs(1),
            vm,
            pool,
            addr(i % 4, i % 1500),
            PageVersion(1),
        );
        done += 1;
        i += 1;
    }
    done
}

/// Hybrid pools spilling from a small memory share to SSD, with
/// trickle-down on memory eviction.
fn hybrid_spill_trickle(ops: u64) -> u64 {
    let mut c = cache(PartitionMode::DoubleDecker, 1024, 4096);
    c.add_vm(VmId(1), 100);
    let p1 = c.create_pool(VmId(1), CachePolicy::hybrid(100));
    let p2 = c.create_pool(VmId(1), CachePolicy::hybrid(100));
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        let pool = if i.is_multiple_of(2) { p1 } else { p2 };
        c.put(
            SimTime::from_secs(1),
            VmId(1),
            pool,
            addr(i % 8, i % 4000),
            PageVersion(1),
        );
        done += 1;
        if i.is_multiple_of(5) && done < ops {
            let back = i.saturating_sub(700);
            let gpool = if back.is_multiple_of(2) { p1 } else { p2 };
            c.get(
                SimTime::from_secs(1),
                VmId(1),
                gpool,
                addr(back % 8, back % 4000),
            );
            done += 1;
        }
        i += 1;
    }
    done
}

/// The hybrid spill path with the ghost admission filter engaged: every
/// mem→SSD spill pays the filter's table probe plus sliding-window
/// prune, and get hits on SSD-resident blocks pay the re-arm note.
/// Compare against `hybrid_spill_trickle` (same traffic, filter off)
/// to price the endurance plane.
fn ssd_admission_filter(ops: u64) -> u64 {
    let mut c = DoubleDeckerCache::new(
        CacheConfig::mem_and_ssd(1024, 4096).with_admission(AdmissionConfig::ghost(2048)),
    );
    c.add_vm(VmId(1), 100);
    let p1 = c.create_pool(VmId(1), CachePolicy::hybrid(100));
    let p2 = c.create_pool(VmId(1), CachePolicy::hybrid(100));
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        let pool = if i.is_multiple_of(2) { p1 } else { p2 };
        c.put(
            SimTime::from_secs(1),
            VmId(1),
            pool,
            addr(i % 8, i % 4000),
            PageVersion(1),
        );
        done += 1;
        if i.is_multiple_of(5) && done < ops {
            let back = i.saturating_sub(700);
            let gpool = if back.is_multiple_of(2) { p1 } else { p2 };
            c.get(
                SimTime::from_secs(1),
                VmId(1),
                gpool,
                addr(back % 8, back % 4000),
            );
            done += 1;
        }
        i += 1;
    }
    done
}

/// GET_STATS over a wide host: every `pool_stats` call resolves the
/// pool's entitlement (two binary searches into the cached share table
/// after the overhaul; two full host scans before it).
fn stats_entitlement_scan(ops: u64) -> u64 {
    let mut c = cache(PartitionMode::DoubleDecker, 8192, 0);
    let mut pools: Vec<(VmId, PoolId)> = Vec::new();
    for v in 1..=8u32 {
        let vm = VmId(v);
        c.add_vm(vm, 50 + u64::from(v) * 10);
        for w in 0..4u32 {
            let pool = c.create_pool(vm, CachePolicy::mem(50 + w * 25));
            pools.push((vm, pool));
            for b in 0..8 {
                c.put(
                    SimTime::from_secs(1),
                    vm,
                    pool,
                    addr(u64::from(v), b),
                    PageVersion(1),
                );
            }
        }
    }
    let mut done = 0;
    let mut i = 0usize;
    while done < ops {
        let (vm, pool) = pools[i % pools.len()];
        let _ = c.pool_stats(vm, pool);
        done += 1;
        i += 1;
    }
    done
}

/// Data-path puts interleaved with control-plane weight changes: the
/// worst case for entitlement caching (every reconfiguration drops the
/// tables, the next put rebuilds them).
fn reconfig_invalidation(ops: u64) -> u64 {
    let mut c = cache(PartitionMode::DoubleDecker, 4096, 0);
    let pools: Vec<(VmId, PoolId)> = (1..=4u64)
        .map(|v| {
            let vm = VmId(v as u32);
            c.add_vm(vm, 100);
            (vm, c.create_pool(vm, CachePolicy::mem(100)))
        })
        .collect();
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        if i.is_multiple_of(64) {
            c.set_vm_weight(VmId((i / 64 % 4 + 1) as u32), 50 + i % 200);
            done += 1;
        }
        let (vm, pool) = pools[(i % 4) as usize];
        c.put(
            SimTime::from_secs(1),
            vm,
            pool,
            addr(i % 8, i % 2048),
            PageVersion(1),
        );
        done += 1;
        i += 1;
    }
    done
}

/// The shared body of the batched/unbatched channel cells: the same
/// put/get/flush page-op stream, issued either as `BATCH`-page
/// vectorized hypercalls or one call per page. The throughput delta
/// between the two cells is the per-call overhead the batched
/// front-end amortizes.
const CHANNEL_BATCH: u64 = 32;

fn channel_mix(ops: u64, batched: bool) -> u64 {
    let mut c = cache(PartitionMode::DoubleDecker, 4096, 0);
    c.add_vm(VmId(1), 100);
    let pool = c.create_pool(VmId(1), CachePolicy::mem(100));
    let mut ch = HypercallChannel::new(VmId(1));
    let now = SimTime::from_secs(1);
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        let puts: Vec<(BlockAddr, PageVersion)> = (0..CHANNEL_BATCH)
            .map(|k| (addr((i + k) % 8, (i + k) % 2048), PageVersion(1)))
            .collect();
        if batched {
            ch.put_many(&mut c, now, pool, &puts);
        } else {
            for &(a, v) in &puts {
                ch.put(&mut c, now, pool, a, v);
            }
        }
        done += CHANNEL_BATCH;
        let back = i.saturating_sub(512);
        let gets: Vec<BlockAddr> = (0..CHANNEL_BATCH)
            .map(|k| addr((back + k) % 8, (back + k) % 2048))
            .collect();
        if batched {
            ch.get_many(&mut c, now, pool, &gets);
        } else {
            for &a in &gets {
                ch.get(&mut c, now, pool, a);
            }
        }
        done += CHANNEL_BATCH;
        if i.is_multiple_of(CHANNEL_BATCH * 4) {
            let flushes: Vec<BlockAddr> = (0..CHANNEL_BATCH)
                .map(|k| addr((i + k) % 8, (i + k) % 2048))
                .collect();
            if batched {
                ch.flush_many(&mut c, pool, &flushes);
            } else {
                for &a in &flushes {
                    ch.flush(&mut c, pool, a);
                }
            }
            done += CHANNEL_BATCH;
        }
        i += CHANNEL_BATCH;
    }
    done
}

/// Slab alloc/free heavy mix: puts populate the arena, flushes return
/// slots to the free-list, and the interleave keeps both the free-list
/// pop (reuse) and push (grow) paths hot along with overwrite-in-place.
/// This is the cell the arena refactor exists for — it never evicts, so
/// the time is pure index work.
fn arena_slot_churn(ops: u64) -> u64 {
    let mut c = cache(PartitionMode::DoubleDecker, 8192, 0);
    c.add_vm(VmId(1), 100);
    let p1 = c.create_pool(VmId(1), CachePolicy::mem(100));
    let p2 = c.create_pool(VmId(1), CachePolicy::mem(100));
    let mut done = 0;
    let mut i = 0u64;
    while done < ops {
        let pool = if i.is_multiple_of(2) { p1 } else { p2 };
        let a = addr(i % 16, i % 2048);
        c.put(SimTime::from_secs(1), VmId(1), pool, a, PageVersion(1));
        done += 1;
        // Flush a trailing window: slots free in a different order than
        // they were allocated, so the free-list actually cycles instead
        // of behaving like a bump allocator.
        if i.is_multiple_of(2) && done < ops {
            let back = i.saturating_sub(96);
            let bpool = if back.is_multiple_of(2) { p1 } else { p2 };
            c.flush(VmId(1), bpool, addr(back % 16, back % 2048));
            done += 1;
        }
        i += 1;
    }
    done
}

/// Read-heavy (95/5 get/put) threaded cell: the workload the lock-free
/// read plane exists for. In an exclusive cache's steady state nearly
/// every get is a definitive miss, answered by the per-shard seqlock
/// table (or a per-handle hot replica) without touching a lock — so on
/// a multi-core runner `read_scaling_threads_8` should run several
/// times the 1-thread cell; a single-core runner instead gates the
/// overhead of the lock-free path itself.
fn read_scaling_threads(threads: usize, ticks: u64) -> u64 {
    let mut cfg = StressConfig::read_heavy(0x9EAD);
    cfg.ticks = ticks;
    let out = run_stress(&cfg, threads);
    assert!(
        out.clean(),
        "read-scaling cell violated its gates: {} stale reads, findings {:?}",
        out.stale_reads,
        out.findings
    );
    assert!(
        out.lockfree_misses > 0,
        "the read plane served nothing in its own cell"
    );
    out.total_ops
}

/// The read-heavy mix against a tiny (8-block) working set: every
/// thread hammers the same few keys, so the cell measures the hot-miss
/// replica short-circuit plus seqlock retry behaviour under maximum
/// key contention.
fn hot_block_contention_threads(threads: usize, ticks: u64) -> u64 {
    let mut cfg = StressConfig::hot_blocks(0x407B);
    cfg.ticks = ticks;
    let out = run_stress(&cfg, threads);
    assert!(
        out.clean(),
        "hot-block cell violated its gates: {} stale reads, findings {:?}",
        out.stale_reads,
        out.findings
    );
    out.total_ops
}

/// Threaded put storm against an undersized store: nearly every put
/// runs the two-phase eviction path, so the cell measures victim
/// selection + single-shard locking under contention (the lock-all
/// scheme this replaced serialized every thread here). Since the
/// single-evictor gate landed, blocked putters no longer run duplicate
/// eviction batches, so the 8-thread cell must track the 2-thread cell
/// in the committed baseline instead of falling far below it (the old
/// inversion) — [`check_against`] rejects any baseline that encodes a
/// gap beyond [`EVICT_INVERSION_TOLERANCE`].
fn evict_contention_threads(threads: usize, ticks: u64) -> u64 {
    let mut cfg = StressConfig::eviction_storm(0xEC0);
    cfg.ticks = ticks;
    let out = run_stress(&cfg, threads);
    assert!(
        out.clean(),
        "eviction-contention cell violated its gates: {} stale reads, findings {:?}",
        out.stale_reads,
        out.findings
    );
    out.total_ops
}

/// When `DDC_PERF_TRACE=1`, dumps a stress-backed cell's batch-plane
/// counters to stderr after the run: lock acquisitions and journal
/// appends made on behalf of whole groups, reservation retries and
/// fallbacks, and journal compactions. Opt-in because the dump is per
/// repeat (5 lines per cell) and the counters are diagnostics, not
/// gated quantities — the dump is how a regression found by the gate
/// gets *attributed* (did lock acquisitions per op go up? did the
/// reservation path start falling back?).
fn trace_cell(name: &str, out: &StressOutcome) {
    if std::env::var("DDC_PERF_TRACE").as_deref() != Ok("1") {
        return;
    }
    let counters = BatchCounters {
        batched_ops: out.batched_ops,
        lock_acquisitions: out.batch_lock_acquisitions,
        journal_appends: out.batch_journal_appends,
        reservation_retries: out.reservation_retries,
        reservation_fallbacks: out.reservation_fallbacks,
    };
    eprintln!(
        "perf-trace {name}: {} journal_compactions={} total_ops={}",
        snapshot_json(&counters),
        out.journal_compactions,
        out.total_ops,
    );
}

/// Put-dominant batched cell: the write-heavy mix issues most of each
/// tick as one 64-page `put_many` group, so throughput tracks the
/// batch plane's ops-per-lock-acquisition rather than per-op dispatch.
/// The 1-thread cell is the tentpole's headline number (batching alone,
/// no parallelism); the 8-thread cell gates the reservation path under
/// contention. Pools alternate mem/ssd/hybrid policies, so hybrid puts
/// exercise the reserved path instead of lock-all.
fn batched_put_threads(threads: usize, ticks: u64) -> u64 {
    let mut cfg = StressConfig::write_heavy(0xBA7C);
    cfg.ticks = ticks;
    let out = run_stress(&cfg, threads);
    assert!(
        out.clean(),
        "batched-put cell violated its gates: {} stale reads, findings {:?}",
        out.stale_reads,
        out.findings
    );
    assert!(
        out.batched_ops > 0 && out.batch_lock_acquisitions > 0,
        "the batch plane served nothing in its own cell"
    );
    trace_cell(&format!("batched_put_threads_{threads}"), &out);
    out.total_ops
}

/// Balanced write-heavy scaling cell: equal thirds of flush, put and
/// get batches per tick, so every `*_many` entry point (and the
/// amortized journal drain behind flush groups) is on the measured
/// path. The 1/2/4/8 ladder measures how the batched write plane
/// scales across threads the same way `stress_threads_*` does for the
/// general mix.
fn mixed_write_scaling_threads(threads: usize, ticks: u64) -> u64 {
    let mut cfg = StressConfig::write_heavy(0x3117);
    cfg.writes_per_tick = 16;
    cfg.puts_per_tick = 24;
    cfg.gets_per_tick = 24;
    cfg.ticks = ticks;
    let out = run_stress(&cfg, threads);
    assert!(
        out.clean(),
        "mixed-write cell violated its gates: {} stale reads, findings {:?}",
        out.stale_reads,
        out.findings
    );
    assert!(
        out.batched_ops > 0,
        "the batch plane served nothing in its own cell"
    );
    trace_cell(&format!("mixed_write_scaling_threads_{threads}"), &out);
    out.total_ops
}

/// Multi-threaded stress cell: the `ddc-concurrent` driver against the
/// sharded cache at a given thread count. Total work is independent of
/// the thread count, so the 1/2/4/8 cells measure scaling directly
/// (on a single-core runner the factor hovers around 1x — the cells
/// then still gate the locking overhead). Every cell re-checks the
/// stress gates: zero audit findings, zero stale reads.
fn stress_threads(threads: usize, ticks: u64) -> u64 {
    let mut cfg = StressConfig::standard(0xD1CE);
    cfg.ticks = ticks;
    let out = run_stress(&cfg, threads);
    assert!(
        out.clean(),
        "stress perf cell violated its gates: {} stale reads, findings {:?}",
        out.stale_reads,
        out.findings
    );
    trace_cell(&format!("stress_threads_{threads}"), &out);
    out.total_ops
}

/// The same stress workload with per-shard journaling and a group
/// commit per tick (DESIGN.md §14): the gap between this cell and its
/// volatile `stress_threads_*` twin is the durability tax of the WAL
/// append + segment sync on the serving path.
fn journaled_stress_threads(threads: usize, ticks: u64) -> u64 {
    let mut cfg = StressConfig::standard(0xD1CE);
    cfg.ticks = ticks;
    cfg.journal = true;
    let out = run_stress(&cfg, threads);
    assert!(
        out.clean() && out.commit_epoch > 0,
        "journaled stress perf cell violated its gates: {} stale reads, \
         commit epoch {}, findings {:?}",
        out.stale_reads,
        out.commit_epoch,
        out.findings
    );
    trace_cell(&format!("journaled_stress_threads_{threads}"), &out);
    out.total_ops
}

/// Single-threaded stress mix with every pool bound to a simulated
/// chunk-store remote: misses walk the full fetch path (buffer probe,
/// breaker check, hedge/retry bookkeeping, chunk staging), so the cell
/// gates the overhead the remote tier adds to the miss path. One
/// thread keeps the counters deterministic; the throughput is the
/// point, not the interleaving.
fn remote_miss_fetch(ticks: u64) -> u64 {
    let mut cfg = StressConfig::remote_smoke(0x6E07);
    cfg.ticks = ticks;
    let out = run_stress(&cfg, 1);
    assert!(
        out.clean(),
        "remote-fetch perf cell violated its gates: {} stale reads, findings {:?}",
        out.stale_reads,
        out.findings
    );
    assert!(
        out.remote.served > 0,
        "the remote tier served nothing in its own cell"
    );
    out.total_ops
}

/// One end-to-end cell: a webserver VM through guest page cache,
/// cleancache channel and hypervisor cache, covering the full stack the
/// `repro` figures exercise. `ops` here is virtual milliseconds.
fn webserver_e2e(virtual_ms: u64) -> u64 {
    let mut host = Host::new(HostConfig::new(CacheConfig::mem_only(4096)));
    let vm = host.boot_vm(64, 100);
    let cg = host.create_container(vm, "web", 64, CachePolicy::mem(100));
    let web = Webserver::new(
        "web/t0",
        vm,
        cg,
        WebConfig {
            files: 200,
            ..WebConfig::default()
        },
        42,
    );
    let mut exp = Experiment::new(host, SimDuration::from_secs(1));
    exp.add_thread(Box::new(web));
    let report = exp.run_until(SimTime::from_nanos(virtual_ms * 1_000_000));
    report.threads[0].ops
}

type CellRunner = (&'static str, Box<dyn Fn() -> u64>);

/// Runs the full matrix. `smoke` divides the op budget by 10 for CI.
pub fn run_matrix(smoke: bool) -> Vec<PerfCell> {
    let scale = if smoke { 10 } else { 1 };
    let cells: Vec<CellRunner> = vec![
        (
            "dd_put_get_mix",
            Box::new(move || dd_put_get_mix(400_000 / scale)),
        ),
        (
            "global_fifo_churn",
            Box::new(move || global_fifo_churn(400_000 / scale)),
        ),
        (
            "strict_partition_churn",
            Box::new(move || strict_partition_churn(200_000 / scale)),
        ),
        (
            "hybrid_spill_trickle",
            Box::new(move || hybrid_spill_trickle(200_000 / scale)),
        ),
        (
            "ssd_admission_filter",
            Box::new(move || ssd_admission_filter(200_000 / scale)),
        ),
        (
            "stats_entitlement_scan",
            Box::new(move || stats_entitlement_scan(400_000 / scale)),
        ),
        (
            "reconfig_invalidation",
            Box::new(move || reconfig_invalidation(200_000 / scale)),
        ),
        (
            "webserver_e2e",
            Box::new(move || webserver_e2e(20_000 / scale)),
        ),
        // The channel pair carries an ordering assertion (batched must
        // not sit below unbatched in a committed baseline), so it gets
        // a 10x op budget: at the ~15M ops/s these cells run, the
        // default budget finishes in ~1ms and scheduler noise swamps
        // the few-percent per-call overhead the batching amortizes.
        (
            "channel_batched_mix",
            Box::new(move || channel_mix(2_000_000 / scale, true)),
        ),
        (
            "channel_unbatched_mix",
            Box::new(move || channel_mix(2_000_000 / scale, false)),
        ),
        (
            "arena_slot_churn",
            Box::new(move || arena_slot_churn(400_000 / scale)),
        ),
        (
            "read_scaling_threads_1",
            Box::new(move || read_scaling_threads(1, 500 / scale)),
        ),
        (
            "read_scaling_threads_2",
            Box::new(move || read_scaling_threads(2, 500 / scale)),
        ),
        (
            "read_scaling_threads_4",
            Box::new(move || read_scaling_threads(4, 500 / scale)),
        ),
        (
            "read_scaling_threads_8",
            Box::new(move || read_scaling_threads(8, 500 / scale)),
        ),
        (
            "hot_block_contention_threads_8",
            Box::new(move || hot_block_contention_threads(8, 500 / scale)),
        ),
        (
            "evict_contention_threads_2",
            Box::new(move || evict_contention_threads(2, 500 / scale)),
        ),
        (
            "evict_contention_threads_8",
            Box::new(move || evict_contention_threads(8, 500 / scale)),
        ),
        (
            "stress_threads_1",
            Box::new(move || stress_threads(1, 500 / scale)),
        ),
        (
            "stress_threads_2",
            Box::new(move || stress_threads(2, 500 / scale)),
        ),
        (
            "stress_threads_4",
            Box::new(move || stress_threads(4, 500 / scale)),
        ),
        (
            "stress_threads_8",
            Box::new(move || stress_threads(8, 500 / scale)),
        ),
        (
            "batched_put_threads_1",
            Box::new(move || batched_put_threads(1, 500 / scale)),
        ),
        (
            "batched_put_threads_8",
            Box::new(move || batched_put_threads(8, 500 / scale)),
        ),
        (
            "mixed_write_scaling_threads_1",
            Box::new(move || mixed_write_scaling_threads(1, 500 / scale)),
        ),
        (
            "mixed_write_scaling_threads_2",
            Box::new(move || mixed_write_scaling_threads(2, 500 / scale)),
        ),
        (
            "mixed_write_scaling_threads_4",
            Box::new(move || mixed_write_scaling_threads(4, 500 / scale)),
        ),
        (
            "mixed_write_scaling_threads_8",
            Box::new(move || mixed_write_scaling_threads(8, 500 / scale)),
        ),
        (
            "journaled_stress_threads_1",
            Box::new(move || journaled_stress_threads(1, 500 / scale)),
        ),
        (
            "journaled_stress_threads_8",
            Box::new(move || journaled_stress_threads(8, 500 / scale)),
        ),
        (
            "remote_miss_fetch",
            Box::new(move || remote_miss_fetch(500 / scale)),
        ),
    ];
    cells
        .into_iter()
        .map(|(name, run)| {
            // Median of REPEATS runs: one slow outlier (CI neighbor, page
            // fault storm) cannot fail the gate or inflate the baseline.
            let mut samples: Vec<(f64, u64)> = (0..REPEATS)
                .map(|_| {
                    let start = Instant::now();
                    let sim_ops = run();
                    (start.elapsed().as_secs_f64().max(1e-9), sim_ops)
                })
                .collect();
            samples.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (wall_secs, sim_ops) = samples[REPEATS / 2];
            PerfCell {
                name,
                sim_ops,
                wall_secs,
                ops_per_sec: sim_ops as f64 / wall_secs,
            }
        })
        .collect()
}

/// Serializes results into the committed baseline format, stamping the
/// current runner's profile. [`to_json_with`] takes an explicit profile
/// (tests use it to fabricate foreign-machine baselines).
pub fn to_json(cells: &[PerfCell], smoke: bool) -> String {
    to_json_with(cells, smoke, &RunnerProfile::current())
}

/// [`to_json`] with an explicit [`RunnerProfile`].
pub fn to_json_with(cells: &[PerfCell], smoke: bool, runner: &RunnerProfile) -> String {
    let mut root = Json::object();
    root.set("schema", Json::Str(SCHEMA.to_owned()));
    root.set("smoke", Json::Bool(smoke));
    let mut machine = Json::object();
    machine.set("ddc_threads", Json::Num(runner.ddc_threads as f64));
    machine.set(
        "available_parallelism",
        Json::Num(runner.available_parallelism as f64),
    );
    root.set("runner", machine);
    root.set(
        "results",
        Json::Arr(
            cells
                .iter()
                .map(|c| {
                    let mut o = Json::object();
                    o.set("name", Json::Str(c.name.to_owned()));
                    o.set("sim_ops", Json::Num(c.sim_ops as f64));
                    o.set("wall_secs", Json::Num(c.wall_secs));
                    o.set("ops_per_sec", Json::Num(c.ops_per_sec));
                    o
                })
                .collect(),
        ),
    );
    let mut s = root.to_string_pretty();
    s.push('\n');
    s
}

/// Parses a baseline file into its rows and (if present) the recording
/// runner's profile. Baselines written before the `runner` field are
/// still accepted — their profile comes back `None` and the checker
/// refuses to judge their thread-scaling cells.
pub fn parse_baseline(json: &str) -> Result<Baseline, String> {
    let doc = Json::parse(json).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("baseline schema is not {SCHEMA}"));
    }
    let runner = doc.get("runner").and_then(|m| {
        Some(RunnerProfile {
            ddc_threads: m.get("ddc_threads").and_then(Json::as_f64)? as u64,
            available_parallelism: m.get("available_parallelism").and_then(Json::as_f64)? as u64,
        })
    });
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or("baseline has no results array")?;
    let rows = results
        .iter()
        .map(|r| {
            let name = r
                .get("name")
                .and_then(Json::as_str)
                .ok_or("result without name")?;
            let ops = r
                .get("ops_per_sec")
                .and_then(Json::as_f64)
                .ok_or("result without ops_per_sec")?;
            Ok((name.to_owned(), ops))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Baseline { rows, runner })
}

/// Whether a cell's throughput depends on the machine's core count
/// (its workload pins an explicit thread count, by naming convention
/// `*_threads_N`).
fn is_thread_scaling(name: &str) -> bool {
    name.contains("_threads_")
}

/// Compares a run against a baseline: every baseline cell must still
/// exist and reach at least `baseline / factor` ops/sec.
///
/// Thread-scaling cells (`*_threads_N`) are only judged when the
/// baseline was recorded on a machine with the same available
/// parallelism as this one — an 8-thread cell recorded on 16 cores and
/// replayed on 1 core compares scheduler thrash against real scaling,
/// which gates nothing. Mismatched (or unrecorded) profiles move those
/// cells into [`CheckReport::skipped`] with the reason; the cells must
/// still *run* (a missing cell is a violation regardless).
///
/// The *baseline itself* is also asserted: its 8-thread eviction-
/// contention cell must not sit more than
/// [`EVICT_INVERSION_TOLERANCE`] below its 2-thread cell. The single-
/// evictor gate fixed the duplicate-batch pathology that used to invert
/// them, and this check keeps anyone from re-committing a baseline that
/// encodes the inversion (it judges committed data, not this run's
/// timings, so it cannot flake on a noisy machine).
pub fn check_against(cells: &[PerfCell], baseline: &Baseline, factor: f64) -> CheckReport {
    check_against_with(cells, baseline, factor, &RunnerProfile::current())
}

/// [`check_against`] with an explicit current-runner profile (tests use
/// it to simulate checking on a machine shape other than this one).
pub fn check_against_with(
    cells: &[PerfCell],
    baseline: &Baseline,
    factor: f64,
    current: &RunnerProfile,
) -> CheckReport {
    let mut report = CheckReport::default();
    let rows = &baseline.rows;
    let base = |n: &str| rows.iter().find(|(name, _)| name == n).map(|&(_, o)| o);
    // The inversion check judges the baseline against itself — both
    // cells were recorded on the same machine, so it holds regardless
    // of where the check runs.
    if let (Some(two), Some(eight)) = (
        base("evict_contention_threads_2"),
        base("evict_contention_threads_8"),
    ) {
        if eight * EVICT_INVERSION_TOLERANCE < two {
            report.violations.push(format!(
                "baseline encodes the eviction-contention inversion: \
                 8 threads {eight:.0} ops/s < 2 threads {two:.0} ops/s — re-record it"
            ));
        }
    }
    // Same self-judgment for the channel pair: a committed baseline in
    // which the batched hypercall cell runs slower than the per-page
    // loop encodes the vectorized-dispatch pathology (the copy pass the
    // in-place channel fix removed), and must be re-recorded rather
    // than quietly gated against.
    if let (Some(batched), Some(unbatched)) =
        (base("channel_batched_mix"), base("channel_unbatched_mix"))
    {
        if batched * CHANNEL_INVERSION_TOLERANCE < unbatched {
            report.violations.push(format!(
                "baseline encodes the channel-batching inversion: \
                 batched {batched:.0} ops/s < unbatched {unbatched:.0} ops/s — re-record it"
            ));
        }
    }
    let threaded_comparable = match baseline.runner {
        Some(b) => b.available_parallelism == current.available_parallelism,
        None => false,
    };
    for (name, base_ops) in rows {
        let cell = cells.iter().find(|c| c.name == name.as_str());
        if cell.is_none() {
            report
                .violations
                .push(format!("cell {name} missing from this run"));
            continue;
        }
        if is_thread_scaling(name) && !threaded_comparable {
            report.skipped.push(match baseline.runner {
                Some(b) => format!(
                    "{name}: baseline recorded on {} cores, this runner has {} — \
                     thread-scaling cell not comparable",
                    b.available_parallelism, current.available_parallelism
                ),
                None => format!(
                    "{name}: baseline predates runner recording — re-record it to \
                     gate thread-scaling cells"
                ),
            });
            continue;
        }
        if let Some(c) = cell {
            if c.ops_per_sec * factor < *base_ops {
                report.violations.push(format!(
                    "{name}: {:.0} ops/s is a >{factor}x regression from baseline {:.0} ops/s",
                    c.ops_per_sec, base_ops
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_and_counts_ops() {
        // A tiny fraction of the real budget keeps the test fast while
        // still driving every cell through its workload shape.
        for cell in [
            dd_put_get_mix(2_000),
            global_fifo_churn(2_000),
            strict_partition_churn(2_000),
            hybrid_spill_trickle(2_000),
            ssd_admission_filter(2_000),
            stats_entitlement_scan(2_000),
            reconfig_invalidation(2_000),
            arena_slot_churn(2_000),
        ] {
            assert!(cell >= 2_000);
        }
        assert!(webserver_e2e(200) > 0);
        assert!(channel_mix(2_000, true) >= 2_000);
        assert!(channel_mix(2_000, false) >= 2_000);
        assert!(stress_threads(2, 20) > 0);
        assert!(batched_put_threads(2, 20) > 0);
        assert!(mixed_write_scaling_threads(2, 20) > 0);
        assert!(evict_contention_threads(2, 20) > 0);
        assert!(journaled_stress_threads(2, 20) > 0);
        assert!(read_scaling_threads(2, 20) > 0);
        assert!(hot_block_contention_threads(2, 20) > 0);
        assert!(remote_miss_fetch(40) > 0);
    }

    #[test]
    fn journaled_and_volatile_stress_cells_do_identical_work() {
        // The durability-tax comparison is only honest if both cells
        // issue the same op stream; the op counters prove they do.
        assert_eq!(stress_threads(2, 20), journaled_stress_threads(2, 20));
    }

    #[test]
    fn batched_and_unbatched_channel_cells_do_identical_work() {
        // The two cells are only comparable if the page-op streams are
        // the same; the op counters prove they are.
        assert_eq!(channel_mix(5_000, true), channel_mix(5_000, false));
    }

    #[test]
    fn json_roundtrip_and_check() {
        let cells = vec![
            PerfCell {
                name: "dd_put_get_mix",
                sim_ops: 1000,
                wall_secs: 0.5,
                ops_per_sec: 2000.0,
            },
            PerfCell {
                name: "global_fifo_churn",
                sim_ops: 1000,
                wall_secs: 0.25,
                ops_per_sec: 4000.0,
            },
        ];
        let json = to_json(&cells, true);
        let baseline = parse_baseline(&json).expect("roundtrip");
        assert_eq!(baseline.rows.len(), 2);
        assert_eq!(baseline.rows[0], ("dd_put_get_mix".to_owned(), 2000.0));
        assert_eq!(baseline.runner, Some(RunnerProfile::current()));
        let report = check_against(&cells, &baseline, REGRESSION_FACTOR);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.skipped.is_empty(), "{:?}", report.skipped);

        // A 2x+ drop (or a vanished cell) must be flagged.
        let slow = vec![PerfCell {
            name: "dd_put_get_mix",
            sim_ops: 1000,
            wall_secs: 2.0,
            ops_per_sec: 500.0,
        }];
        let report = check_against(&slow, &baseline, REGRESSION_FACTOR);
        assert_eq!(report.violations.len(), 2);
    }

    #[test]
    fn skips_thread_scaling_cells_on_core_count_mismatch() {
        let cell = |name, ops_per_sec| PerfCell {
            name,
            sim_ops: 1000,
            wall_secs: 1.0,
            ops_per_sec,
        };
        let recorded = RunnerProfile {
            ddc_threads: 8,
            available_parallelism: 16,
        };
        let cells = vec![
            cell("dd_put_get_mix", 1000.0),
            cell("stress_threads_8", 1000.0),
        ];
        let baseline = parse_baseline(&to_json_with(&cells, true, &recorded)).expect("roundtrip");

        // Same shape: the threaded cell is judged (and a 10x drop on it
        // is a violation).
        let slow = vec![
            cell("dd_put_get_mix", 1000.0),
            cell("stress_threads_8", 100.0),
        ];
        let same = check_against_with(&slow, &baseline, REGRESSION_FACTOR, &recorded);
        assert_eq!(same.violations.len(), 1, "{:?}", same.violations);
        assert!(same.skipped.is_empty(), "{:?}", same.skipped);

        // Different core count: the same 10x drop is skipped, not
        // flagged — but the scalar cells are still gated.
        let one_core = RunnerProfile {
            ddc_threads: 1,
            available_parallelism: 1,
        };
        let diff = check_against_with(&slow, &baseline, REGRESSION_FACTOR, &one_core);
        assert!(diff.violations.is_empty(), "{:?}", diff.violations);
        assert_eq!(diff.skipped.len(), 1, "{:?}", diff.skipped);
        assert!(diff.skipped[0].contains("stress_threads_8"));
        let scalar_slow = vec![
            cell("dd_put_get_mix", 100.0),
            cell("stress_threads_8", 100.0),
        ];
        let diff = check_against_with(&scalar_slow, &baseline, REGRESSION_FACTOR, &one_core);
        assert_eq!(diff.violations.len(), 1, "{:?}", diff.violations);
        assert!(diff.violations[0].contains("dd_put_get_mix"));

        // A vanished threaded cell is a violation even when its timing
        // would have been skipped: the cell must still run.
        let gone = vec![cell("dd_put_get_mix", 1000.0)];
        let missing = check_against_with(&gone, &baseline, REGRESSION_FACTOR, &one_core);
        assert_eq!(missing.violations.len(), 1, "{:?}", missing.violations);
        assert!(missing.violations[0].contains("missing"));

        // A legacy baseline with no runner profile cannot vouch for its
        // threaded cells either way: skip with a re-record hint.
        let legacy = Baseline {
            rows: baseline.rows.clone(),
            runner: None,
        };
        let report = check_against_with(&slow, &legacy, REGRESSION_FACTOR, &recorded);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.skipped.len(), 1, "{:?}", report.skipped);
        assert!(report.skipped[0].contains("re-record"));
    }

    #[test]
    fn check_rejects_baseline_encoding_the_eviction_inversion() {
        let cell = |name, ops_per_sec| PerfCell {
            name,
            sim_ops: 1000,
            wall_secs: 1.0,
            ops_per_sec,
        };
        // Inverted committed baseline (8 more than the tolerance below
        // 2): flagged even though this run's own timings are fine.
        let bad = vec![
            cell("evict_contention_threads_2", 1000.0),
            cell("evict_contention_threads_8", 850.0),
        ];
        let baseline = parse_baseline(&to_json(&bad, true)).expect("roundtrip");
        let violations = check_against(&bad, &baseline, REGRESSION_FACTOR).violations;
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("inversion"), "{violations:?}");

        // Healthy baseline (8 within tolerance of 2): clean.
        let good = vec![
            cell("evict_contention_threads_2", 1000.0),
            cell("evict_contention_threads_8", 950.0),
        ];
        let baseline = parse_baseline(&to_json(&good, true)).expect("roundtrip");
        let report = check_against(&good, &baseline, REGRESSION_FACTOR);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn check_rejects_baseline_encoding_the_channel_inversion() {
        let cell = |name, ops_per_sec| PerfCell {
            name,
            sim_ops: 1000,
            wall_secs: 1.0,
            ops_per_sec,
        };
        // Inverted committed baseline (batched more than the tolerance
        // below unbatched): flagged even though this run's own timings
        // are fine.
        let bad = vec![
            cell("channel_batched_mix", 900.0),
            cell("channel_unbatched_mix", 1000.0),
        ];
        let baseline = parse_baseline(&to_json(&bad, true)).expect("roundtrip");
        let violations = check_against(&bad, &baseline, REGRESSION_FACTOR).violations;
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("channel-batching inversion"),
            "{violations:?}"
        );

        // Healthy baseline (batched ahead of unbatched): clean.
        let good = vec![
            cell("channel_batched_mix", 1200.0),
            cell("channel_unbatched_mix", 1000.0),
        ];
        let baseline = parse_baseline(&to_json(&good, true)).expect("roundtrip");
        let report = check_against(&good, &baseline, REGRESSION_FACTOR);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn rejects_foreign_schema() {
        assert!(parse_baseline("{\"schema\": \"other\", \"results\": []}").is_err());
        assert!(parse_baseline("not json").is_err());
    }
}
