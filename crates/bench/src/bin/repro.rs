//! `repro` — regenerates every table and figure of the DoubleDecker
//! paper's evaluation, printing paper-style tables and ASCII occupancy
//! charts, optionally dumping JSON reports.
//!
//! ```sh
//! cargo run --release -p ddc-bench --bin repro -- all
//! cargo run --release -p ddc-bench --bin repro -- fig8 --json out/
//! cargo run --release -p ddc-bench --bin repro -- table2 --secs 120
//! ```

use std::env;
use std::fs;
use std::path::PathBuf;

use ddc_bench::scenarios::common::{print_series, to_mb, FourKind};
use ddc_bench::scenarios::{
    ablations, chaos, cooperative, dynamic, faults, modes, motivation, perf, policies, remote,
    splits, stress, wear,
};
use ddc_core::prelude::*;

struct Args {
    command: String,
    secs: Option<u64>,
    json_dir: Option<PathBuf>,
    smoke: bool,
    read_heavy: bool,
    write_heavy: bool,
    check: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_owned(),
        secs: None,
        json_dir: None,
        smoke: false,
        read_heavy: false,
        write_heavy: false,
        check: None,
        out: None,
    };
    let mut it = env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--secs" => {
                args.secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .or_else(|| panic!("--secs needs an integer"));
            }
            "--json" => {
                args.json_dir = Some(PathBuf::from(it.next().expect("--json needs a directory")));
            }
            "--smoke" => args.smoke = true,
            "--read-heavy" => args.read_heavy = true,
            "--write-heavy" => args.write_heavy = true,
            "--check" => {
                args.check = Some(PathBuf::from(it.next().expect("--check needs a file")));
            }
            "--out" => {
                args.out = Some(PathBuf::from(it.next().expect("--out needs a file")));
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') => args.command = cmd.to_owned(),
            other => panic!("unknown flag {other} (see --help)"),
        }
    }
    args
}

fn print_help() {
    println!(
        "repro — regenerate the DoubleDecker paper's tables and figures\n\n\
         usage: repro [COMMAND] [--secs N] [--json DIR]\n\n\
         commands:\n\
           fig3    per-container cache usage, containers run separately\n\
           fig4    non-deterministic sharing (same start + 200s-offset variants)\n\
           fig5    throughput vs in-VM:cache memory split (4 apps)\n\
           table1  guest memory diagnosis at the 1:1 split\n\
           fig8    occupancy under Global / DDMem / DDSSD\n\
           fig9    videoserver occupancy under the three modes\n\
           table2  throughput/latency/lookup-to-store/evictions per mode\n\
           fig10   speedups of DDMem/DDMemEx/DDHybrid over Global (+ Table 3)\n\
           fig11   occupancy under Global / DDMem / DDHybrid\n\
           table4  Morai++ (centralized) vs DoubleDecker (cooperative)\n\
           fig12   dynamic container policy changes\n\
           fig13   dynamic VM provisioning\n\
           ext     extensions: compression ablation, hybrid store, adaptive weights\n\
           faults  SSD brownout: graceful degradation and recovery\n\
           chaos   crash-and-recovery sweep over randomized journal prefixes,\n\
                   plus threaded-plane kills (per-shard segment cuts, 8-thread\n\
                   continuation) [--smoke] [--out FILE]; exits non-zero on any\n\
                   stale read or invariant violation\n\
           stress  concurrent serving plane: serial-vs-sharded equivalence\n\
                   matrix + 1/2/4/8-thread stress [--smoke] [--out FILE]\n\
                   [--read-heavy: 95/5 get/put mix through the lock-free\n\
                   read plane] [--write-heavy: put-dominant large-batch mix\n\
                   through the batched write plane]; exits non-zero on any\n\
                   divergence, stale read or finding\n\
           remote  remote chunk-store tier: fault-axis determinism matrix,\n\
                   8-thread degradation ladder (baseline/brownout/healed) and\n\
                   the cold-boot storm [--smoke] [--out FILE]; exits non-zero\n\
                   on any divergence, stale read or missed robustness gate\n\
           wear    SSD endurance plane: ghost admission + TTL demotion over\n\
                   write-heavy / scan-polluted / phase-change tenant mixes\n\
                   [--smoke] [--out FILE] [--check BASELINE]; exits non-zero\n\
                   on a divergence, a missed reduction/hit gate or a wear\n\
                   regression against the committed BENCH_wear.json\n\
           perf    cache-ops perf matrix [--smoke] [--out FILE] [--check BASELINE]\n\
           all     everything above except perf (default)\n\n\
         parallelism: independent experiment cells fan out across cores\n\
         (override worker count with DDC_THREADS=N; N=1 forces serial).\n"
    );
}

fn maybe_dump(args: &Args, name: &str, report: &ddc_core::ExperimentReport) {
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, report.to_json()).expect("write json");
        println!("[json written to {}]", path.display());
    }
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("== {title}");
    println!("{}", "=".repeat(74));
}

fn fig3(args: &Args) {
    banner("Fig 3: hypervisor cache usage, containers run SEPARATELY (Global mode)");
    let secs = SimTime::from_secs(args.secs.unwrap_or(120));
    for c in [1u8, 2] {
        let report = motivation::fig3_alone(c, secs);
        println!(
            "\ncontainer {c} alone ({} webserver threads):",
            if c == 1 { 2 } else { 3 }
        );
        print_series(&report, &[&format!("container{c} (MB)")]);
        maybe_dump(args, &format!("fig3_container{c}"), &report);
    }
    println!("shape check: each container alone ramps to the full cache capacity.");
}

fn fig4(args: &Args) {
    banner("Fig 4: non-deterministic sharing under the Global cache");
    let secs = SimTime::from_secs(args.secs.unwrap_or(150));
    let names = ["container1 (MB)", "container2 (MB)"];

    println!("\n(a) same start time:");
    let a = motivation::fig4_together(SimDuration::ZERO, secs);
    print_series(&a, &names);
    let end = secs.as_secs_f64();
    let c1 = a
        .series(names[0])
        .unwrap()
        .mean_in(end * 0.6, end)
        .unwrap_or(0.0);
    let c2 = a
        .series(names[1])
        .unwrap()
        .mean_in(end * 0.6, end)
        .unwrap_or(0.0);
    println!(
        "steady-state means: container1 {c1:.1} MB, container2 {c2:.1} MB (ratio {:.2})",
        c2 / c1.max(1e-9)
    );
    maybe_dump(args, "fig4a", &a);

    println!("\n(b) container 2 offset by 1/3 of the run:");
    let offset = SimDuration::from_secs(args.secs.unwrap_or(150) / 3);
    let b = motivation::fig4_together(offset, secs);
    print_series(&b, &names);
    maybe_dump(args, "fig4b", &b);
    println!(
        "shape check: (a) the 3-thread container holds ~2x the 2-thread one;\n\
         (b) container 1 dominates early, container 2 overtakes after its start."
    );
}

fn fig5(args: &Args) {
    banner("Fig 5: throughput vs in-VM:hypervisor-cache split");
    let secs = SimTime::from_secs(args.secs.unwrap_or(90));
    let sweep = splits::fig5_sweep(secs);
    let mut table = TextTable::new(vec![
        "split (VM:cache MiB)",
        "webserver",
        "redis",
        "mongodb",
        "mysql",
    ]);
    for (i, &container_mb) in splits::SPLITS_MB.iter().enumerate() {
        let mut row = vec![format!(
            "{container_mb}:{}",
            splits::BUDGET_MB - container_mb
        )];
        for app in splits::SplitApp::ALL {
            let (_, results) = sweep.iter().find(|(a, _)| *a == app).unwrap();
            row.push(format!("{:.0}", results[i].ops_per_sec));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "shape check (paper Fig 5): webserver & mongodb roughly flat across splits;\n\
         redis extreme at full-VM memory and collapsing at small shares; mysql degrades."
    );
}

fn table1(args: &Args) {
    banner("Table 1: guest OS metrics at the equal (1:1) split");
    let secs = SimTime::from_secs(args.secs.unwrap_or(90));
    let rows = splits::table1(secs);
    let mut table = TextTable::new(vec![
        "application",
        "swap used (MB)",
        "anon memory (MB)",
        "hypervisor cache (MB)",
    ]);
    for (app, r) in rows {
        table.row(vec![
            app.name().to_owned(),
            format!("{:.1}", to_mb(r.swapped_pages)),
            format!("{:.1}", to_mb(r.anon_pages)),
            format!("{:.1}", to_mb(r.hcache_pages)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check (paper Table 1): webserver/mongodb -> no swap, cache full;\n\
         redis/mysql -> heavy swap, near-zero hypervisor cache."
    );
}

fn fig8_fig9_table2(args: &Args, which: &str) {
    banner("Figs 8-9 + Table 2: Global vs DDMem vs DDSSD (4 workloads)");
    let secs = SimTime::from_secs(args.secs.unwrap_or(600));
    let runs = modes::run_all_modes(secs);

    if which == "fig8" || which == "all" {
        for run in &runs {
            println!("\n--- {} : web/proxy/mail occupancy ---", run.mode.name());
            print_series(
                &run.report,
                &["webserver (MB)", "proxycache (MB)", "mail (MB)"],
            );
        }
    }
    if which == "fig9" || which == "all" {
        for run in &runs {
            println!("\n--- {} : videoserver occupancy ---", run.mode.name());
            print_series(&run.report, &["videoserver (MB)"]);
        }
    }

    println!("\nTable 2:");
    let mut table = TextTable::new(vec![
        "workload",
        "mode",
        "throughput (MB/s)",
        "latency (ms)",
        "lookup-to-store (%)",
        "evictions",
    ]);
    for kind in FourKind::ALL {
        for run in &runs {
            let (_, r) = run.results.iter().find(|(k, _)| *k == kind).unwrap();
            table.row(vec![
                kind.name().to_owned(),
                run.mode.name().to_owned(),
                format!("{:.1}", r.mb_per_sec),
                format!("{:.2}", r.latency_ms),
                format!("{:.0}", r.lookup_to_store),
                r.evictions.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    for run in &runs {
        maybe_dump(
            args,
            &format!("fig8_{}", run.mode.name().replace([' ', '(', ')'], "")),
            &run.report,
        );
    }
    println!(
        "shape check (paper Table 2): DDMem web ~6x Global web; Global evicts\n\
         web/mail heavily while DD victimizes only the videoserver; SSD mode has\n\
         zero evictions, slower web/video, but improves the mail workload."
    );
}

fn fig10_fig11(args: &Args, which: &str) {
    banner("Table 3 + Figs 10-11: differentiated policies vs Global");
    let secs = SimTime::from_secs(args.secs.unwrap_or(600));

    println!("\nTable 3 (cache settings):");
    let mut t3 = TextTable::new(vec![
        "setting",
        "webserver",
        "proxycache",
        "mail",
        "videoserver",
    ]);
    for s in policies::PolicySetting::ALL.iter().skip(1) {
        let p = s.policies();
        t3.row(vec![
            s.name().to_owned(),
            p[0].to_string(),
            p[1].to_string(),
            p[2].to_string(),
            p[3].to_string(),
        ]);
    }
    println!("{}", t3.render());

    let runs = policies::fig10_runs(secs);
    let baseline = &runs[0];

    if which == "fig10" || which == "all" {
        println!("Fig 10 (speedup over Global):");
        let mut table = TextTable::new(vec!["workload", "DDMem", "DDMemEx", "DDHybrid"]);
        for kind in FourKind::ALL {
            let mut row = vec![kind.name().to_owned()];
            for run in runs.iter().skip(1) {
                let s = policies::speedups(baseline, run);
                let v = s.iter().find(|(k, _)| *k == kind).map(|(_, v)| *v).unwrap();
                row.push(format!("{v:.2}x"));
            }
            table.row(row);
        }
        println!("{}", table.render());
    }

    if which == "fig11" || which == "all" {
        for run in &runs {
            if matches!(
                run.setting,
                policies::PolicySetting::Global
                    | policies::PolicySetting::DdMem
                    | policies::PolicySetting::DdHybrid
            ) {
                println!("\n--- Fig 11 occupancy: {} ---", run.setting.name());
                print_series(
                    &run.report,
                    &[
                        "webserver (MB)",
                        "proxycache (MB)",
                        "mail (MB)",
                        "videoserver (MB)",
                    ],
                );
            }
        }
    }
    for run in &runs {
        maybe_dump(args, &format!("fig10_{}", run.setting.name()), &run.report);
    }
    println!(
        "shape check (paper Fig 10): webserver and proxycache speed up strongly\n\
         under all DD policies; mail is marginal; videoserver dips under\n\
         DDMem/DDMemEx and recovers (beats Global) under DDHybrid on the SSD."
    );
}

fn table4(args: &Args) {
    banner("Table 4: Morai++ (centralized) vs DoubleDecker (cooperative)");
    let secs = SimTime::from_secs(args.secs.unwrap_or(40));
    let (morai, dd) = cooperative::table4(secs);
    let mut table = TextTable::new(vec![
        "workload (SLA ops/s)",
        "technique",
        "throughput (ops/s)",
        "app memory (MB)",
        "hcache (MB)",
        "SLA met",
    ]);
    for (i, app) in cooperative::CoopApp::ALL.iter().enumerate() {
        for run in [&morai, &dd] {
            let (_, r) = run.results.iter().find(|(a, _)| a == app).unwrap();
            table.row(vec![
                format!("{} ({:.0})", app.name(), cooperative::SLAS[i]),
                run.technique.to_owned(),
                format!("{:.0}", r.ops_per_sec),
                format!("{:.0}", r.app_memory_mb),
                format!("{:.0}", r.hcache_mb),
                if r.sla_met { "yes" } else { "NO" }.to_owned(),
            ]);
        }
    }
    println!("{}", table.render());
    for run in [&morai, &dd] {
        println!(
            "{}: best static cache weights (mongo/mysql/redis/web) = {:?}, aggregate {:.0} ops/s",
            run.technique, run.cache_weights, run.aggregate
        );
    }
    println!(
        "shape check (paper Table 4): Morai++ cannot satisfy Redis/MySQL (squeezed\n\
         by the webserver's in-VM page cache); DoubleDecker's cgroup provisioning\n\
         recovers both by orders of magnitude and wins on aggregate."
    );
}

fn fig12(args: &Args) {
    fig12_print(args, &dynamic::fig12());
}

fn fig12_print(args: &Args, report: &ddc_core::ExperimentReport) {
    banner("Fig 12: dynamic policy changes across containers");
    print_series(report, &["web (MB)", "proxy (MB)", "video (MB)"]);
    let p = dynamic::PHASE_SECS as f64;
    let mut table = TextTable::new(vec![
        "container",
        "phase 1 (MB)",
        "phase 2 (MB)",
        "phase 3 (MB)",
    ]);
    for name in ["web (MB)", "proxy (MB)", "video (MB)"] {
        let s = report.series(name).unwrap();
        table.row(vec![
            name.to_owned(),
            format!("{:.1}", s.mean_in(p * 0.5, p).unwrap_or(0.0)),
            format!("{:.1}", s.mean_in(p * 1.5, p * 2.0).unwrap_or(0.0)),
            format!("{:.1}", s.mean_in(p * 2.5, p * 3.0).unwrap_or(0.0)),
        ]);
    }
    println!("{}", table.render());
    maybe_dump(args, "fig12", report);
    println!(
        "shape check (paper Fig 12): 60/40 split; then 50/30/20 when the\n\
         videoserver boots; then back to 60/40 when it moves to the SSD."
    );
}

fn fig13(args: &Args) {
    fig13_print(args, &dynamic::fig13());
}

fn fig13_print(args: &Args, report: &ddc_core::ExperimentReport) {
    banner("Fig 13: dynamic VM provisioning");
    print_series(report, &["vm1 (MB)", "vm2 (MB)", "vm3 (MB)", "vm4 (MB)"]);
    let mut table = TextTable::new(vec!["vm", "phase2 mean (MB)", "phase4 mean (MB)"]);
    for name in ["vm1 (MB)", "vm2 (MB)", "vm3 (MB)", "vm4 (MB)"] {
        let s = report.series(name).unwrap();
        table.row(vec![
            name.to_owned(),
            format!("{:.1}", s.mean_in(250.0, 300.0).unwrap_or(0.0)),
            format!("{:.1}", s.mean_in(550.0, 750.0).unwrap_or(0.0)),
        ]);
    }
    println!("{}", table.render());
    maybe_dump(args, "fig13", report);
    println!(
        "shape check (paper Fig 13): VM1 alone fills the cache; 60/40 after VM2;\n\
         VM3 (SSD-only) does not disturb the memory split; capacity doubling plus\n\
         40/35/25 weights redistributes across VM1/VM2/VM4."
    );
}

fn extensions(args: &Args) {
    banner("Extensions: compression ablation / hybrid store / adaptive weights");
    let secs = SimTime::from_secs(args.secs.unwrap_or(400));

    let comp = ablations::compression(secs);
    println!("\nzcache-style 2:1 compression of the memory store:");
    let mut t = TextTable::new(vec!["workload", "plain (MB/s)", "compressed (MB/s)"]);
    for (kind, plain, compressed) in &comp.throughput {
        t.row(vec![
            kind.name().to_owned(),
            format!("{plain:.1}"),
            format!("{compressed:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "evictions: plain {} -> compressed {}",
        comp.evictions_plain, comp.evictions_compressed
    );

    let hyb = ablations::hybrid(secs);
    println!(
        "\nhybrid store (<Hybrid, 18> videoserver): {:.1} MB/s vs <Mem, 18> {:.1} MB/s; \
         {} objects trickled down, {} blocks resident on the SSD share",
        hyb.video_hybrid, hyb.video_mem, hyb.trickle_downs, hyb.video_ssd_pages
    );

    let ad = ablations::adaptive(secs);
    println!(
        "\nMRC-driven adaptive weights: aggregate {:.1} MB/s vs static {:.1} MB/s; \
         final weights big/small = {}/{}",
        ad.adaptive_tput, ad.static_tput, ad.final_weights.0, ad.final_weights.1
    );
}

fn fault_plane(args: &Args) {
    banner("Fault plane: SSD brownout, graceful degradation and recovery");
    let secs = args.secs.unwrap_or(faults::DURATION_SECS);
    // The scored run and its same-seed determinism twin are independent
    // cells: compute both in parallel, then print.
    let mut runs = ddc_core::parallel::run_cells(vec![0xB120u64, 0xB120], move |seed| {
        faults::brownout(secs, seed)
    });
    let again = runs.pop().expect("two cells");
    let run = runs.pop().expect("two cells");
    print_series(&run.report, &["hit ratio", "ssd (MB)"]);

    let f = &run.report.faults;
    let mut table = TextTable::new(vec!["counter", "value"]);
    table.row(vec![
        "ssd quarantines".into(),
        f.ssd_quarantines.to_string(),
    ]);
    table.row(vec!["ssd recoveries".into(), f.ssd_recoveries.to_string()]);
    table.row(vec![
        "pages invalidated on quarantine".into(),
        f.quarantine_invalidated_pages.to_string(),
    ]);
    table.row(vec!["failed gets".into(), f.failed_gets.to_string()]);
    table.row(vec!["failed puts".into(), f.failed_puts.to_string()]);
    table.row(vec![
        "channel fail-open misses".into(),
        f.channel_fail_opens.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "hit ratio: {:.2} before -> {:.2} during [{}s, {}s) -> {:.2} after",
        run.hit_before, run.hit_during, run.window.0, run.window.1, run.hit_after
    );
    maybe_dump(args, "faults_brownout", &run.report);

    println!(
        "determinism: same-seed rerun is {}",
        if again.report.to_json() == run.report.to_json() {
            "byte-identical"
        } else {
            "DIFFERENT (bug!)"
        }
    );
    println!(
        "shape check: hit ratio collapses inside the brownout window and climbs\n\
         back after recovery; the workload never stalls (fail-open to disk) and\n\
         no stale SSD data is ever served (quarantine invalidates the tier)."
    );
}

fn chaos_sweep(args: &Args) -> bool {
    let cases = if args.smoke {
        chaos::CASES_SMOKE
    } else {
        chaos::CASES_FULL
    };
    let threaded_cases = if args.smoke {
        chaos::THREADED_CASES_SMOKE
    } else {
        chaos::THREADED_CASES_FULL
    };
    let remote_cases = if args.smoke {
        chaos::REMOTE_CASES_SMOKE
    } else {
        chaos::REMOTE_CASES_FULL
    };
    banner(&format!(
        "Chaos: {cases} randomized hypervisor crashes (journal cuts, torn tails, bit flips)\n\
         == + {threaded_cases} threaded-plane kills ({}-thread sharded engine, per-shard cuts)\n\
         == + {remote_cases} remote-tier crashes (partition/hedge/breaker-open axes)",
        chaos::THREADED_PLANE_THREADS
    ));
    let report = chaos::run(chaos::DEFAULT_SEED, cases, threaded_cases, remote_cases);
    let mut table = TextTable::new(vec![
        "case",
        "kind",
        "cut/len (B)",
        "replayed",
        "recovered",
        "discarded",
        "poisoned",
        "stale",
        "audit",
    ]);
    for c in &report.cases {
        table.row(vec![
            c.id.to_string(),
            c.kind.name().to_owned(),
            format!("{}/{}", c.cut, c.image_len),
            c.records_replayed.to_string(),
            c.recovered_entries.to_string(),
            c.discarded_stale.to_string(),
            c.poisoned.to_string(),
            (c.stale_entries + c.stale_reads).to_string(),
            c.audit_findings.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("threaded plane (kill mid-tick, per-shard cuts, recover, continue on 8 threads):");
    let mut tt = TextTable::new(vec![
        "case",
        "kind",
        "hook cut",
        "kill@tick/vm/budget",
        "replayed",
        "gap",
        "recovered",
        "discarded",
        "torn/corrupt segs",
        "stale",
        "audit",
    ]);
    for c in &report.threaded {
        let torn = c.segments.iter().filter(|s| s.1).count();
        let corrupt = c.segments.iter().filter(|s| s.2).count();
        tt.row(vec![
            c.id.to_string(),
            c.kind.name().to_owned(),
            if c.hook_cut { "yes" } else { "no" }.to_owned(),
            format!("{}/{}/{}", c.kill_tick, c.kill_vm, c.budget),
            c.records_replayed.to_string(),
            c.gap_discarded.to_string(),
            c.recovered_entries.to_string(),
            (c.discarded_stale + c.dropped_no_room).to_string(),
            format!("{torn}/{corrupt}"),
            (c.stale_entries + c.stale_reads).to_string(),
            c.audit_findings.to_string(),
        ]);
    }
    println!("{}", tt.render());

    println!("remote tier (crash with a chunk-store bound, recover, continue threaded):");
    let mut rt = TextTable::new(vec![
        "case",
        "axis",
        "kind",
        "kill@tick/vm",
        "replayed",
        "recovered",
        "pre served",
        "pre hedges",
        "pre trips",
        "remote ok",
        "stale",
        "audit",
    ]);
    for c in &report.remote {
        rt.row(vec![
            c.id.to_string(),
            c.axis.to_owned(),
            c.kind.name().to_owned(),
            format!("{}/{}", c.kill_tick, c.kill_vm),
            c.records_replayed.to_string(),
            c.recovered_entries.to_string(),
            c.pre_served.to_string(),
            c.pre_hedges.to_string(),
            c.pre_breaker_trips.to_string(),
            if c.remote_recovered { "yes" } else { "NO" }.to_owned(),
            (c.stale_entries + c.stale_reads).to_string(),
            c.audit_findings.to_string(),
        ]);
    }
    println!("{}", rt.render());
    println!(
        "totals: {} stale reads, {} auditor findings, {} unrecovered remotes \
         across {} crash points",
        report.total_stale(),
        report.total_findings(),
        report.remote_unrecovered(),
        report.cases.len() + report.threaded.len() + report.remote.len()
    );

    if let Some(out) = &args.out {
        fs::write(out, report.to_json()).expect("write chaos json");
        println!("[chaos report written to {}]", out.display());
    }
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join("chaos.json");
        fs::write(&path, report.to_json()).expect("write json");
        println!("[json written to {}]", path.display());
    }

    let again = chaos::run(chaos::DEFAULT_SEED, cases, threaded_cases, remote_cases);
    println!(
        "determinism: same-seed rerun is {}",
        if again.to_json() == report.to_json() {
            "byte-identical"
        } else {
            "DIFFERENT (bug!)"
        }
    );
    println!(
        "shape check: recovery may lose entries (discarded/dropped) but the\n\
         stale and audit columns must be all zero — the cache can forget,\n\
         it can never lie. The threaded rows additionally survive a second\n\
         crash of the thread-interleaved journal (gates only; not tabled)."
    );
    report.passed() && again.to_json() == report.to_json()
}

fn stress_plane(args: &Args) -> bool {
    assert!(
        !(args.read_heavy && args.write_heavy),
        "pick at most one of --read-heavy / --write-heavy"
    );
    let mix = if args.read_heavy {
        stress::StressMix::ReadHeavy
    } else if args.write_heavy {
        stress::StressMix::WriteHeavy
    } else {
        stress::StressMix::Standard
    };
    banner(&format!(
        "Stress: concurrent serving plane{}{}",
        match mix {
            stress::StressMix::ReadHeavy => ", 95/5 read-heavy mix",
            stress::StressMix::WriteHeavy => ", put-dominant write-heavy mix",
            stress::StressMix::Standard => "",
        },
        if args.smoke { " (smoke budget)" } else { "" }
    ));
    let report = stress::run(stress::DEFAULT_SEED, args.smoke, mix);

    println!("\nequivalence matrix (sharded single-thread vs serial reference):");
    let mut eq = TextTable::new(vec!["mode", "shards", "byte-identical", "stale"]);
    for c in &report.equivalence {
        eq.row(vec![
            stress::mode_name(c.mode).to_owned(),
            c.shards.to_string(),
            if c.identical { "yes" } else { "NO" }.to_owned(),
            c.stale_reads.to_string(),
        ]);
    }
    println!("{}", eq.render());

    println!("thread scaling (shared sharded cache, one VM set per run):");
    let mut sc = TextTable::new(vec![
        "threads",
        "journal",
        "ops",
        "wall (s)",
        "ops/sec",
        "stale",
        "audit",
        "commit epoch",
        "compactions",
        "lockfree",
        "replica",
        "batched",
        "resv r/f",
    ]);
    for c in &report.scaling {
        sc.row(vec![
            c.threads.to_string(),
            if c.journal { "yes" } else { "no" }.to_owned(),
            c.total_ops.to_string(),
            format!("{:.3}", c.wall_secs),
            format!("{:.0}", c.ops_per_sec),
            c.stale_reads.to_string(),
            c.audit_findings.to_string(),
            c.commit_epoch.to_string(),
            c.journal_compactions.to_string(),
            c.lockfree_misses.to_string(),
            c.replica_hits.to_string(),
            c.batched_ops.to_string(),
            format!("{}/{}", c.reservation_retries, c.reservation_fallbacks),
        ]);
    }
    println!("{}", sc.render());
    println!(
        "8-thread vs 1-thread throughput factor: {:.2}x on the volatile rows\n\
         (reported, not gated: on a single-core runner it measures locking\n\
         overhead, not scaling); journaled rows group-commit per tick and\n\
         must land a non-zero durability watermark",
        report.scaling_factor()
    );

    if let Some(out) = &args.out {
        fs::write(out, report.to_json()).expect("write stress json");
        println!("[stress report written to {}]", out.display());
    }
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join("stress.json");
        fs::write(&path, report.to_json()).expect("write json");
        println!("[json written to {}]", path.display());
    }
    println!(
        "shape check: every equivalence cell byte-identical (sharding is a\n\
         locking strategy, not a semantic change); every thread count finishes\n\
         with zero stale reads and zero auditor findings."
    );
    report.passed()
}

fn remote_tier(args: &Args) -> bool {
    banner(&format!(
        "Remote tier: fault-axis determinism + degradation ladder + cold-boot storm{}",
        if args.smoke { " (smoke budget)" } else { "" }
    ));
    let report = remote::run(remote::DEFAULT_SEED, args.smoke);

    println!("\nfault-axis matrix (serial vs sharded, same-seed rerun, 1-thread counters):");
    let mut ax = TextTable::new(vec![
        "axis",
        "identical",
        "rerun",
        "stale",
        "served",
        "failed",
        "timeouts",
        "retries",
        "hedges",
        "trips",
        "recoveries",
        "gates",
    ]);
    for c in &report.axes {
        ax.row(vec![
            c.axis.to_owned(),
            if c.identical { "yes" } else { "NO" }.to_owned(),
            if c.rerun_identical { "yes" } else { "NO" }.to_owned(),
            c.stale_reads.to_string(),
            c.remote.served.to_string(),
            c.remote.failed.to_string(),
            c.remote.timeouts.to_string(),
            c.remote.retries.to_string(),
            c.remote.hedges.to_string(),
            c.remote.breaker_trips.to_string(),
            c.remote.breaker_recoveries.to_string(),
            if c.gates_ok { "ok" } else { "FAIL" }.to_owned(),
        ]);
    }
    println!("{}", ax.render());

    println!(
        "degradation ladder ({} threads, {} interleaved repeats, best-of):",
        remote::LADDER_THREADS,
        report.ladder.first().map_or(0, |c| c.runs)
    );
    let mut ld = TextTable::new(vec![
        "phase",
        "ops/run",
        "best ops/sec",
        "stale",
        "audit",
        "served",
        "timeouts",
        "breaker trips",
        "breaker skipped",
    ]);
    for c in &report.ladder {
        ld.row(vec![
            c.phase.to_owned(),
            c.total_ops.to_string(),
            format!("{:.0}", c.ops_per_sec_best),
            c.stale_reads.to_string(),
            c.audit_findings.to_string(),
            c.remote.served.to_string(),
            c.remote.timeouts.to_string(),
            c.remote.breaker_trips.to_string(),
            c.remote.breaker_skipped.to_string(),
        ]);
    }
    println!("{}", ld.render());
    println!(
        "brownout sustains {:.0}% of baseline (gate: >= {:.0}%); healed recovers to \
         {:.0}% (gate: >= {:.0}%)",
        report.brownout_fraction() * 100.0,
        remote::MIN_BROWNOUT_FRACTION * 100.0,
        report.healed_fraction() * 100.0,
        remote::MAX_HEALED_REGRESSION * 100.0
    );

    let cb = &report.cold_boot;
    println!(
        "\ncold-boot storm: {} tenants x {} pages of one image over a CDN store",
        cb.tenants, cb.image_pages
    );
    let mut cbt = TextTable::new(vec!["metric", "value"]);
    cbt.row(vec![
        "boot time (sim ms)".into(),
        format!("{:.1}", cb.boot_millis),
    ]);
    cbt.row(vec!["chunk fetches".into(), cb.remote.fetches.to_string()]);
    cbt.row(vec![
        "readahead hits".into(),
        cb.remote.readahead_hits.to_string(),
    ]);
    cbt.row(vec!["edge hits".into(), cb.remote.edge_hits.to_string()]);
    cbt.row(vec![
        "origin fetches".into(),
        cb.remote.origin_fetches.to_string(),
    ]);
    cbt.row(vec!["hedged fetches".into(), cb.remote.hedges.to_string()]);
    cbt.row(vec![
        "localized (flushed) blocks".into(),
        cb.localized_blocks.to_string(),
    ]);
    cbt.row(vec!["wrong reads".into(), cb.wrong_reads.to_string()]);
    cbt.row(vec![
        "buffered/localized overlap".into(),
        cb.buffered_localized_overlap.to_string(),
    ]);
    cbt.row(vec![
        "per-tenant counters uniform".into(),
        if cb.per_tenant_uniform { "yes" } else { "NO" }.into(),
    ]);
    cbt.row(vec![
        "same-seed rerun".into(),
        if cb.identical {
            "byte-identical"
        } else {
            "DIFFERENT (bug!)"
        }
        .into(),
    ]);
    println!("{}", cbt.render());

    if let Some(out) = &args.out {
        fs::write(out, report.to_json()).expect("write remote json");
        println!("[remote report written to {}]", out.display());
    }
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join("remote.json");
        fs::write(&path, report.to_json()).expect("write json");
        println!("[json written to {}]", path.display());
    }
    println!(
        "shape check: network faults only ever surface as misses (zero stale\n\
         reads on every axis), the breaker keeps a browning-out remote from\n\
         stalling the serving plane, and the boot storm is readahead-dominated\n\
         with identical per-tenant edge placement (CDN dedup)."
    );
    report.passed()
}

fn wear_plane(args: &Args) -> bool {
    banner(&format!(
        "Wear plane: SSD endurance under selective admission{}",
        if args.smoke { " (smoke budget)" } else { "" }
    ));
    let results = wear::run_matrix(args.smoke, wear::DEFAULT_SEED);

    let mut table = TextTable::new(vec![
        "mix",
        "ssd writes (admit-all)",
        "ssd writes (filtered)",
        "reduction",
        "hits admit-all",
        "hits filtered",
        "write amp",
        "ttl demotions",
        "identical",
        "ok",
    ]);
    for r in &results {
        table.row(vec![
            r.spec.name.to_owned(),
            r.admit_all.wear.ssd_pages_written.to_string(),
            r.filtered.wear.ssd_pages_written.to_string(),
            format!("{:.1}%", r.reduction_pct),
            r.admit_all.hits.to_string(),
            r.filtered.hits.to_string(),
            format!("{:.3}", r.filtered.wear.write_amplification()),
            r.filtered.wear.ttl_demotions.to_string(),
            if r.admit_all.identical && r.filtered.identical {
                "yes"
            } else {
                "NO"
            }
            .to_owned(),
            if r.ok() { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!("{}", table.render());
    for r in &results {
        for f in &r.failures {
            eprintln!("wear gate [{}]: {f}", r.spec.name);
        }
    }

    if let Some(out) = &args.out {
        fs::write(out, wear::baseline_json(&results, args.smoke)).expect("write wear baseline");
        println!("[wear baseline written to {}]", out.display());
    }
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join("wear.json");
        fs::write(&path, wear::to_json(&results, args.smoke)).expect("write json");
        println!("[json written to {}]", path.display());
    }
    let mut passed = results.iter().all(wear::MixResult::ok);
    if let Some(baseline_path) = &args.check {
        let text = fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            std::process::exit(1);
        });
        match wear::check_against(&results, args.smoke, &text) {
            Err(e) => {
                eprintln!("bad wear baseline {}: {e}", baseline_path.display());
                passed = false;
            }
            Ok(violations) if violations.is_empty() => {
                println!(
                    "wear check PASSED against {} ({}x write-amplification tolerance)",
                    baseline_path.display(),
                    wear::WEAR_TOLERANCE
                );
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("wear regression: {v}");
                }
                passed = false;
            }
        }
    }
    println!(
        "shape check: the ghost filter cuts SSD writes >= {:.0}% on the\n\
         write-heavy and scan-polluted mixes at an equal-or-better hit count,\n\
         the TTL sweep demotes the abandoned phase, and every variant stays\n\
         byte-identical serial vs sharded and across same-seed reruns.",
        wear::MIN_REDUCTION_PCT
    );
    passed
}

fn perf_matrix(args: &Args) {
    banner(if args.smoke {
        "Perf matrix: cache-ops throughput (smoke budget)"
    } else {
        "Perf matrix: cache-ops throughput"
    });
    let runner = perf::RunnerProfile::current();
    println!(
        "runner: DDC_THREADS resolves to {}, available parallelism {}",
        runner.ddc_threads, runner.available_parallelism
    );
    let cells = perf::run_matrix(args.smoke);
    let mut table = TextTable::new(vec!["cell", "sim ops", "wall (s)", "ops/sec"]);
    for c in &cells {
        table.row(vec![
            c.name.to_owned(),
            c.sim_ops.to_string(),
            format!("{:.3}", c.wall_secs),
            format!("{:.0}", c.ops_per_sec),
        ]);
    }
    println!("{}", table.render());

    if let Some(out) = &args.out {
        fs::write(out, perf::to_json(&cells, args.smoke)).expect("write perf json");
        println!("[perf results written to {}]", out.display());
    }
    if let Some(baseline_path) = &args.check {
        let text = fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            std::process::exit(1);
        });
        let baseline = perf::parse_baseline(&text).unwrap_or_else(|e| {
            eprintln!("bad baseline {}: {e}", baseline_path.display());
            std::process::exit(1);
        });
        let report = perf::check_against(&cells, &baseline, perf::REGRESSION_FACTOR);
        for s in &report.skipped {
            println!("perf check SKIPPED {s}");
        }
        if report.violations.is_empty() {
            println!(
                "perf check PASSED against {} ({}x regression threshold, {} cells skipped)",
                baseline_path.display(),
                perf::REGRESSION_FACTOR,
                report.skipped.len()
            );
        } else {
            for v in &report.violations {
                eprintln!("perf regression: {v}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    let start = std::time::Instant::now();
    match args.command.as_str() {
        "fig3" => fig3(&args),
        "fig4" => fig4(&args),
        "fig5" => fig5(&args),
        "table1" => table1(&args),
        "fig8" => fig8_fig9_table2(&args, "fig8"),
        "fig9" => fig8_fig9_table2(&args, "fig9"),
        "table2" => fig8_fig9_table2(&args, "table2"),
        "fig10" => fig10_fig11(&args, "fig10"),
        "fig11" => fig10_fig11(&args, "fig11"),
        "table3" => fig10_fig11(&args, "fig10"),
        "table4" => table4(&args),
        "fig12" => fig12(&args),
        "fig13" => fig13(&args),
        "ext" => extensions(&args),
        "faults" => fault_plane(&args),
        "chaos" => {
            if !chaos_sweep(&args) {
                eprintln!("chaos sweep FAILED (stale reads or invariant violations)");
                std::process::exit(1);
            }
        }
        "stress" => {
            if !stress_plane(&args) {
                eprintln!("stress run FAILED (divergence, stale reads or invariant violations)");
                std::process::exit(1);
            }
        }
        "remote" => {
            if !remote_tier(&args) {
                eprintln!("remote tier FAILED (divergence, stale reads or a missed gate)");
                std::process::exit(1);
            }
        }
        "wear" => {
            if !wear_plane(&args) {
                eprintln!("wear plane FAILED (divergence, missed gate or wear regression)");
                std::process::exit(1);
            }
        }
        "perf" => perf_matrix(&args),
        "all" => {
            fig3(&args);
            fig4(&args);
            fig5(&args);
            table1(&args);
            fig8_fig9_table2(&args, "all");
            fig10_fig11(&args, "all");
            table4(&args);
            // Figs 12 and 13 are independent single-report experiments:
            // compute both in parallel, print in order.
            let mut reports = ddc_core::parallel::run_cells(vec![12u8, 13], |n| match n {
                12 => dynamic::fig12(),
                _ => dynamic::fig13(),
            });
            let r13 = reports.pop().expect("two cells");
            let r12 = reports.pop().expect("two cells");
            fig12_print(&args, &r12);
            fig13_print(&args, &r13);
            extensions(&args);
            fault_plane(&args);
            if !chaos_sweep(&args) {
                eprintln!("chaos sweep FAILED (stale reads or invariant violations)");
                std::process::exit(1);
            }
            if !stress_plane(&args) {
                eprintln!("stress run FAILED (divergence, stale reads or invariant violations)");
                std::process::exit(1);
            }
            if !remote_tier(&args) {
                eprintln!("remote tier FAILED (divergence, stale reads or a missed gate)");
                std::process::exit(1);
            }
            if !wear_plane(&args) {
                eprintln!("wear plane FAILED (divergence, missed gate or wear regression)");
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown command {other}");
            print_help();
            std::process::exit(2);
        }
    }
    eprintln!(
        "\n[repro finished in {:.1}s wall time]",
        start.elapsed().as_secs_f64()
    );
}
