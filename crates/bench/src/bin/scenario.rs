//! `scenario` — runs JSON-defined DoubleDecker experiments.
//!
//! One spec prints its full report; several specs form a sweep that
//! fans out across cores (each spec is an independent cell) and prints
//! reports in argument order, so the output is byte-identical to
//! running the specs one by one.
//!
//! ```sh
//! cargo run --release -p ddc-bench --bin scenario -- examples/scenarios/derivative_cloud.json
//! cargo run --release -p ddc-bench --bin scenario -- spec.json --json report.json
//! cargo run --release -p ddc-bench --bin scenario -- a.json b.json c.json --json-dir out/
//! ```

use std::env;
use std::fs;
use std::path::Path;
use std::process::exit;

use ddc_bench::scenarios::common::print_series;
use ddc_core::parallel::run_cells;
use ddc_core::prelude::*;
use ddc_core::scenario::{self, ScenarioSpec};

fn main() {
    let mut args = env::args().skip(1);
    let mut paths: Vec<String> = Vec::new();
    let mut json_out = None;
    let mut json_dir = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_out = args.next(),
            "--json-dir" => json_dir = args.next(),
            other if other.starts_with("--") => {
                eprintln!("unknown argument {other}");
                exit(2);
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: scenario <spec.json> [<spec.json>...] [--json <report.json>] [--json-dir <dir>]"
        );
        exit(2);
    }
    if json_out.is_some() && paths.len() > 1 {
        eprintln!("--json takes a single spec; use --json-dir for sweeps");
        exit(2);
    }

    let specs: Vec<(String, ScenarioSpec)> = paths
        .into_iter()
        .map(|path| {
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    exit(1);
                }
            };
            match ScenarioSpec::from_json(&text) {
                Ok(s) => (path, s),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    exit(1);
                }
            }
        })
        .collect();

    // Fan the sweep out; reports come back in spec order, so all
    // printing below stays serial-identical.
    let reports = run_cells(specs, |(path, spec)| {
        let report = scenario::run(&spec).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1);
        });
        (path, spec, report)
    });

    for (path, spec, report) in &reports {
        println!(
            "running scenario {:?}: {} VM(s), {} container(s), {} virtual seconds",
            spec.name,
            spec.vms.len(),
            spec.vms.iter().map(|v| v.containers.len()).sum::<usize>(),
            spec.duration_secs
        );

        let mut table = TextTable::new(vec!["thread", "ops", "ops/s", "MB/s", "mean lat (ms)"]);
        for t in &report.threads {
            table.row(vec![
                t.label.clone(),
                t.ops.to_string(),
                format!("{:.1}", t.ops_per_sec),
                format!("{:.1}", t.mb_per_sec),
                format!("{:.3}", t.mean_latency_ms),
            ]);
        }
        println!("{}", table.render());

        let series_names: Vec<&str> = report.series.iter().map(|s| s.name.as_str()).collect();
        print_series(report, &series_names);

        if let Some(out) = &json_out {
            if let Err(e) = fs::write(out, report.to_json()) {
                eprintln!("cannot write {out}: {e}");
                exit(1);
            }
            println!("[report written to {out}]");
        }
        if let Some(dir) = &json_dir {
            let stem = Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("report");
            let out = format!("{}/{stem}.json", dir.trim_end_matches('/'));
            if let Err(e) = fs::create_dir_all(dir).and_then(|()| fs::write(&out, report.to_json()))
            {
                eprintln!("cannot write {out}: {e}");
                exit(1);
            }
            println!("[report written to {out}]");
        }
    }
}
