//! `scenario` — runs a JSON-defined DoubleDecker experiment.
//!
//! ```sh
//! cargo run --release -p ddc-bench --bin scenario -- examples/scenarios/derivative_cloud.json
//! cargo run --release -p ddc-bench --bin scenario -- spec.json --json report.json
//! ```

use std::env;
use std::fs;
use std::process::exit;

use ddc_bench::scenarios::common::print_series;
use ddc_core::prelude::*;
use ddc_core::scenario::{self, ScenarioSpec};

fn main() {
    let mut args = env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: scenario <spec.json> [--json <report.json>]");
        exit(2);
    };
    let mut json_out = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_out = args.next(),
            other => {
                eprintln!("unknown argument {other}");
                exit(2);
            }
        }
    }

    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        }
    };
    let spec = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    };

    println!(
        "running scenario {:?}: {} VM(s), {} container(s), {} virtual seconds",
        spec.name,
        spec.vms.len(),
        spec.vms.iter().map(|v| v.containers.len()).sum::<usize>(),
        spec.duration_secs
    );
    let report = match scenario::run(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    };

    let mut table = TextTable::new(vec!["thread", "ops", "ops/s", "MB/s", "mean lat (ms)"]);
    for t in &report.threads {
        table.row(vec![
            t.label.clone(),
            t.ops.to_string(),
            format!("{:.1}", t.ops_per_sec),
            format!("{:.1}", t.mb_per_sec),
            format!("{:.3}", t.mean_latency_ms),
        ]);
    }
    println!("{}", table.render());

    let series_names: Vec<&str> = report.series.iter().map(|s| s.name.as_str()).collect();
    print_series(&report, &series_names);

    if let Some(out) = json_out {
        if let Err(e) = fs::write(&out, report.to_json()) {
            eprintln!("cannot write {out}: {e}");
            exit(1);
        }
        println!("[report written to {out}]");
    }
}
