//! The storage module: backend-independent page storage services.
//!
//! Per the paper (§4.2), the storage module provides "backend independent
//! services to read storage blocks, allocate new storage blocks and free
//! storage blocks". Two backends exist: host memory (kernel page
//! allocation + memcpy) and a raw SSD block layer where reads are
//! synchronous and writes asynchronous.

use ddc_sim::{FaultSchedule, SimDuration, SimTime};
use ddc_storage::{BlockAddr, Device, DeviceKind, IoError};

use crate::StoreKind;

/// One backing store (memory or SSD) of the hypervisor cache.
///
/// Tracks page-granularity occupancy against a capacity limit and charges
/// device time for transfers.
///
/// # Example
///
/// ```
/// use ddc_hypercache::store::BackingStore;
/// use ddc_sim::SimTime;
/// use ddc_storage::{BlockAddr, FileId};
///
/// let mut s = BackingStore::mem(16);
/// assert!(s.try_alloc());
/// let finish = s.write(SimTime::ZERO, BlockAddr::new(FileId(1), 0));
/// assert!(finish > SimTime::ZERO);
/// s.free(1);
/// assert_eq!(s.used_pages(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct BackingStore {
    kind: StoreKind,
    device: Device,
    capacity_pages: u64,
    used_pages: u64,
    /// Fixed CPU-side cost of staging an asynchronous write (the caller
    /// pays this instead of the device time).
    async_stage_cost: SimDuration,
    sync_writes: bool,
    /// zcache-style in-band compression: per-object footprint in
    /// millipages (1000 = uncompressed). A ratio of 500 doubles the
    /// effective object capacity.
    object_millipages: u64,
    /// CPU cost of compressing on store / decompressing on load.
    codec_cost: SimDuration,
}

impl BackingStore {
    /// A memory-backed store: synchronous page copies.
    pub fn mem(capacity_pages: u64) -> BackingStore {
        BackingStore {
            kind: StoreKind::Mem,
            device: Device::ram(),
            capacity_pages,
            used_pages: 0,
            async_stage_cost: SimDuration::ZERO,
            sync_writes: true,
            object_millipages: 1000,
            codec_cost: SimDuration::ZERO,
        }
    }

    /// An SSD-backed store: synchronous reads, asynchronous writes staged
    /// through a bounce buffer (paper §4.2).
    pub fn ssd(capacity_pages: u64) -> BackingStore {
        BackingStore {
            kind: StoreKind::Ssd,
            device: Device::ssd_sata(),
            capacity_pages,
            used_pages: 0,
            // Staging a page for async write costs about a RAM copy.
            async_stage_cost: SimDuration::from_micros(1),
            sync_writes: false,
            object_millipages: 1000,
            codec_cost: SimDuration::ZERO,
        }
    }

    /// Enables zcache-style in-band compression: each object occupies
    /// `object_millipages`/1000 of a page (e.g. 500 halves the footprint
    /// and doubles effective capacity) and every store/load pays
    /// `codec_cost` of CPU time. Only meaningful for the memory store.
    ///
    /// # Panics
    ///
    /// Panics if `object_millipages` is zero or above 1000.
    pub fn set_compression(&mut self, object_millipages: u64, codec_cost: SimDuration) {
        assert!(
            (1..=1000).contains(&object_millipages),
            "compression ratio must be in (0, 1]"
        );
        self.object_millipages = object_millipages;
        self.codec_cost = codec_cost;
    }

    /// Effective capacity in objects, accounting for compression.
    pub fn capacity_objects(&self) -> u64 {
        self.capacity_pages * 1000 / self.object_millipages
    }

    /// The store kind (`Mem` or `Ssd`).
    pub fn kind(&self) -> StoreKind {
        self.kind
    }

    /// The underlying device class.
    pub fn device_kind(&self) -> DeviceKind {
        self.device.kind()
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Updates the capacity. Shrinking below current usage is allowed; the
    /// caller (policy module) is responsible for evicting the excess.
    pub fn set_capacity_pages(&mut self, capacity_pages: u64) {
        self.capacity_pages = capacity_pages;
    }

    /// Pages currently allocated.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Objects still allocatable.
    pub fn free_pages(&self) -> u64 {
        self.capacity_objects().saturating_sub(self.used_pages)
    }

    /// Whether the store has no capacity at all (disabled).
    pub fn is_disabled(&self) -> bool {
        self.capacity_pages == 0
    }

    /// Whether an allocation would currently succeed.
    pub fn has_room(&self) -> bool {
        self.used_pages < self.capacity_objects()
    }

    /// Attempts to allocate one page of accounting space.
    pub fn try_alloc(&mut self) -> bool {
        if self.has_room() {
            self.used_pages += 1;
            true
        } else {
            false
        }
    }

    /// Releases `pages` pages of accounting space.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more pages are freed than are in use.
    pub fn free(&mut self, pages: u64) {
        debug_assert!(pages <= self.used_pages, "store accounting underflow");
        self.used_pages = self.used_pages.saturating_sub(pages);
    }

    /// Reads one page synchronously, returning the completion instant
    /// (including decompression when compression is on).
    pub fn read(&mut self, now: SimTime, addr: BlockAddr) -> SimTime {
        self.device.read(now, addr).finish + self.codec_cost
    }

    /// Writes one page, returning when the *caller* may proceed: the
    /// device completion for synchronous (memory) stores, or the staging
    /// cost for asynchronous (SSD) stores.
    pub fn write(&mut self, now: SimTime, addr: BlockAddr) -> SimTime {
        let start = now + self.codec_cost;
        if self.sync_writes {
            self.device.write(start, addr).finish
        } else {
            self.device.write_async(start, addr);
            start + self.async_stage_cost
        }
    }

    /// Attaches (or clears) a fault schedule on the store's device. Only
    /// the fallible [`try_read`](BackingStore::try_read) /
    /// [`try_write`](BackingStore::try_write) paths consult it.
    pub fn set_fault_schedule(&mut self, faults: Option<FaultSchedule>) {
        self.device.set_fault_schedule(faults);
    }

    /// Whether the store's device has died permanently.
    pub fn is_dead(&self) -> bool {
        self.device.is_dead()
    }

    /// IOs failed by the device fault schedule.
    pub fn io_errors(&self) -> u64 {
        self.device.io_errors()
    }

    /// Fallible variant of [`read`](BackingStore::read): consults the
    /// device fault schedule and surfaces injected IO errors.
    pub fn try_read(&mut self, now: SimTime, addr: BlockAddr) -> Result<SimTime, IoError> {
        let io = self.device.try_read(now, addr)?;
        Ok(io.finish + self.codec_cost)
    }

    /// Fallible variant of [`write`](BackingStore::write). For the
    /// asynchronous (SSD) path an injected failure is reported
    /// immediately, modelling an IO-completion error on the staged write.
    pub fn try_write(&mut self, now: SimTime, addr: BlockAddr) -> Result<SimTime, IoError> {
        let start = now + self.codec_cost;
        if self.sync_writes {
            Ok(self.device.try_write(start, addr)?.finish)
        } else {
            self.device.try_write_async(start, addr)?;
            Ok(start + self.async_stage_cost)
        }
    }

    /// Device utilization over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.device.utilization(now)
    }

    /// Total device reads performed.
    pub fn device_reads(&self) -> u64 {
        self.device.reads()
    }

    /// Total device writes performed.
    pub fn device_writes(&self) -> u64 {
        self.device.writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_storage::FileId;

    fn addr(b: u64) -> BlockAddr {
        BlockAddr::new(FileId(9), b)
    }

    #[test]
    fn alloc_respects_capacity() {
        let mut s = BackingStore::mem(2);
        assert!(s.try_alloc());
        assert!(s.try_alloc());
        assert!(!s.try_alloc());
        assert_eq!(s.used_pages(), 2);
        assert_eq!(s.free_pages(), 0);
        s.free(1);
        assert!(s.has_room());
        assert!(s.try_alloc());
    }

    #[test]
    fn zero_capacity_store_is_disabled() {
        let mut s = BackingStore::ssd(0);
        assert!(s.is_disabled());
        assert!(!s.try_alloc());
    }

    #[test]
    fn mem_writes_are_synchronous_and_fast() {
        let mut s = BackingStore::mem(16);
        let f = s.write(SimTime::ZERO, addr(0));
        let elapsed = f.saturating_since(SimTime::ZERO);
        assert!(elapsed > SimDuration::ZERO);
        assert!(elapsed < SimDuration::from_micros(100));
        assert_eq!(s.device_writes(), 1);
    }

    #[test]
    fn ssd_writes_are_async() {
        let mut s = BackingStore::ssd(16);
        // Caller returns after staging, far sooner than the device time.
        let f = s.write(SimTime::ZERO, addr(0));
        assert_eq!(f, SimTime::ZERO + SimDuration::from_micros(1));
        // But the device is actually occupied: a subsequent synchronous
        // read queues behind the async write.
        let r = s.read(SimTime::ZERO, addr(1));
        assert!(r.saturating_since(SimTime::ZERO) > SimDuration::from_micros(50));
    }

    #[test]
    fn ssd_reads_slower_than_mem_reads() {
        let mut mem = BackingStore::mem(16);
        let mut ssd = BackingStore::ssd(16);
        let m = mem.read(SimTime::ZERO, addr(0));
        let s = ssd.read(SimTime::ZERO, addr(0));
        assert!(m < s);
    }

    #[test]
    fn capacity_resize() {
        let mut s = BackingStore::mem(4);
        for _ in 0..4 {
            assert!(s.try_alloc());
        }
        s.set_capacity_pages(2);
        assert_eq!(s.capacity_pages(), 2);
        assert_eq!(s.used_pages(), 4, "shrink does not evict by itself");
        assert!(!s.has_room());
        s.set_capacity_pages(8);
        assert!(s.has_room());
    }

    #[test]
    fn compression_expands_capacity() {
        let mut s = BackingStore::mem(4);
        assert_eq!(s.capacity_objects(), 4);
        s.set_compression(500, SimDuration::from_micros(2));
        assert_eq!(s.capacity_objects(), 8, "2:1 compression doubles objects");
        for _ in 0..8 {
            assert!(s.try_alloc());
        }
        assert!(!s.try_alloc(), "effective capacity enforced");
        assert_eq!(s.capacity_pages(), 4, "raw capacity unchanged");
    }

    #[test]
    fn compression_charges_codec_time() {
        let mut plain = BackingStore::mem(16);
        let mut compressed = BackingStore::mem(16);
        compressed.set_compression(500, SimDuration::from_micros(5));
        let p = plain.read(SimTime::ZERO, addr(0));
        let c = compressed.read(SimTime::ZERO, addr(0));
        assert_eq!(c.saturating_since(p), SimDuration::from_micros(5));
        let pw = plain.write(SimTime::ZERO, addr(1));
        let cw = compressed.write(SimTime::ZERO, addr(1));
        assert!(cw > pw, "compression adds CPU time on store");
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn compression_rejects_expansion() {
        BackingStore::mem(4).set_compression(1500, SimDuration::ZERO);
    }

    #[test]
    fn try_paths_surface_injected_faults() {
        use ddc_sim::{FaultKind, FaultSchedule};
        let mut s = BackingStore::ssd(16);
        assert_eq!(
            s.try_write(SimTime::ZERO, addr(0)),
            Ok(SimTime::ZERO + SimDuration::from_micros(1)),
            "no schedule: identical to the infallible async path"
        );
        s.set_fault_schedule(Some(FaultSchedule::new(1).with_window(
            SimTime::ZERO,
            None,
            FaultKind::TransientErrors { rate: 1.0 },
        )));
        assert!(s.try_write(SimTime::ZERO, addr(1)).is_err());
        assert!(s.try_read(SimTime::ZERO, addr(1)).is_err());
        assert_eq!(s.io_errors(), 2);
        assert!(!s.is_dead());
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(BackingStore::mem(1).kind(), StoreKind::Mem);
        assert_eq!(BackingStore::ssd(1).kind(), StoreKind::Ssd);
        assert_eq!(BackingStore::mem(1).device_kind(), DeviceKind::Ram);
        assert_eq!(BackingStore::ssd(1).device_kind(), DeviceKind::Ssd);
    }
}
