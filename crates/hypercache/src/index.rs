//! The indexing module: maps `(pool, inode, block)` keys to storage slots.
//!
//! The paper (§4.2) uses "a hierarchy of indexing data structures — a
//! per-pool file object (inode-num) hash table, file block radix-tree
//! etc.". [`Pool`] flattens that hierarchy into a slab arena: slots live
//! in one dense `Vec` with a free-list, addressed by [`SlotId`], and the
//! lookup path is a single [`FxHashMap`] probe from [`BlockAddr`] into
//! contiguous memory — no per-file tree to re-walk on get/put/evict.
//! Per-placement FIFO queues (with lazy deletion) implement the paper's
//! FIFO eviction order — "LRU equivalent for exclusive caches" (§4.2) —
//! and carry `SlotId`s, so popping the queue lands directly on the slab
//! entry. The map uses [`FxHashMap`]: block addresses are internal, so
//! the cheaper seed-free hash wins on every operation without any
//! flooding exposure.
//!
//! # `SlotId` stability
//!
//! A `SlotId` is stable for the lifetime of the slot it names: FIFO
//! compaction and queue churn never move slab entries. The id is
//! recycled through the free-list only after the slot is removed, and a
//! reused id always carries a fresh (strictly larger) sequence stamp —
//! so a stale `(SlotId, seq)` pair held by any FIFO is detectably dead.
//! Ids are *not* stable across crash recovery: the journal speaks
//! `BlockAddr`, and replay reassigns ids in replay order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ddc_cleancache::{CachePolicy, PageVersion, PoolId, VmId};
use ddc_sim::FxHashMap;
use ddc_storage::{BlockAddr, FileId, PoolWear};

use crate::admission::GhostFilter;
use crate::readplane::ReadPlane;

/// Where an object physically resides. Unlike
/// [`StoreKind`](crate::StoreKind) this has no `Hybrid`: a hybrid-policy
/// container still places every individual object in exactly one store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Object lives in the memory store.
    Mem,
    /// Object lives in the SSD store.
    Ssd,
}

/// Handle to one slab arena entry of a [`Pool`]. See the module docs
/// for the stability rules; pair it with the slot's sequence stamp when
/// storing it in a FIFO so reuse is detectable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

/// One indexed object: its placement, the guest version stamp it carried,
/// and its FIFO sequence number (used for lazy queue deletion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Physical store holding the object.
    pub placement: Placement,
    /// Version the guest stored.
    pub version: PageVersion,
    /// FIFO sequence stamp.
    pub seq: u64,
    /// Verify-on-read checksum, normally [`slot_checksum`] of the
    /// object's address and version. A mismatch at `get` time means the
    /// stored copy rotted (e.g. SSD corruption surviving a crash) and
    /// the slot must be failed, never served.
    pub checksum: u32,
}

impl Slot {
    /// Whether the stored checksum matches the object's address and
    /// version (the verify-on-read check).
    pub fn verifies(&self, addr: BlockAddr) -> bool {
        self.checksum == slot_checksum(addr, self.version)
    }
}

/// The checksum a healthy slot for `(addr, version)` carries. Stands in
/// for a content hash: the simulation has no page payloads, so the
/// address/version pair identifies the bytes that would be hashed.
pub fn slot_checksum(addr: BlockAddr, version: PageVersion) -> u32 {
    // FNV-1a over the three words; cheap and deterministic.
    let mut h = 0x811C_9DC5u32;
    for word in [addr.file.0, addr.block, version.0] {
        for b in word.to_le_bytes() {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Per-pool operation counters (the source of GET_STATS).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Lookups against this pool.
    pub gets: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Stores accepted.
    pub puts: u64,
    /// Objects evicted by the policy module.
    pub evictions: u64,
    /// Lookups that failed on a store fault.
    pub failed_gets: u64,
    /// Stores that failed on a store fault.
    pub failed_puts: u64,
}

/// Lock-free mirror of one pool's per-store usage, kept in sync by the
/// pool's accounting funnels. A concurrent assembly can attach one per
/// pool and snapshot every entity's usage *without* taking the locks
/// that guard the pools themselves — phase 1 of the two-phase eviction
/// in `ddc-concurrent` is built on exactly this.
#[derive(Debug, Default)]
pub struct UsageMirror {
    mem: AtomicU64,
    ssd: AtomicU64,
    /// Lookups served entirely lock-free (definitive misses answered by
    /// the shard's [`ReadPlane`] without touching `counters.gets`).
    /// Stats reporting adds this to the locked-path counter so the
    /// total is identical to what a serial engine would have counted.
    lockfree_gets: AtomicU64,
    /// Whether the owning pool has a remote chunk-store binding. A
    /// remote-bound pool must not answer misses lock-free: "absent from
    /// the shard" is no longer definitive when the remote tier can still
    /// serve the block, so its gets always take the locked path (where
    /// the binding lives).
    remote_bound: std::sync::atomic::AtomicBool,
}

impl UsageMirror {
    /// Records one lock-free lookup against the owning pool.
    pub fn note_get(&self) {
        self.lockfree_gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Lookups served lock-free so far.
    pub fn lockfree_gets(&self) -> u64 {
        self.lockfree_gets.load(Ordering::Relaxed)
    }

    /// Marks the owning pool remote-bound (see the field docs).
    pub fn set_remote_bound(&self) {
        self.remote_bound.store(true, Ordering::Release);
    }

    /// Clears the remote-bound mark (pool unbound or destroyed).
    pub fn clear_remote_bound(&self) {
        self.remote_bound.store(false, Ordering::Release);
    }

    /// Whether the owning pool is remote-bound.
    pub fn remote_bound(&self) -> bool {
        self.remote_bound.load(Ordering::Acquire)
    }
    /// Pages the owning pool currently holds in the given store, as of
    /// the last accounting update (exact under a quiescent pool; a
    /// best-effort snapshot under concurrent mutation).
    pub fn pages(&self, placement: Placement) -> u64 {
        match placement {
            Placement::Mem => self.mem.load(Ordering::Relaxed),
            Placement::Ssd => self.ssd.load(Ordering::Relaxed),
        }
    }

    fn cell(&self, placement: Placement) -> &AtomicU64 {
        match placement {
            Placement::Mem => &self.mem,
            Placement::Ssd => &self.ssd,
        }
    }
}

/// One occupied slab entry: the key it indexes plus the slot itself.
/// The address is stored inline so eviction (which arrives by `SlotId`
/// off a FIFO) can resolve the key without a reverse map.
#[derive(Clone, Copy, Debug)]
struct ArenaEntry {
    addr: BlockAddr,
    slot: Slot,
}

/// The index for one container's cache pool: a slab arena of slots plus
/// the lookup map and eviction queues (see the module docs).
#[derive(Clone, Debug)]
pub struct Pool {
    vm: VmId,
    policy: CachePolicy,
    /// The slab: `None` entries are free and their indexes sit on
    /// `free`. Never shrinks except when the pool is drained.
    slots: Vec<Option<ArenaEntry>>,
    /// Free-list stack of slab indexes available for reuse.
    free: Vec<u32>,
    /// The single-probe lookup path: block address → slab index.
    map: FxHashMap<BlockAddr, u32>,
    fifo_mem: VecDeque<(SlotId, u64)>,
    fifo_ssd: VecDeque<(SlotId, u64)>,
    used_mem: u64,
    used_ssd: u64,
    /// Optional lock-free usage mirror (see [`UsageMirror`]).
    mirror: Option<Arc<UsageMirror>>,
    /// Optional lock-free membership mirror: the owning shard's
    /// [`ReadPlane`] plus this pool's id in it. Every membership change
    /// (new key inserted, slot released, pool drained) is reflected
    /// through the accounting funnels below, so the plane always holds
    /// exactly the live key set. The serial engine runs without one.
    read_plane: Option<(PoolId, Arc<ReadPlane>)>,
    /// Public counters, updated by the cache front-end.
    pub counters: PoolCounters,
    /// SSD endurance ledger: every insert is charged here (slot-level
    /// resolution for SSD placements), so wear is a pure function of
    /// the pool's insert history — identical across engines and exactly
    /// re-accrued by journal replay.
    pub wear: PoolWear,
    /// Ghost admission filter guarding this pool's mem→SSD spill path
    /// (advisory state: cleared on drain and recovery).
    pub ghost: GhostFilter,
    /// Monotone count of inserts into this pool — the clock the TTL
    /// sweep measures SSD-residency age against. Engine-independent,
    /// unlike the caller-supplied `seq`.
    insert_count: u64,
    /// Per-slab-slot birth stamp: `insert_count` as of the slot's last
    /// write (parallel to the slab, like `PoolWear::slot_writes`).
    slot_birth: Vec<u64>,
}

impl Pool {
    /// Creates an empty pool owned by `vm` with the given policy.
    pub fn new(vm: VmId, policy: CachePolicy) -> Pool {
        Pool {
            vm,
            policy,
            slots: Vec::new(),
            free: Vec::new(),
            map: FxHashMap::default(),
            fifo_mem: VecDeque::new(),
            fifo_ssd: VecDeque::new(),
            used_mem: 0,
            used_ssd: 0,
            mirror: None,
            read_plane: None,
            counters: PoolCounters::default(),
            wear: PoolWear::default(),
            ghost: GhostFilter::default(),
            insert_count: 0,
            slot_birth: Vec::new(),
        }
    }

    /// Attaches a usage mirror; every subsequent accounting change is
    /// reflected into it. The serial engine runs without one.
    pub fn set_mirror(&mut self, mirror: Arc<UsageMirror>) {
        mirror
            .cell(Placement::Mem)
            .store(self.used_mem, Ordering::Relaxed);
        mirror
            .cell(Placement::Ssd)
            .store(self.used_ssd, Ordering::Relaxed);
        self.mirror = Some(mirror);
    }

    /// Attaches the owning shard's lock-free read plane; the current
    /// live key set is published immediately and every subsequent
    /// membership change is reflected through the accounting funnels.
    /// The caller must hold whatever lock guards this pool.
    pub fn set_read_plane(&mut self, id: PoolId, plane: Arc<ReadPlane>) {
        for (addr, _) in self.iter() {
            plane.publish(self.vm, id, addr);
        }
        self.read_plane = Some((id, plane));
    }

    fn plane_publish(&self, addr: BlockAddr) {
        if let Some((id, plane)) = &self.read_plane {
            plane.publish(self.vm, *id, addr);
        }
    }

    fn plane_erase(&self, addr: BlockAddr) {
        if let Some((id, plane)) = &self.read_plane {
            plane.erase(self.vm, *id, addr);
        }
    }

    fn plane_erase_pool(&self) {
        if let Some((id, plane)) = &self.read_plane {
            plane.erase_pool(self.vm, *id);
        }
    }

    /// The owning VM.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The pool's `<T, W>` policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Replaces the pool's policy (SET_CG_WEIGHT).
    pub fn set_policy(&mut self, policy: CachePolicy) {
        self.policy = policy;
    }

    /// Pages resident in the given store.
    pub fn used(&self, placement: Placement) -> u64 {
        match placement {
            Placement::Mem => self.used_mem,
            Placement::Ssd => self.used_ssd,
        }
    }

    /// Total resident pages.
    pub fn total_used(&self) -> u64 {
        self.used_mem + self.used_ssd
    }

    /// Whether the pool indexes no objects.
    pub fn is_empty(&self) -> bool {
        self.total_used() == 0
    }

    /// Looks up a slot without removing it.
    pub fn peek(&self, addr: BlockAddr) -> Option<&Slot> {
        let idx = *self.map.get(&addr)?;
        self.slots[idx as usize].as_ref().map(|e| &e.slot)
    }

    /// The slab handle currently indexing `addr`, if resident.
    pub fn lookup(&self, addr: BlockAddr) -> Option<SlotId> {
        self.map.get(&addr).map(|&i| SlotId(i))
    }

    /// Resolves a slab handle to its key and slot, if the entry is
    /// occupied.
    pub fn slot_by_id(&self, id: SlotId) -> Option<(BlockAddr, &Slot)> {
        self.slots
            .get(id.0 as usize)?
            .as_ref()
            .map(|e| (e.addr, &e.slot))
    }

    /// Lazy-deletion liveness probe for FIFO entries: resolves `id` and
    /// returns the slot's address iff the entry is occupied and still
    /// carries the queued sequence stamp and placement. A recycled or
    /// removed slot fails the probe.
    pub fn fifo_probe(&self, id: SlotId, seq: u64, placement: Placement) -> Option<BlockAddr> {
        let entry = self.slots.get(id.0 as usize)?.as_ref()?;
        (entry.slot.seq == seq && entry.slot.placement == placement).then_some(entry.addr)
    }

    /// Inserts an object, returning its slab handle and the placement of
    /// a displaced older copy of the same block (`None` if the key was
    /// new; a displaced copy keeps its `SlotId`). `seq` must be strictly
    /// increasing across all inserts into this pool.
    pub fn insert(
        &mut self,
        addr: BlockAddr,
        placement: Placement,
        version: PageVersion,
        seq: u64,
    ) -> (SlotId, Option<Placement>) {
        let slot = Slot {
            placement,
            version,
            seq,
            checksum: slot_checksum(addr, version),
        };
        let (idx, displaced) = match self.map.get(&addr) {
            // Overwrite in place: the old FIFO entries die by seq
            // mismatch, the id stays with the key.
            Some(&idx) => {
                let entry = self.slots[idx as usize]
                    .as_mut()
                    .expect("mapped slot is occupied");
                let old = entry.slot.placement;
                entry.slot = slot;
                self.debit(old);
                (idx, Some(old))
            }
            None => {
                let idx = match self.free.pop() {
                    Some(idx) => {
                        self.slots[idx as usize] = Some(ArenaEntry { addr, slot });
                        idx
                    }
                    None => {
                        let idx = self.slots.len() as u32;
                        self.slots.push(Some(ArenaEntry { addr, slot }));
                        idx
                    }
                };
                self.map.insert(addr, idx);
                self.plane_publish(addr);
                (idx, None)
            }
        };
        self.insert_count += 1;
        self.wear
            .record_write(idx as usize, placement == Placement::Ssd);
        if self.slot_birth.len() <= idx as usize {
            self.slot_birth.resize(idx as usize + 1, 0);
        }
        self.slot_birth[idx as usize] = self.insert_count;
        self.credit(placement);
        match placement {
            Placement::Mem => self.fifo_mem.push_back((SlotId(idx), seq)),
            Placement::Ssd => self.fifo_ssd.push_back((SlotId(idx), seq)),
        }
        (SlotId(idx), displaced)
    }

    /// Removes an object by key (exclusive `get`, or `flush`). The FIFO
    /// entry is left behind and skipped lazily.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Slot> {
        let idx = self.map.remove(&addr)?;
        self.release(idx).map(|e| e.slot)
    }

    /// Removes an object by slab handle, returning its key and slot.
    /// The eviction path uses this: the FIFO hands back a live `SlotId`,
    /// so no extra map probe is needed beyond the key erase.
    pub fn remove_by_id(&mut self, id: SlotId) -> Option<(BlockAddr, Slot)> {
        let addr = self.slots.get(id.0 as usize)?.as_ref()?.addr;
        self.map.remove(&addr);
        self.release(id.0).map(|e| (e.addr, e.slot))
    }

    /// Frees one slab entry and recycles its index.
    fn release(&mut self, idx: u32) -> Option<ArenaEntry> {
        let entry = self.slots[idx as usize].take()?;
        self.free.push(idx);
        self.debit(entry.slot.placement);
        self.plane_erase(entry.addr);
        Some(entry)
    }

    /// Removes and returns the oldest live object in the given store
    /// (FIFO eviction order), or `None` if the store side of the pool is
    /// empty.
    pub fn pop_oldest(&mut self, placement: Placement) -> Option<(BlockAddr, Slot)> {
        loop {
            let (id, seq) = match placement {
                Placement::Mem => self.fifo_mem.pop_front()?,
                Placement::Ssd => self.fifo_ssd.pop_front()?,
            };
            // Lazy deletion: the queue entry is live only if the slab
            // entry still carries the same sequence stamp.
            if self.fifo_probe(id, seq, placement).is_some() {
                return self.remove_by_id(id);
            }
        }
    }

    /// Removes every object of `file`, returning how many pages were freed
    /// from each store as `(mem, ssd)`.
    pub fn remove_file(&mut self, file: FileId) -> (u64, u64) {
        let mut freed = (0, 0);
        for idx in 0..self.slots.len() as u32 {
            let (addr, placement) = match &self.slots[idx as usize] {
                Some(e) if e.addr.file == file => (e.addr, e.slot.placement),
                _ => continue,
            };
            match placement {
                Placement::Mem => freed.0 += 1,
                Placement::Ssd => freed.1 += 1,
            }
            self.map.remove(&addr);
            self.release(idx);
        }
        freed
    }

    /// Drains every object held in one store, returning how many pages
    /// were freed (tier quarantine: a failed store's contents must be
    /// invalidated wholesale, never served again).
    pub fn drain_placement(&mut self, placement: Placement) -> u64 {
        let mut freed = 0;
        for idx in 0..self.slots.len() as u32 {
            let addr = match &self.slots[idx as usize] {
                Some(e) if e.slot.placement == placement => e.addr,
                _ => continue,
            };
            freed += 1;
            self.map.remove(&addr);
            self.release(idx);
        }
        match placement {
            Placement::Mem => self.fifo_mem.clear(),
            Placement::Ssd => self.fifo_ssd.clear(),
        }
        freed
    }

    /// Drains every object in the pool, returning per-store freed counts
    /// as `(mem, ssd)` (DESTROY_CGROUP). Resets the slab, so previously
    /// issued `SlotId`s are all dead afterwards.
    pub fn drain(&mut self) -> (u64, u64) {
        let freed = (self.used_mem, self.used_ssd);
        self.plane_erase_pool();
        self.slots.clear();
        self.free.clear();
        self.map.clear();
        self.fifo_mem.clear();
        self.fifo_ssd.clear();
        self.set_used(Placement::Mem, 0);
        self.set_used(Placement::Ssd, 0);
        // Advisory admission state dies with the contents; the wear
        // ledger does NOT — wear is cumulative history, and the engine
        // retires it explicitly when the pool itself is destroyed.
        self.ghost.clear();
        self.insert_count = 0;
        self.slot_birth.clear();
        freed
    }

    /// Inserts into this pool since creation (or since the last drain) —
    /// the TTL sweep's clock.
    pub fn insert_count(&self) -> u64 {
        self.insert_count
    }

    /// SSD-resident objects whose last write is more than `ttl` inserts
    /// in this pool's past, in slab order (deterministic across engines
    /// because the slab layout is a pure function of the pool's op
    /// history). `ttl == 0` matches nothing.
    pub fn stale_ssd_entries(&self, ttl: u64) -> Vec<BlockAddr> {
        if ttl == 0 {
            return Vec::new();
        }
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let e = e.as_ref()?;
                (e.slot.placement == Placement::Ssd
                    && self.insert_count.saturating_sub(self.slot_birth[i]) > ttl)
                    .then_some(e.addr)
            })
            .collect()
    }

    /// Corrupts the stored checksum of one resident object (chaos
    /// testing: models bit rot in the backing store). Returns `false`
    /// if the object is not resident.
    pub fn corrupt(&mut self, addr: BlockAddr) -> bool {
        let Some(&idx) = self.map.get(&addr) else {
            return false;
        };
        let entry = self.slots[idx as usize]
            .as_mut()
            .expect("mapped slot is occupied");
        entry.slot.checksum ^= 0xDEAD_BEEF;
        true
    }

    /// Iterates one placement's FIFO queue entries `(id, seq)`,
    /// including dead (lazily deleted) entries — the invariant auditor
    /// checks queue↔slab coherence with this.
    pub fn fifo_entries(&self, placement: Placement) -> impl Iterator<Item = (SlotId, u64)> + '_ {
        match placement {
            Placement::Mem => self.fifo_mem.iter().copied(),
            Placement::Ssd => self.fifo_ssd.iter().copied(),
        }
    }

    /// Iterates over all resident objects (for migration and tests), in
    /// slab order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &Slot)> + '_ {
        self.slots
            .iter()
            .filter_map(|e| e.as_ref().map(|e| (e.addr, &e.slot)))
    }

    /// Iterates all occupied slab entries with their handles (the
    /// auditor's view of the live set).
    pub fn iter_ids(&self) -> impl Iterator<Item = (SlotId, BlockAddr, &Slot)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (SlotId(i as u32), e.addr, &e.slot)))
    }

    /// Number of slab entries (occupied + free) — the arena's dense
    /// extent; every valid `SlotId` is below it.
    pub fn arena_len(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The current free-list, in stack order (top last). The auditor
    /// checks it is duplicate-free and disjoint from the live set.
    pub fn free_ids(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.free.iter().map(|&i| SlotId(i))
    }

    fn credit(&mut self, placement: Placement) {
        match placement {
            Placement::Mem => self.used_mem += 1,
            Placement::Ssd => self.used_ssd += 1,
        }
        if let Some(m) = &self.mirror {
            m.cell(placement).fetch_add(1, Ordering::Relaxed);
        }
    }

    fn debit(&mut self, placement: Placement) {
        match placement {
            Placement::Mem => self.used_mem -= 1,
            Placement::Ssd => self.used_ssd -= 1,
        }
        if let Some(m) = &self.mirror {
            m.cell(placement).fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn set_used(&mut self, placement: Placement, pages: u64) {
        match placement {
            Placement::Mem => self.used_mem = pages,
            Placement::Ssd => self.used_ssd = pages,
        }
        if let Some(m) = &self.mirror {
            m.cell(placement).store(pages, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::PoolId;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    fn pool() -> Pool {
        Pool::new(VmId(0), CachePolicy::mem(100))
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut p = pool();
        assert!(p.is_empty());
        p.insert(addr(1, 0), Placement::Mem, PageVersion(3), 1);
        assert_eq!(p.used(Placement::Mem), 1);
        let slot = p.remove(addr(1, 0)).unwrap();
        assert_eq!(slot.version, PageVersion(3));
        assert_eq!(slot.placement, Placement::Mem);
        assert!(p.is_empty());
        assert_eq!(p.remove(addr(1, 0)), None);
    }

    #[test]
    fn overwrite_displaces_old_copy() {
        let mut p = pool();
        let (id1, displaced) = p.insert(addr(1, 0), Placement::Mem, PageVersion(1), 1);
        assert_eq!(displaced, None);
        // Re-put of the same key in a different store displaces the old
        // copy and keeps the slab handle with the key.
        let (id2, displaced) = p.insert(addr(1, 0), Placement::Ssd, PageVersion(2), 2);
        assert_eq!(displaced, Some(Placement::Mem));
        assert_eq!(id1, id2, "overwrite reuses the key's slot");
        assert_eq!(p.used(Placement::Mem), 0);
        assert_eq!(p.used(Placement::Ssd), 1);
        assert_eq!(p.peek(addr(1, 0)).unwrap().version, PageVersion(2));
    }

    #[test]
    fn fifo_order_is_insertion_order() {
        let mut p = pool();
        for b in 0..5 {
            p.insert(addr(1, b), Placement::Mem, PageVersion(0), b);
        }
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 0));
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 1));
    }

    #[test]
    fn reinsert_moves_to_fifo_tail() {
        // Exclusive-cache LRU equivalence: a block that is got and re-put
        // becomes youngest again.
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Mem, PageVersion(0), 2);
        // "get" block 0 and re-put it with a newer seq.
        p.remove(addr(1, 0)).unwrap();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 3);
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 1), "block 1 is now the oldest");
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 0));
    }

    #[test]
    fn pop_oldest_skips_stale_entries() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Mem, PageVersion(0), 2);
        p.remove(addr(1, 0)).unwrap(); // leaves stale FIFO entry
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 1));
        assert_eq!(p.pop_oldest(Placement::Mem), None);
    }

    #[test]
    fn pop_oldest_respects_placement() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Ssd, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Mem, PageVersion(0), 2);
        assert_eq!(p.pop_oldest(Placement::Mem).unwrap().0, addr(1, 1));
        assert_eq!(p.pop_oldest(Placement::Mem), None);
        assert_eq!(p.pop_oldest(Placement::Ssd).unwrap().0, addr(1, 0));
    }

    #[test]
    fn remove_file_frees_all_blocks() {
        let mut p = pool();
        for b in 0..4 {
            p.insert(addr(1, b), Placement::Mem, PageVersion(0), b);
        }
        p.insert(addr(1, 4), Placement::Ssd, PageVersion(0), 4);
        p.insert(addr(2, 0), Placement::Mem, PageVersion(0), 5);
        let (mem, ssd) = p.remove_file(FileId(1));
        assert_eq!((mem, ssd), (4, 1));
        assert_eq!(p.total_used(), 1);
        assert_eq!(p.remove_file(FileId(99)), (0, 0));
    }

    #[test]
    fn drain_empties_everything() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(2, 0), Placement::Ssd, PageVersion(0), 2);
        let freed = p.drain();
        assert_eq!(freed, (1, 1));
        assert!(p.is_empty());
        assert_eq!(p.pop_oldest(Placement::Mem), None);
    }

    #[test]
    fn iter_visits_all_objects() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 7), Placement::Mem, PageVersion(0), 2);
        p.insert(addr(3, 2), Placement::Ssd, PageVersion(0), 3);
        let mut keys: Vec<BlockAddr> = p.iter().map(|(a, _)| a).collect();
        keys.sort();
        assert_eq!(keys, vec![addr(1, 0), addr(1, 7), addr(3, 2)]);
    }

    #[test]
    fn free_list_recycles_slots_with_fresh_seqs() {
        let mut p = pool();
        let (id0, _) = p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.remove(addr(1, 0)).unwrap();
        assert_eq!(p.free_ids().collect::<Vec<_>>(), vec![id0]);
        // Reuse: the freed index comes back with a new seq, so the old
        // (id, seq) pair held by the FIFO is detectably dead.
        let (id1, _) = p.insert(addr(2, 0), Placement::Mem, PageVersion(0), 2);
        assert_eq!(id0, id1);
        assert_eq!(p.free_ids().count(), 0);
        assert_eq!(p.fifo_probe(id0, 1, Placement::Mem), None, "stale pair");
        assert_eq!(p.fifo_probe(id1, 2, Placement::Mem), Some(addr(2, 0)));
        // The arena stayed dense: one slab entry total.
        assert_eq!(p.arena_len(), 1);
    }

    #[test]
    fn slot_by_id_and_lookup_agree() {
        let mut p = pool();
        let (id, _) = p.insert(addr(3, 9), Placement::Ssd, PageVersion(4), 7);
        assert_eq!(p.lookup(addr(3, 9)), Some(id));
        let (a, s) = p.slot_by_id(id).unwrap();
        assert_eq!(a, addr(3, 9));
        assert_eq!(s.version, PageVersion(4));
        let (a2, s2) = p.remove_by_id(id).unwrap();
        assert_eq!((a2, s2.version), (addr(3, 9), PageVersion(4)));
        assert_eq!(p.slot_by_id(id), None);
        assert_eq!(p.lookup(addr(3, 9)), None);
    }

    #[test]
    fn usage_mirror_tracks_accounting() {
        let mut p = pool();
        let mirror = Arc::new(UsageMirror::default());
        p.set_mirror(Arc::clone(&mirror));
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Ssd, PageVersion(0), 2);
        assert_eq!(mirror.pages(Placement::Mem), 1);
        assert_eq!(mirror.pages(Placement::Ssd), 1);
        p.remove(addr(1, 0));
        assert_eq!(mirror.pages(Placement::Mem), 0);
        p.drain();
        assert_eq!(mirror.pages(Placement::Ssd), 0);
        // Attaching to a non-empty pool seeds the mirror.
        let mut q = pool();
        q.insert(addr(2, 0), Placement::Mem, PageVersion(0), 1);
        let m2 = Arc::new(UsageMirror::default());
        q.set_mirror(Arc::clone(&m2));
        assert_eq!(m2.pages(Placement::Mem), 1);
    }

    #[test]
    fn insert_charges_the_wear_ledger() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Ssd, PageVersion(0), 2);
        p.insert(addr(1, 1), Placement::Ssd, PageVersion(1), 3); // overwrite rewrites the cell
        assert_eq!(p.wear.pages_admitted, 3);
        assert_eq!(p.wear.pages_written, 2);
        assert_eq!(
            p.wear.pages_written,
            p.wear
                .slot_writes
                .iter()
                .map(|&c| u64::from(c))
                .sum::<u64>()
        );
        // Drain keeps the cumulative ledger but resets the TTL clock.
        p.drain();
        assert_eq!(p.wear.pages_written, 2);
        assert_eq!(p.insert_count(), 0);
    }

    #[test]
    fn stale_ssd_entries_age_by_insert_distance() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Ssd, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Mem, PageVersion(0), 2);
        assert_eq!(p.stale_ssd_entries(0), vec![], "ttl 0 is off");
        assert_eq!(p.stale_ssd_entries(5), vec![], "not old enough yet");
        for b in 2..8 {
            p.insert(addr(1, b), Placement::Mem, PageVersion(0), b);
        }
        // addr(1,0) was insert #1; with 8 inserts total its age is 7.
        assert_eq!(p.stale_ssd_entries(5), vec![addr(1, 0)]);
        assert_eq!(p.stale_ssd_entries(7), vec![], "age must exceed ttl");
        // Mem entries never match, however old.
        assert!(!p.stale_ssd_entries(1).contains(&addr(1, 1)));
    }

    #[test]
    fn policy_update() {
        let mut p = pool();
        assert_eq!(p.policy(), CachePolicy::mem(100));
        p.set_policy(CachePolicy::ssd(40));
        assert_eq!(p.policy(), CachePolicy::ssd(40));
        assert_eq!(p.vm(), VmId(0));
        // PoolId is unrelated to the index but confirm the type exists for
        // the public API surface.
        let _ = PoolId(0);
    }

    /// Seeded randomized schedules (in-tree replacement for proptest,
    /// which is unavailable offline): deterministic, broad coverage.
    mod randomized {
        use super::*;
        use ddc_sim::SimRng;

        /// Accounting invariant: `used(placement)` always equals the
        /// number of live objects with that placement, under any
        /// operation sequence — and the free-list stays disjoint from
        /// the live set.
        #[test]
        fn usage_accounting_matches_index() {
            let mut rng = SimRng::new(0xA11C0);
            for case in 0..200 {
                let mut case_rng = rng.fork(case);
                let mut p = Pool::new(VmId(0), CachePolicy::mem(100));
                let mut seq = 0u64;
                for _ in 0..case_rng.range_u64(0, 200) {
                    let f = case_rng.range_u64(0, 4);
                    let b = case_rng.range_u64(0, 16);
                    match case_rng.range_u64(0, 4) {
                        0 => {
                            seq += 1;
                            let placement = if case_rng.chance(0.5) {
                                Placement::Mem
                            } else {
                                Placement::Ssd
                            };
                            p.insert(addr(f, b), placement, PageVersion(seq), seq);
                        }
                        1 => {
                            p.remove(addr(f, b));
                        }
                        2 => {
                            p.pop_oldest(Placement::Mem);
                        }
                        _ => {
                            p.pop_oldest(Placement::Ssd);
                        }
                    }
                    let mem_live = p
                        .iter()
                        .filter(|(_, s)| s.placement == Placement::Mem)
                        .count() as u64;
                    let ssd_live = p
                        .iter()
                        .filter(|(_, s)| s.placement == Placement::Ssd)
                        .count() as u64;
                    assert_eq!(p.used(Placement::Mem), mem_live);
                    assert_eq!(p.used(Placement::Ssd), ssd_live);
                    assert_eq!(p.total_used(), mem_live + ssd_live);
                    let live: std::collections::BTreeSet<SlotId> =
                        p.iter_ids().map(|(id, _, _)| id).collect();
                    let free: Vec<SlotId> = p.free_ids().collect();
                    assert!(free.iter().all(|id| !live.contains(id)));
                    assert_eq!(live.len() + free.len(), p.arena_len() as usize);
                }
            }
        }

        /// `pop_oldest` never returns an object that was removed, and
        /// always returns objects in strictly increasing seq order.
        #[test]
        fn pop_order_is_monotone() {
            let mut rng = SimRng::new(0xA11C1);
            for case in 0..200 {
                let mut case_rng = rng.fork(case);
                let mut p = Pool::new(VmId(0), CachePolicy::mem(100));
                for i in 0..case_rng.range_u64(1, 50) {
                    let f = case_rng.range_u64(0, 4);
                    let b = case_rng.range_u64(0, 16);
                    p.insert(addr(f, b), Placement::Mem, PageVersion(0), i);
                }
                let mut last_seq = None;
                while let Some((_, slot)) = p.pop_oldest(Placement::Mem) {
                    if let Some(prev) = last_seq {
                        assert!(slot.seq > prev);
                    }
                    last_seq = Some(slot.seq);
                }
                assert!(p.is_empty());
            }
        }
    }
}
