//! The indexing module: maps `(pool, inode, block)` keys to storage slots.
//!
//! The paper (§4.2) uses "a hierarchy of indexing data structures — a
//! per-pool file object (inode-num) hash table, file block radix-tree
//! etc.". [`Pool`] mirrors that hierarchy with a hash map of per-file
//! `BTreeMap<block, Slot>` trees, plus per-placement FIFO queues
//! (with lazy deletion) implementing the paper's FIFO eviction order —
//! "LRU equivalent for exclusive caches" (§4.2). The file table uses
//! [`FxHashMap`]: `FileId` keys are internal, so the cheaper seed-free
//! hash wins on every get/put without any flooding exposure.

use std::collections::{BTreeMap, VecDeque};

use ddc_cleancache::{CachePolicy, PageVersion, VmId};
use ddc_sim::FxHashMap;
use ddc_storage::{BlockAddr, FileId};

/// Where an object physically resides. Unlike
/// [`StoreKind`](crate::StoreKind) this has no `Hybrid`: a hybrid-policy
/// container still places every individual object in exactly one store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Object lives in the memory store.
    Mem,
    /// Object lives in the SSD store.
    Ssd,
}

/// One indexed object: its placement, the guest version stamp it carried,
/// and its FIFO sequence number (used for lazy queue deletion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Physical store holding the object.
    pub placement: Placement,
    /// Version the guest stored.
    pub version: PageVersion,
    /// FIFO sequence stamp.
    pub seq: u64,
    /// Verify-on-read checksum, normally [`slot_checksum`] of the
    /// object's address and version. A mismatch at `get` time means the
    /// stored copy rotted (e.g. SSD corruption surviving a crash) and
    /// the slot must be failed, never served.
    pub checksum: u32,
}

impl Slot {
    /// Whether the stored checksum matches the object's address and
    /// version (the verify-on-read check).
    pub fn verifies(&self, addr: BlockAddr) -> bool {
        self.checksum == slot_checksum(addr, self.version)
    }
}

/// The checksum a healthy slot for `(addr, version)` carries. Stands in
/// for a content hash: the simulation has no page payloads, so the
/// address/version pair identifies the bytes that would be hashed.
pub fn slot_checksum(addr: BlockAddr, version: PageVersion) -> u32 {
    // FNV-1a over the three words; cheap and deterministic.
    let mut h = 0x811C_9DC5u32;
    for word in [addr.file.0, addr.block, version.0] {
        for b in word.to_le_bytes() {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Per-pool operation counters (the source of GET_STATS).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Lookups against this pool.
    pub gets: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Stores accepted.
    pub puts: u64,
    /// Objects evicted by the policy module.
    pub evictions: u64,
    /// Lookups that failed on a store fault.
    pub failed_gets: u64,
    /// Stores that failed on a store fault.
    pub failed_puts: u64,
}

/// The index for one container's cache pool.
#[derive(Clone, Debug)]
pub struct Pool {
    vm: VmId,
    policy: CachePolicy,
    files: FxHashMap<FileId, BTreeMap<u64, Slot>>,
    fifo_mem: VecDeque<(BlockAddr, u64)>,
    fifo_ssd: VecDeque<(BlockAddr, u64)>,
    used_mem: u64,
    used_ssd: u64,
    /// Public counters, updated by the cache front-end.
    pub counters: PoolCounters,
}

impl Pool {
    /// Creates an empty pool owned by `vm` with the given policy.
    pub fn new(vm: VmId, policy: CachePolicy) -> Pool {
        Pool {
            vm,
            policy,
            files: FxHashMap::default(),
            fifo_mem: VecDeque::new(),
            fifo_ssd: VecDeque::new(),
            used_mem: 0,
            used_ssd: 0,
            counters: PoolCounters::default(),
        }
    }

    /// The owning VM.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The pool's `<T, W>` policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Replaces the pool's policy (SET_CG_WEIGHT).
    pub fn set_policy(&mut self, policy: CachePolicy) {
        self.policy = policy;
    }

    /// Pages resident in the given store.
    pub fn used(&self, placement: Placement) -> u64 {
        match placement {
            Placement::Mem => self.used_mem,
            Placement::Ssd => self.used_ssd,
        }
    }

    /// Total resident pages.
    pub fn total_used(&self) -> u64 {
        self.used_mem + self.used_ssd
    }

    /// Whether the pool indexes no objects.
    pub fn is_empty(&self) -> bool {
        self.total_used() == 0
    }

    /// Looks up a slot without removing it.
    pub fn peek(&self, addr: BlockAddr) -> Option<&Slot> {
        self.files.get(&addr.file)?.get(&addr.block)
    }

    /// Inserts an object, returning the placement of a displaced older
    /// copy of the same block (`None` if the key was new). `seq` must be
    /// strictly increasing across all inserts into this pool.
    pub fn insert(
        &mut self,
        addr: BlockAddr,
        placement: Placement,
        version: PageVersion,
        seq: u64,
    ) -> Option<Placement> {
        let slot = Slot {
            placement,
            version,
            seq,
            checksum: slot_checksum(addr, version),
        };
        let old = self
            .files
            .entry(addr.file)
            .or_default()
            .insert(addr.block, slot);
        let displaced = old.map(|o| {
            self.debit(o.placement);
            o.placement
        });
        self.credit(placement);
        match placement {
            Placement::Mem => self.fifo_mem.push_back((addr, seq)),
            Placement::Ssd => self.fifo_ssd.push_back((addr, seq)),
        }
        displaced
    }

    /// Removes an object by key (exclusive `get`, or `flush`). The FIFO
    /// entry is left behind and skipped lazily.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Slot> {
        let file = self.files.get_mut(&addr.file)?;
        let slot = file.remove(&addr.block)?;
        if file.is_empty() {
            self.files.remove(&addr.file);
        }
        self.debit(slot.placement);
        Some(slot)
    }

    /// Removes and returns the oldest live object in the given store
    /// (FIFO eviction order), or `None` if the store side of the pool is
    /// empty.
    pub fn pop_oldest(&mut self, placement: Placement) -> Option<(BlockAddr, Slot)> {
        loop {
            let (addr, seq) = match placement {
                Placement::Mem => self.fifo_mem.pop_front()?,
                Placement::Ssd => self.fifo_ssd.pop_front()?,
            };
            // Lazy deletion: the queue entry is live only if the indexed
            // slot still carries the same sequence stamp.
            let live = self
                .peek(addr)
                .is_some_and(|s| s.seq == seq && s.placement == placement);
            if live {
                let slot = self.remove(addr).expect("slot verified live");
                return Some((addr, slot));
            }
        }
    }

    /// Removes every object of `file`, returning how many pages were freed
    /// from each store as `(mem, ssd)`.
    pub fn remove_file(&mut self, file: FileId) -> (u64, u64) {
        let Some(blocks) = self.files.remove(&file) else {
            return (0, 0);
        };
        let mut freed = (0, 0);
        for slot in blocks.values() {
            match slot.placement {
                Placement::Mem => freed.0 += 1,
                Placement::Ssd => freed.1 += 1,
            }
            self.debit(slot.placement);
        }
        freed
    }

    /// Drains every object held in one store, returning how many pages
    /// were freed (tier quarantine: a failed store's contents must be
    /// invalidated wholesale, never served again).
    pub fn drain_placement(&mut self, placement: Placement) -> u64 {
        let mut freed = 0;
        self.files.retain(|_, blocks| {
            blocks.retain(|_, slot| {
                if slot.placement == placement {
                    freed += 1;
                    false
                } else {
                    true
                }
            });
            !blocks.is_empty()
        });
        match placement {
            Placement::Mem => {
                self.fifo_mem.clear();
                self.used_mem = 0;
            }
            Placement::Ssd => {
                self.fifo_ssd.clear();
                self.used_ssd = 0;
            }
        }
        freed
    }

    /// Drains every object in the pool, returning per-store freed counts
    /// as `(mem, ssd)` (DESTROY_CGROUP).
    pub fn drain(&mut self) -> (u64, u64) {
        let freed = (self.used_mem, self.used_ssd);
        self.files.clear();
        self.fifo_mem.clear();
        self.fifo_ssd.clear();
        self.used_mem = 0;
        self.used_ssd = 0;
        freed
    }

    /// Corrupts the stored checksum of one resident object (chaos
    /// testing: models bit rot in the backing store). Returns `false`
    /// if the object is not resident.
    pub fn corrupt(&mut self, addr: BlockAddr) -> bool {
        let Some(slot) = self
            .files
            .get_mut(&addr.file)
            .and_then(|blocks| blocks.get_mut(&addr.block))
        else {
            return false;
        };
        slot.checksum ^= 0xDEAD_BEEF;
        true
    }

    /// Iterates one placement's FIFO queue entries `(addr, seq)`,
    /// including dead (lazily deleted) entries — the invariant auditor
    /// checks queue↔index coherence with this.
    pub fn fifo_entries(
        &self,
        placement: Placement,
    ) -> impl Iterator<Item = (BlockAddr, u64)> + '_ {
        match placement {
            Placement::Mem => self.fifo_mem.iter().copied(),
            Placement::Ssd => self.fifo_ssd.iter().copied(),
        }
    }

    /// Iterates over all resident objects (for migration and tests).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &Slot)> + '_ {
        self.files.iter().flat_map(|(file, blocks)| {
            blocks
                .iter()
                .map(move |(block, slot)| (BlockAddr::new(*file, *block), slot))
        })
    }

    fn credit(&mut self, placement: Placement) {
        match placement {
            Placement::Mem => self.used_mem += 1,
            Placement::Ssd => self.used_ssd += 1,
        }
    }

    fn debit(&mut self, placement: Placement) {
        match placement {
            Placement::Mem => self.used_mem -= 1,
            Placement::Ssd => self.used_ssd -= 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_cleancache::PoolId;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    fn pool() -> Pool {
        Pool::new(VmId(0), CachePolicy::mem(100))
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut p = pool();
        assert!(p.is_empty());
        p.insert(addr(1, 0), Placement::Mem, PageVersion(3), 1);
        assert_eq!(p.used(Placement::Mem), 1);
        let slot = p.remove(addr(1, 0)).unwrap();
        assert_eq!(slot.version, PageVersion(3));
        assert_eq!(slot.placement, Placement::Mem);
        assert!(p.is_empty());
        assert_eq!(p.remove(addr(1, 0)), None);
    }

    #[test]
    fn overwrite_displaces_old_copy() {
        let mut p = pool();
        assert_eq!(
            p.insert(addr(1, 0), Placement::Mem, PageVersion(1), 1),
            None
        );
        // Re-put of the same key in a different store displaces the old copy.
        let displaced = p.insert(addr(1, 0), Placement::Ssd, PageVersion(2), 2);
        assert_eq!(displaced, Some(Placement::Mem));
        assert_eq!(p.used(Placement::Mem), 0);
        assert_eq!(p.used(Placement::Ssd), 1);
        assert_eq!(p.peek(addr(1, 0)).unwrap().version, PageVersion(2));
    }

    #[test]
    fn fifo_order_is_insertion_order() {
        let mut p = pool();
        for b in 0..5 {
            p.insert(addr(1, b), Placement::Mem, PageVersion(0), b);
        }
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 0));
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 1));
    }

    #[test]
    fn reinsert_moves_to_fifo_tail() {
        // Exclusive-cache LRU equivalence: a block that is got and re-put
        // becomes youngest again.
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Mem, PageVersion(0), 2);
        // "get" block 0 and re-put it with a newer seq.
        p.remove(addr(1, 0)).unwrap();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 3);
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 1), "block 1 is now the oldest");
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 0));
    }

    #[test]
    fn pop_oldest_skips_stale_entries() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Mem, PageVersion(0), 2);
        p.remove(addr(1, 0)).unwrap(); // leaves stale FIFO entry
        let (a, _) = p.pop_oldest(Placement::Mem).unwrap();
        assert_eq!(a, addr(1, 1));
        assert_eq!(p.pop_oldest(Placement::Mem), None);
    }

    #[test]
    fn pop_oldest_respects_placement() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Ssd, PageVersion(0), 1);
        p.insert(addr(1, 1), Placement::Mem, PageVersion(0), 2);
        assert_eq!(p.pop_oldest(Placement::Mem).unwrap().0, addr(1, 1));
        assert_eq!(p.pop_oldest(Placement::Mem), None);
        assert_eq!(p.pop_oldest(Placement::Ssd).unwrap().0, addr(1, 0));
    }

    #[test]
    fn remove_file_frees_all_blocks() {
        let mut p = pool();
        for b in 0..4 {
            p.insert(addr(1, b), Placement::Mem, PageVersion(0), b);
        }
        p.insert(addr(1, 4), Placement::Ssd, PageVersion(0), 4);
        p.insert(addr(2, 0), Placement::Mem, PageVersion(0), 5);
        let (mem, ssd) = p.remove_file(FileId(1));
        assert_eq!((mem, ssd), (4, 1));
        assert_eq!(p.total_used(), 1);
        assert_eq!(p.remove_file(FileId(99)), (0, 0));
    }

    #[test]
    fn drain_empties_everything() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(2, 0), Placement::Ssd, PageVersion(0), 2);
        let freed = p.drain();
        assert_eq!(freed, (1, 1));
        assert!(p.is_empty());
        assert_eq!(p.pop_oldest(Placement::Mem), None);
    }

    #[test]
    fn iter_visits_all_objects() {
        let mut p = pool();
        p.insert(addr(1, 0), Placement::Mem, PageVersion(0), 1);
        p.insert(addr(1, 7), Placement::Mem, PageVersion(0), 2);
        p.insert(addr(3, 2), Placement::Ssd, PageVersion(0), 3);
        let mut keys: Vec<BlockAddr> = p.iter().map(|(a, _)| a).collect();
        keys.sort();
        assert_eq!(keys, vec![addr(1, 0), addr(1, 7), addr(3, 2)]);
    }

    #[test]
    fn policy_update() {
        let mut p = pool();
        assert_eq!(p.policy(), CachePolicy::mem(100));
        p.set_policy(CachePolicy::ssd(40));
        assert_eq!(p.policy(), CachePolicy::ssd(40));
        assert_eq!(p.vm(), VmId(0));
        // PoolId is unrelated to the index but confirm the type exists for
        // the public API surface.
        let _ = PoolId(0);
    }

    /// Seeded randomized schedules (in-tree replacement for proptest,
    /// which is unavailable offline): deterministic, broad coverage.
    mod randomized {
        use super::*;
        use ddc_sim::SimRng;

        /// Accounting invariant: `used(placement)` always equals the
        /// number of live objects with that placement, under any
        /// operation sequence.
        #[test]
        fn usage_accounting_matches_index() {
            let mut rng = SimRng::new(0xA11C0);
            for case in 0..200 {
                let mut case_rng = rng.fork(case);
                let mut p = Pool::new(VmId(0), CachePolicy::mem(100));
                let mut seq = 0u64;
                for _ in 0..case_rng.range_u64(0, 200) {
                    let f = case_rng.range_u64(0, 4);
                    let b = case_rng.range_u64(0, 16);
                    match case_rng.range_u64(0, 4) {
                        0 => {
                            seq += 1;
                            let placement = if case_rng.chance(0.5) {
                                Placement::Mem
                            } else {
                                Placement::Ssd
                            };
                            p.insert(addr(f, b), placement, PageVersion(seq), seq);
                        }
                        1 => {
                            p.remove(addr(f, b));
                        }
                        2 => {
                            p.pop_oldest(Placement::Mem);
                        }
                        _ => {
                            p.pop_oldest(Placement::Ssd);
                        }
                    }
                    let mem_live = p
                        .iter()
                        .filter(|(_, s)| s.placement == Placement::Mem)
                        .count() as u64;
                    let ssd_live = p
                        .iter()
                        .filter(|(_, s)| s.placement == Placement::Ssd)
                        .count() as u64;
                    assert_eq!(p.used(Placement::Mem), mem_live);
                    assert_eq!(p.used(Placement::Ssd), ssd_live);
                    assert_eq!(p.total_used(), mem_live + ssd_live);
                }
            }
        }

        /// `pop_oldest` never returns an object that was removed, and
        /// always returns objects in strictly increasing seq order.
        #[test]
        fn pop_order_is_monotone() {
            let mut rng = SimRng::new(0xA11C1);
            for case in 0..200 {
                let mut case_rng = rng.fork(case);
                let mut p = Pool::new(VmId(0), CachePolicy::mem(100));
                for i in 0..case_rng.range_u64(1, 50) {
                    let f = case_rng.range_u64(0, 4);
                    let b = case_rng.range_u64(0, 16);
                    p.insert(addr(f, b), Placement::Mem, PageVersion(0), i);
                }
                let mut last_seq = None;
                while let Some((_, slot)) = p.pop_oldest(Placement::Mem) {
                    if let Some(prev) = last_seq {
                        assert!(slot.seq > prev);
                    }
                    last_seq = Some(slot.seq);
                }
                assert!(p.is_empty());
            }
        }
    }
}
