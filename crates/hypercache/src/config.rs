//! Cache-wide configuration.

use ddc_storage::PAGE_SIZE;

use crate::admission::AdmissionConfig;

/// Eviction batch size: the paper evicts "a small batch (2 MB)" when a
/// store request cannot be serviced because of limit violations (§4.3).
pub const EVICTION_BATCH_PAGES: u64 = 2 * 1024 * 1024 / PAGE_SIZE;

/// How the cache distributes capacity among its users.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartitionMode {
    /// DoubleDecker: two-level weighted entitlements with slack
    /// redistribution and Algorithm 1 victim selection.
    #[default]
    DoubleDecker,
    /// Global (tmem-like baseline): container-agnostic, single FIFO per
    /// store, first-come-first-served occupancy.
    Global,
    /// Strict partitions (Morai-like comparator): entitlements are hard
    /// caps; a pool at its cap evicts from itself, and unused entitlement
    /// is never lent out.
    Strict,
}

impl std::fmt::Display for PartitionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PartitionMode::DoubleDecker => "doubledecker",
            PartitionMode::Global => "global",
            PartitionMode::Strict => "strict",
        };
        f.write_str(s)
    }
}

/// Construction-time configuration of a [`crate::DoubleDeckerCache`].
///
/// Capacities are in 4 KiB pages and may be changed later at runtime via
/// [`crate::DoubleDeckerCache::set_mem_capacity`] /
/// [`crate::DoubleDeckerCache::set_ssd_capacity`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Memory store capacity in pages (0 disables the store).
    pub mem_capacity_pages: u64,
    /// SSD store capacity in pages (0 disables the store).
    pub ssd_capacity_pages: u64,
    /// Partitioning/eviction mode.
    pub mode: PartitionMode,
    /// SSD admission plane (ghost filter + TTL demotion). Defaults to
    /// [`AdmissionConfig::off`], which admits every spill — the
    /// behaviour every pre-existing baseline was recorded under.
    pub admission: AdmissionConfig,
}

impl CacheConfig {
    /// A memory-only DoubleDecker cache.
    pub fn mem_only(mem_capacity_pages: u64) -> CacheConfig {
        CacheConfig {
            mem_capacity_pages,
            ssd_capacity_pages: 0,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        }
    }

    /// A memory + SSD DoubleDecker cache.
    pub fn mem_and_ssd(mem_capacity_pages: u64, ssd_capacity_pages: u64) -> CacheConfig {
        CacheConfig {
            mem_capacity_pages,
            ssd_capacity_pages,
            mode: PartitionMode::DoubleDecker,
            admission: AdmissionConfig::off(),
        }
    }

    /// Helper: capacity from mebibytes.
    pub fn pages_from_mb(mb: u64) -> u64 {
        mb * 1024 * 1024 / PAGE_SIZE
    }

    /// Helper: capacity from gibibytes.
    pub fn pages_from_gb(gb: u64) -> u64 {
        Self::pages_from_mb(gb * 1024)
    }

    /// Returns the same configuration with a different mode.
    pub fn with_mode(mut self, mode: PartitionMode) -> CacheConfig {
        self.mode = mode;
        self
    }

    /// Returns the same configuration with the given admission plane.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> CacheConfig {
        self.admission = admission;
        self
    }
}

impl Default for CacheConfig {
    /// A 1 GiB memory-only DoubleDecker cache.
    fn default() -> CacheConfig {
        CacheConfig::mem_only(Self::pages_from_gb(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_batch_is_2mb() {
        assert_eq!(EVICTION_BATCH_PAGES * PAGE_SIZE, 2 * 1024 * 1024);
    }

    #[test]
    fn page_helpers() {
        assert_eq!(CacheConfig::pages_from_mb(1), 1024 * 1024 / PAGE_SIZE);
        assert_eq!(
            CacheConfig::pages_from_gb(1),
            1024 * 1024 * 1024 / PAGE_SIZE
        );
    }

    #[test]
    fn constructors() {
        let c = CacheConfig::mem_only(100);
        assert_eq!(c.mem_capacity_pages, 100);
        assert_eq!(c.ssd_capacity_pages, 0);
        assert_eq!(c.mode, PartitionMode::DoubleDecker);
        let c2 = CacheConfig::mem_and_ssd(10, 20).with_mode(PartitionMode::Global);
        assert_eq!(c2.ssd_capacity_pages, 20);
        assert_eq!(c2.mode, PartitionMode::Global);
        let d = CacheConfig::default();
        assert_eq!(d.mem_capacity_pages, CacheConfig::pages_from_gb(1));
        assert_eq!(d.admission, AdmissionConfig::off());
        let a = CacheConfig::mem_and_ssd(10, 20).with_admission(AdmissionConfig::ghost(8));
        assert_eq!(a.admission.ghost_window, 8);
    }

    #[test]
    fn mode_display() {
        assert_eq!(PartitionMode::DoubleDecker.to_string(), "doubledecker");
        assert_eq!(PartitionMode::Global.to_string(), "global");
        assert_eq!(PartitionMode::Strict.to_string(), "strict");
    }
}
