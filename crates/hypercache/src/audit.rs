//! Runtime invariant auditor for the hypervisor cache.
//!
//! Cross-checks the cache's layered state — store accounting, per-pool
//! indexes, FIFO queues, entitlement shares — and returns structured
//! findings instead of panicking, so harnesses can run it on demand and
//! after crash recovery ([`crate::DoubleDeckerCache::recover`]) without
//! bringing the host down. An empty result means every audited invariant
//! holds.
//!
//! Audited invariants:
//!
//! 1. **Store accounting** — each backing store's used-page counter
//!    equals the sum of its pools' per-placement usage and never exceeds
//!    the store's effective capacity.
//! 2. **Index coherence** — each pool's per-placement usage counters
//!    equal the number of live slots with that placement.
//! 3. **FIFO coverage** — every live slot appears in its pool's FIFO
//!    queue for its placement with a matching sequence stamp (lazy
//!    deletion leaves dead entries behind, never drops live ones), and
//!    live queue sequences are strictly increasing.
//! 4. **Global-FIFO tombstones** — each global queue's tombstone counter
//!    equals the number of dead entries actually in the queue (the
//!    compaction trigger depends on it).
//! 5. **Entitlement consistency** — per store, VM entitlements sum to at
//!    most the store capacity, and each VM's pool entitlements sum to at
//!    most the VM's entitlement (weights are normalized shares, paper
//!    §4.2, so the sums can never exceed the level above).
//! 6. **Exclusive cache** — no block address is cached by two pools of
//!    the same VM (each guest file belongs to one container; duplicates
//!    would mean a migrate/put path leaked a copy).
//! 7. **Quarantine emptiness** — a quarantined SSD tier holds no pages
//!    anywhere (store counter, pools, global FIFO).
//! 8. **Sequence monotonicity** — the next-sequence allocator is above
//!    every live slot's stamp (a stale allocator would break FIFO order
//!    and lazy-deletion liveness checks).
//! 9. **Arena shape** — each pool's slab arena partitions cleanly: the
//!    free-list is duplicate-free and disjoint from the live set, every
//!    arena index is either live or free, and the address map agrees
//!    with the slab (each live slot's address looks up to its own
//!    `SlotId`). A violation means the free-list could hand out a live
//!    id — the slab equivalent of a use-after-free.
//! 10. **Remote consistency** — each remote binding's fault-tolerance
//!     stack is internally coherent: every fetch is accounted for by
//!     exactly one outcome (served, failed, shed or breaker-skipped),
//!     the breaker's own trip/recovery history matches the binding's
//!     counters, in-flight slots never exceed the configured cap, and no
//!     page the guest invalidated survives in the readahead buffer (the
//!     no-stale-data-during-partition guarantee).

use std::collections::{BTreeMap, BTreeSet};

use ddc_cleancache::{PoolId, VmId};
use ddc_storage::{BlockAddr, RemoteBinding};

use crate::index::{Placement, Pool, SlotId};
use crate::DoubleDeckerCache;

/// One violated invariant, as structured data (never a panic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditFinding {
    /// Short stable name of the violated invariant (e.g.
    /// `"store-accounting"`); harnesses group findings by it.
    pub invariant: &'static str,
    /// Human-readable specifics: which entity, expected vs actual.
    pub detail: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

fn placements() -> [Placement; 2] {
    [Placement::Mem, Placement::Ssd]
}

/// Audits every cross-layer invariant of `cache`, returning one finding
/// per violation (empty = healthy). Read-only and side-effect free, so
/// it can run at any point of a simulation.
pub fn audit(cache: &DoubleDeckerCache) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    store_accounting(cache, &mut findings);
    pool_coherence(cache, &mut findings);
    global_fifo_tombstones(cache, &mut findings);
    entitlement_sums(cache, &mut findings);
    quarantine_emptiness(cache, &mut findings);
    let mut bindings: Vec<(VmId, PoolId, &RemoteBinding)> = cache
        .remote_bindings
        .iter()
        .map(|(&(vm, pid), b)| (vm, pid, b))
        .collect();
    bindings.sort_unstable_by_key(|&(vm, pid, _)| (vm, pid));
    findings.extend(audit_remote_bindings(&bindings));
    findings
}

/// Invariant 10 over an arbitrary set of remote bindings. Factored out
/// like [`audit_pool_slice`] so the sharded engine can audit the
/// bindings it holds per shard with the same checks.
pub fn audit_remote_bindings(bindings: &[(VmId, PoolId, &RemoteBinding)]) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for &(vm, pid, b) in bindings {
        let c = b.counters();
        let accounted = c.served + c.failed + c.shed + c.breaker_skipped;
        if accounted != c.fetches {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: {} fetches but {accounted} outcomes \
                     ({} served + {} failed + {} shed + {} breaker-skipped)",
                    c.fetches, c.served, c.failed, c.shed, c.breaker_skipped
                ),
            });
        }
        if c.edge_hits + c.origin_fetches != c.served {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: {} served splits into {} edge + {} origin",
                    c.served, c.edge_hits, c.origin_fetches
                ),
            });
        }
        if c.hedge_wins > c.hedges {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: {} hedge wins out of {} hedges launched",
                    c.hedge_wins, c.hedges
                ),
            });
        }
        if c.timeouts > c.failed {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: {} timeouts exceed {} failed fetches",
                    c.timeouts, c.failed
                ),
            });
        }
        if c.breaker_trips != b.breaker().trips()
            || c.breaker_recoveries != b.breaker().recoveries()
        {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: binding counted {}/{} breaker trips/recoveries but \
                     the breaker itself counted {}/{}",
                    c.breaker_trips,
                    c.breaker_recoveries,
                    b.breaker().trips(),
                    b.breaker().recoveries()
                ),
            });
        }
        if c.breaker_recoveries > c.breaker_trips {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: {} breaker recoveries exceed {} trips",
                    c.breaker_recoveries, c.breaker_trips
                ),
            });
        }
        if b.breaker().is_open() && c.breaker_trips == 0 {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!("{vm} {pid}: breaker is open but no trip was counted"),
            });
        }
        if b.inflight_len() > b.fetch_config().inflight_cap {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: {} in-flight slots exceed the cap of {}",
                    b.inflight_len(),
                    b.fetch_config().inflight_cap
                ),
            });
        }
        let overlap = b.buffered_localized_overlap();
        if overlap > 0 {
            findings.push(AuditFinding {
                invariant: "remote-consistency",
                detail: format!(
                    "{vm} {pid}: {overlap} guest-invalidated pages remain staged in \
                     the readahead buffer (stale data could be served)"
                ),
            });
        }
    }
    findings
}

/// Audits the pool-local invariant families — index coherence (2), FIFO
/// coverage and order (3), the exclusive-cache property (6), and
/// sequence monotonicity (8) — over an arbitrary collection of pools.
///
/// Factored out of [`audit`] so other cache assemblies built on
/// [`crate::index::Pool`] (the sharded serving plane in
/// `ddc-concurrent`) can enforce the same invariants: callers flatten
/// whatever pool topology they hold into one slice and pass the global
/// sequence-allocator watermark.
pub fn audit_pool_slice(pools: &[(VmId, PoolId, &Pool)], next_seq: u64) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for &(vm, pid, pool) in pools {
        for placement in placements() {
            let live: Vec<(SlotId, BlockAddr, u64)> = pool
                .iter_ids()
                .filter(|(_, _, s)| s.placement == placement)
                .map(|(id, a, s)| (id, a, s.seq))
                .collect();
            if pool.used(placement) != live.len() as u64 {
                findings.push(AuditFinding {
                    invariant: "index-coherence",
                    detail: format!(
                        "{vm} {pid} counts {} pages in {placement:?} but indexes {}",
                        pool.used(placement),
                        live.len()
                    ),
                });
            }
            // FIFO coverage: every live slot must be reachable from
            // exactly one (SlotId, seq) queue entry — zero means it could
            // never be evicted, two would let eviction double-free it.
            // Dead entries are fine (lazy deletion).
            let mut queued: BTreeMap<(SlotId, u64), u32> = BTreeMap::new();
            for entry in pool.fifo_entries(placement) {
                *queued.entry(entry).or_insert(0) += 1;
            }
            for &(id, addr, seq) in &live {
                let count = queued.get(&(id, seq)).copied().unwrap_or(0);
                if count != 1 {
                    findings.push(AuditFinding {
                        invariant: "fifo-coverage",
                        detail: format!(
                            "{vm} {pid}: live slot {addr:?} ({id:?} seq {seq}) has \
                             {count} {placement:?} FIFO entries, expected exactly one"
                        ),
                    });
                }
            }
            // Live entries must appear in strictly increasing seq order.
            let mut last_live: Option<u64> = None;
            for (id, seq) in pool.fifo_entries(placement) {
                if pool.fifo_probe(id, seq, placement).is_none() {
                    continue;
                }
                if let Some(prev) = last_live {
                    if seq <= prev {
                        findings.push(AuditFinding {
                            invariant: "fifo-order",
                            detail: format!(
                                "{vm} {pid}: {placement:?} FIFO seq {seq} follows {prev} \
                                 (eviction order no longer FIFO)"
                            ),
                        });
                    }
                }
                last_live = Some(seq);
            }
        }
        arena_shape(vm, pid, pool, &mut findings);
        wear_ledger(vm, pid, pool, &mut findings);
        for (addr, slot) in pool.iter() {
            if slot.seq >= next_seq {
                findings.push(AuditFinding {
                    invariant: "seq-monotone",
                    detail: format!(
                        "{vm} {pid}: slot {addr:?} carries seq {} at or above the \
                         allocator's next_seq {next_seq}",
                        slot.seq
                    ),
                });
            }
        }
    }
    exclusive_property(pools, &mut findings);
    findings
}

/// Invariant 10 (endurance plane): the pool's scalar wear total equals
/// the sum of its per-slot write counters, SSD writes never exceed
/// admissions, and the ghost filter's verdict counts partition its
/// attempts. Monotonicity (wear never decreases, survives recovery) is
/// enforced by the wear property tests, which can observe two points in
/// time; the auditor checks the instantaneous ledger shape.
fn wear_ledger(vm: VmId, pid: PoolId, pool: &Pool, findings: &mut Vec<AuditFinding>) {
    let w = &pool.wear;
    let slot_sum: u64 = w.slot_writes.iter().map(|&c| u64::from(c)).sum();
    if w.pages_written != slot_sum {
        findings.push(AuditFinding {
            invariant: "wear-ledger",
            detail: format!(
                "{vm} {pid}: pool wear total {} != sum of per-slot counters {slot_sum} \
                 (some SSD write was charged to the pool but not a slot, or vice versa)",
                w.pages_written
            ),
        });
    }
    if w.pages_written > w.pages_admitted {
        findings.push(AuditFinding {
            invariant: "wear-ledger",
            detail: format!(
                "{vm} {pid}: {} SSD writes exceed {} admitted pages (every physical \
                 write must trace to an admission)",
                w.pages_written, w.pages_admitted
            ),
        });
    }
    if w.spill_admits + w.spill_rejects != w.spill_attempts {
        findings.push(AuditFinding {
            invariant: "wear-admission",
            detail: format!(
                "{vm} {pid}: ghost filter verdicts {} + {} do not partition the {} \
                 attempts",
                w.spill_admits, w.spill_rejects, w.spill_attempts
            ),
        });
    }
}

/// Invariant 9: the slab arena partitions cleanly into live and free
/// slots, and the address map agrees with the slab.
fn arena_shape(vm: VmId, pid: PoolId, pool: &Pool, findings: &mut Vec<AuditFinding>) {
    let live: BTreeSet<SlotId> = pool.iter_ids().map(|(id, _, _)| id).collect();
    let mut free: BTreeSet<SlotId> = BTreeSet::new();
    for id in pool.free_ids() {
        if !free.insert(id) {
            findings.push(AuditFinding {
                invariant: "arena-free-list",
                detail: format!(
                    "{vm} {pid}: free-list lists {id:?} twice (one id could be \
                     assigned to two slots)"
                ),
            });
        }
        if live.contains(&id) {
            findings.push(AuditFinding {
                invariant: "arena-free-list",
                detail: format!(
                    "{vm} {pid}: free-list contains live {id:?} (the next insert \
                     would overwrite a resident slot)"
                ),
            });
        }
        if id.0 >= pool.arena_len() {
            findings.push(AuditFinding {
                invariant: "arena-free-list",
                detail: format!(
                    "{vm} {pid}: free-list id {id:?} is outside the arena of {} slots",
                    pool.arena_len()
                ),
            });
        }
    }
    if (live.len() + free.len()) as u64 != u64::from(pool.arena_len()) {
        findings.push(AuditFinding {
            invariant: "arena-shape",
            detail: format!(
                "{vm} {pid}: {} live + {} free slots do not cover the arena of {} \
                 (some index is neither live nor reusable)",
                live.len(),
                free.len(),
                pool.arena_len()
            ),
        });
    }
    for (id, addr, _) in pool.iter_ids() {
        if pool.lookup(addr) != Some(id) {
            findings.push(AuditFinding {
                invariant: "arena-map",
                detail: format!(
                    "{vm} {pid}: live slot {addr:?} at {id:?} looks up to {:?} \
                     (map and slab disagree)",
                    pool.lookup(addr)
                ),
            });
        }
    }
}

/// Invariant 1: store used-page counters match the pool indexes and
/// respect capacity.
fn store_accounting(cache: &DoubleDeckerCache, findings: &mut Vec<AuditFinding>) {
    for placement in placements() {
        let (store, name) = match placement {
            Placement::Mem => (&cache.mem, "mem"),
            Placement::Ssd => (&cache.ssd, "ssd"),
        };
        let pooled: u64 = cache.pools.values().map(|p| p.used(placement)).sum();
        if store.used_pages() != pooled {
            findings.push(AuditFinding {
                invariant: "store-accounting",
                detail: format!(
                    "{name} store counts {} used pages but pools hold {pooled}",
                    store.used_pages()
                ),
            });
        }
        if store.used_pages() > store.capacity_objects() {
            findings.push(AuditFinding {
                invariant: "store-accounting",
                detail: format!(
                    "{name} store uses {} pages over its capacity of {} objects",
                    store.used_pages(),
                    store.capacity_objects()
                ),
            });
        }
    }
}

/// Invariants 2, 3, 6 and 8 via [`audit_pool_slice`] over every pool.
fn pool_coherence(cache: &DoubleDeckerCache, findings: &mut Vec<AuditFinding>) {
    let pools: Vec<(VmId, PoolId, &Pool)> = cache
        .pools
        .iter()
        .map(|(&(vm, pid), pool)| (vm, pid, pool))
        .collect();
    findings.extend(audit_pool_slice(&pools, cache.next_seq));
}

/// Invariant 4: the global queues' tombstone counters match the actual
/// dead-entry counts.
fn global_fifo_tombstones(cache: &DoubleDeckerCache, findings: &mut Vec<AuditFinding>) {
    for placement in placements() {
        let (queue, stale, name) = match placement {
            Placement::Mem => (&cache.global_fifo_mem, cache.global_stale_mem, "mem"),
            Placement::Ssd => (&cache.global_fifo_ssd, cache.global_stale_ssd, "ssd"),
        };
        let dead = queue
            .iter()
            .filter(|&&(vm, pool, id, seq)| {
                cache
                    .pools
                    .get(&(vm, pool))
                    .and_then(|p| p.fifo_probe(id, seq, placement))
                    .is_none()
            })
            .count() as u64;
        if dead != stale {
            findings.push(AuditFinding {
                invariant: "global-fifo-tombstones",
                detail: format!(
                    "{name} global FIFO has {dead} dead entries but the tombstone \
                     counter says {stale} (compaction trigger is skewed)"
                ),
            });
        }
    }
}

/// Invariant 5: entitlements are normalized shares, so each level sums
/// to at most the level above.
fn entitlement_sums(cache: &DoubleDeckerCache, findings: &mut Vec<AuditFinding>) {
    for placement in placements() {
        let name = match placement {
            Placement::Mem => "mem",
            Placement::Ssd => "ssd",
        };
        let table = cache.build_share_table(placement);
        let capacity = match placement {
            Placement::Mem => cache.mem.capacity_objects(),
            Placement::Ssd => cache.ssd.capacity_objects(),
        };
        let vm_sum: u64 = table.vm_rows.iter().map(|r| r.1).sum();
        if vm_sum > capacity {
            findings.push(AuditFinding {
                invariant: "entitlement-sums",
                detail: format!(
                    "{name} store: VM entitlements sum to {vm_sum}, over the \
                     capacity of {capacity} objects"
                ),
            });
        }
        for (i, &(vm, vm_share, _)) in table.vm_rows.iter().enumerate() {
            let pool_sum: u64 = table.pool_rows[i].iter().map(|r| r.1).sum();
            if pool_sum > vm_share {
                findings.push(AuditFinding {
                    invariant: "entitlement-sums",
                    detail: format!(
                        "{name} store: {vm} pool entitlements sum to {pool_sum}, \
                         over the VM's entitlement of {vm_share}"
                    ),
                });
            }
        }
    }
}

/// Invariant 6: no block is cached twice within one VM.
fn exclusive_property(pools: &[(VmId, PoolId, &Pool)], findings: &mut Vec<AuditFinding>) {
    let mut owners: BTreeMap<(VmId, BlockAddr), PoolId> = BTreeMap::new();
    let mut entries: Vec<(VmId, PoolId, BlockAddr)> = Vec::new();
    for &(vm, pid, pool) in pools {
        for (addr, _) in pool.iter() {
            entries.push((vm, pid, addr));
        }
    }
    entries.sort_unstable();
    for (vm, pid, addr) in entries {
        if let Some(&first) = owners.get(&(vm, addr)) {
            findings.push(AuditFinding {
                invariant: "exclusive-cache",
                detail: format!(
                    "{vm}: block {addr:?} cached by both {first} and {pid} \
                     (second-chance copies must be exclusive)"
                ),
            });
        } else {
            owners.insert((vm, addr), pid);
        }
    }
}

/// Invariant 7: quarantine implies an empty SSD tier.
fn quarantine_emptiness(cache: &DoubleDeckerCache, findings: &mut Vec<AuditFinding>) {
    if !cache.ssd_quarantined() {
        return;
    }
    if cache.ssd.used_pages() != 0 {
        findings.push(AuditFinding {
            invariant: "quarantine-empty",
            detail: format!(
                "SSD tier is quarantined yet its store counts {} used pages",
                cache.ssd.used_pages()
            ),
        });
    }
    for (&(vm, pid), pool) in &cache.pools {
        if pool.used(Placement::Ssd) != 0 {
            findings.push(AuditFinding {
                invariant: "quarantine-empty",
                detail: format!(
                    "SSD tier is quarantined yet {vm} {pid} still holds {} SSD pages",
                    pool.used(Placement::Ssd)
                ),
            });
        }
    }
    if !cache.global_fifo_ssd.is_empty() {
        findings.push(AuditFinding {
            invariant: "quarantine-empty",
            detail: format!(
                "SSD tier is quarantined yet its global FIFO retains {} entries",
                cache.global_fifo_ssd.len()
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, CachePolicy, PageVersion, SecondChanceCache};
    use ddc_sim::SimTime;
    use ddc_storage::FileId;

    fn addr(f: u64, b: u64) -> BlockAddr {
        BlockAddr::new(FileId(f), b)
    }

    #[test]
    fn healthy_cache_audits_clean() {
        let mut cache = DoubleDeckerCache::new(CacheConfig::mem_and_ssd(64, 64));
        cache.add_vm(VmId(0), 60);
        cache.add_vm(VmId(1), 40);
        let web = cache.create_pool(VmId(0), CachePolicy::mem(70));
        let db = cache.create_pool(VmId(0), CachePolicy::ssd(100));
        let other = cache.create_pool(VmId(1), CachePolicy::hybrid(50));
        for b in 0..40 {
            cache.put(SimTime::ZERO, VmId(0), web, addr(1, b), PageVersion(b));
            cache.put(SimTime::ZERO, VmId(0), db, addr(2, b), PageVersion(b));
            cache.put(SimTime::ZERO, VmId(1), other, addr(3, b), PageVersion(b));
        }
        for b in 0..10 {
            cache.get(SimTime::ZERO, VmId(0), web, addr(1, b));
            cache.flush(VmId(0), db, addr(2, b));
        }
        cache.flush_file(VmId(1), other, FileId(3));
        let findings = audit(&cache);
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn detects_exclusivity_violation_via_migrate_shadow() {
        // Build a duplicate by hand: two pools of one VM holding the same
        // block (migrate_object normally prevents this).
        let mut cache = DoubleDeckerCache::new(CacheConfig::mem_only(64));
        let a = cache.create_pool(VmId(0), CachePolicy::mem(50));
        let b = cache.create_pool(VmId(0), CachePolicy::mem(50));
        cache.put(SimTime::ZERO, VmId(0), a, addr(1, 0), PageVersion(1));
        cache.put(SimTime::ZERO, VmId(0), b, addr(1, 0), PageVersion(1));
        let findings = audit(&cache);
        assert!(
            findings.iter().any(|f| f.invariant == "exclusive-cache"),
            "duplicate went undetected: {findings:?}"
        );
    }

    #[test]
    fn audit_is_clean_across_modes_and_quarantine() {
        use crate::PartitionMode;
        for mode in [
            PartitionMode::DoubleDecker,
            PartitionMode::Global,
            PartitionMode::Strict,
        ] {
            let mut cache =
                DoubleDeckerCache::new(CacheConfig::mem_and_ssd(32, 32).with_mode(mode));
            let pool = cache.create_pool(VmId(0), CachePolicy::ssd(100));
            for b in 0..64 {
                cache.put(SimTime::ZERO, VmId(0), pool, addr(1, b), PageVersion(b));
            }
            let findings = audit(&cache);
            assert!(findings.is_empty(), "{mode:?}: {findings:?}");
        }
    }

    #[test]
    fn finding_display_is_readable() {
        let f = AuditFinding {
            invariant: "store-accounting",
            detail: "mem store counts 3 used pages but pools hold 2".into(),
        };
        assert_eq!(
            f.to_string(),
            "[store-accounting] mem store counts 3 used pages but pools hold 2"
        );
    }
}
